//! Model-based property tests for the columnar measurement store.
//!
//! The production [`Memory`] keeps each series as structure-of-arrays
//! columns inside a compacting ring. These tests drive it with random
//! operation sequences alongside a deliberately naive array-of-structs
//! reference model (a bounded `VecDeque` of points per series) and demand
//! that every observable — extracts, borrowed slices, tails, counters,
//! revisions — agrees exactly, bit for bit. Any divergence introduced by
//! the ring cursor, compaction, or eviction logic shows up as a concrete
//! failing operation sequence.

use nws_grid::{Memory, MemoryConfig, ResourceId};
use nws_timeseries::TimePoint;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug, Clone, Copy)]
struct RefPoint {
    time: f64,
    value: f64,
}

/// Naive per-series state: exactly the semantics `Memory` documents,
/// implemented the obvious way with no sharing, cursors, or compaction.
#[derive(Debug, Default)]
struct RefSeries {
    points: VecDeque<RefPoint>,
    gaps: VecDeque<f64>,
    dropped: u64,
    revision: u64,
}

/// Array-of-structs reference model of the whole memory.
#[derive(Debug)]
struct RefMemory {
    retain: usize,
    series: BTreeMap<u64, RefSeries>,
    global_revision: u64,
}

impl RefMemory {
    fn new(retain: usize) -> Self {
        Self {
            retain,
            series: BTreeMap::new(),
            global_revision: 0,
        }
    }

    fn append(&mut self, id: u64, time: f64, value: f64) -> bool {
        if !value.is_finite() || !time.is_finite() {
            return false;
        }
        let s = self.series.entry(id).or_default();
        if let Some(last) = s.points.back() {
            if time <= last.time {
                s.dropped += 1;
                return false;
            }
        }
        if s.points.len() == self.retain {
            s.points.pop_front();
        }
        s.points.push_back(RefPoint { time, value });
        s.revision += 1;
        self.global_revision += 1;
        true
    }

    fn record_gap(&mut self, id: u64, time: f64) {
        let s = self.series.entry(id).or_default();
        if s.gaps.len() == self.retain {
            s.gaps.pop_front();
        }
        s.gaps.push_back(time);
        s.revision += 1;
        self.global_revision += 1;
    }

    fn get(&self, id: u64) -> Option<&RefSeries> {
        self.series.get(&id)
    }
}

/// One randomly generated operation against both stores.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Append at `clock + delta` (delta may be zero or negative, which
    /// the store must reject as out of order).
    Append { id: u64, delta: i32, value: f64 },
    /// Append a NaN value (must be rejected without other effects).
    AppendNanValue { id: u64 },
    /// Append at an infinite timestamp (must be rejected).
    AppendInfiniteTime { id: u64, value: f64 },
    /// Record an explicit gap at the current clock.
    RecordGap { id: u64 },
}

/// Strategy: a tuple per op, decoded into an [`Op`]. Kind 0–11 is a
/// plain append (mostly forward in time, sometimes backwards), 12 a NaN
/// value, 13 an infinite timestamp, 14–15 a gap record.
fn decode_op((kind, id, delta, centivalue): (u8, u64, i32, i32)) -> Op {
    match kind % 16 {
        12 => Op::AppendNanValue { id },
        13 => Op::AppendInfiniteTime {
            id,
            value: f64::from(centivalue) / 100.0,
        },
        14 | 15 => Op::RecordGap { id },
        _ => Op::Append {
            id,
            delta,
            value: f64::from(centivalue) / 100.0,
        },
    }
}

fn op_sequence(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    vec(
        (0u8..16, 0u64..3, -4i32..12, -100_000i32..100_000),
        0..max_ops,
    )
    .prop_map(|raw| raw.into_iter().map(decode_op).collect())
}

/// Owned extract shape (the old NWS `extract` API), rebuilt from the
/// borrowed tail; the model diffs against the owned form on purpose.
fn extract(mem: &Memory, id: ResourceId, n: usize) -> Vec<TimePoint> {
    let (times, values) = mem.tail(id, n);
    times
        .iter()
        .zip(values)
        .map(|(&t, &v)| TimePoint::new(t, v))
        .collect()
}

/// Checks every observable of one series against the model.
fn assert_series_agrees(mem: &Memory, model: &RefMemory, id: u64) -> Result<(), TestCaseError> {
    let rid = ResourceId(id);
    let reference = model.get(id);
    let ref_points: Vec<RefPoint> = reference
        .map(|s| s.points.iter().copied().collect())
        .unwrap_or_default();

    prop_assert_eq!(mem.len(rid), ref_points.len());
    prop_assert_eq!(mem.is_empty(rid), ref_points.is_empty());
    prop_assert_eq!(mem.dropped(rid), reference.map_or(0, |s| s.dropped));
    prop_assert_eq!(mem.revision(rid), reference.map_or(0, |s| s.revision));
    prop_assert_eq!(mem.gap_count(rid), reference.map_or(0, |s| s.gaps.len()));
    let expected_gaps: Vec<f64> = reference
        .map(|s| s.gaps.iter().copied().collect())
        .unwrap_or_default();
    prop_assert_eq!(mem.gaps(rid), expected_gaps);

    // Owned extract, borrowed full columns, and the latest point must
    // all be bit-identical views of the model's window.
    let extracted = extract(mem, rid, usize::MAX);
    prop_assert_eq!(extracted.len(), ref_points.len());
    let times = mem.times(rid);
    let values = mem.values(rid);
    prop_assert_eq!(times.len(), ref_points.len());
    prop_assert_eq!(values.len(), ref_points.len());
    for (i, p) in ref_points.iter().enumerate() {
        prop_assert_eq!(extracted[i].time.to_bits(), p.time.to_bits());
        prop_assert_eq!(extracted[i].value.to_bits(), p.value.to_bits());
        prop_assert_eq!(times[i].to_bits(), p.time.to_bits());
        prop_assert_eq!(values[i].to_bits(), p.value.to_bits());
    }
    match (mem.latest(rid), ref_points.last()) {
        (None, None) => {}
        (Some(got), Some(want)) => {
            prop_assert_eq!(got.time.to_bits(), want.time.to_bits());
            prop_assert_eq!(got.value.to_bits(), want.value.to_bits());
        }
        (got, want) => prop_assert!(
            false,
            "latest() disagrees: store={:?} model={:?}",
            got.is_some(),
            want.is_some()
        ),
    }

    // Tails of every length, plus one past the end: the most recent
    // min(n, len) points, and extract must stay consistent with tail.
    for n in 0..=ref_points.len() + 1 {
        let (tail_times, tail_values) = mem.tail(rid, n);
        let keep = n.min(ref_points.len());
        prop_assert_eq!(tail_times.len(), keep);
        prop_assert_eq!(tail_values.len(), keep);
        let skip = ref_points.len() - keep;
        for (i, p) in ref_points.iter().skip(skip).enumerate() {
            prop_assert_eq!(tail_times[i].to_bits(), p.time.to_bits());
            prop_assert_eq!(tail_values[i].to_bits(), p.value.to_bits());
        }
        let ex = extract(mem, rid, n);
        prop_assert_eq!(ex.len(), keep);
        for (i, p) in ex.iter().enumerate() {
            prop_assert_eq!(p.time.to_bits(), tail_times[i].to_bits());
            prop_assert_eq!(p.value.to_bits(), tail_values[i].to_bits());
        }
    }

    // with_series sees the same columns as the individual accessors.
    mem.with_series(rid, |t, v| {
        assert_eq!(t.len(), ref_points.len());
        assert_eq!(v.len(), ref_points.len());
    });
    Ok(())
}

proptest! {
    #[test]
    fn columnar_store_matches_aos_reference_model(
        retain in 1usize..8,
        ops in op_sequence(160),
    ) {
        let mut mem = Memory::new(MemoryConfig { retain });
        let mut model = RefMemory::new(retain);
        // Per-series clocks so out-of-order generation is meaningful even
        // when ops interleave across series.
        let mut clocks: BTreeMap<u64, f64> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Append { id, delta, value } => {
                    let clock = clocks.entry(id).or_insert(0.0);
                    let time = *clock + f64::from(delta);
                    let stored = mem.store(ResourceId(id), time, value);
                    let model_stored = model.append(id, time, value);
                    prop_assert!(
                        stored == model_stored,
                        "store outcome diverged at t={time} (delta {delta})"
                    );
                    if stored {
                        *clock = time;
                    }
                }
                Op::AppendNanValue { id } => {
                    let time = clocks.get(&id).copied().unwrap_or(0.0) + 1.0;
                    prop_assert!(!mem.store(ResourceId(id), time, f64::NAN));
                    prop_assert!(!model.append(id, time, f64::NAN));
                }
                Op::AppendInfiniteTime { id, value } => {
                    prop_assert!(!mem.store(ResourceId(id), f64::INFINITY, value));
                    prop_assert!(!model.append(id, f64::INFINITY, value));
                }
                Op::RecordGap { id } => {
                    let time = clocks.get(&id).copied().unwrap_or(0.0);
                    mem.record_gap(ResourceId(id), time);
                    model.record_gap(id, time);
                }
            }
            // Global counters must track each other after every op: a
            // rejected measurement must not look like a change.
            prop_assert_eq!(mem.global_revision(), model.global_revision);
        }

        for id in 0..3u64 {
            assert_series_agrees(&mem, &model, id)?;
        }
        prop_assert_eq!(
            mem.total_dropped(),
            model.series.values().map(|s| s.dropped).sum::<u64>()
        );
        let expected_ids: Vec<ResourceId> = model
            .series
            .iter()
            .filter(|(_, s)| !s.points.is_empty())
            .map(|(&id, _)| ResourceId(id))
            .collect();
        prop_assert_eq!(mem.resource_ids(), expected_ids);
    }

    #[test]
    fn long_monotone_ingest_keeps_exactly_the_window(
        retain in 1usize..6,
        total in 0usize..64,
        stride in 1u32..5,
    ) {
        // Pure in-order ingest far past the bound: the survivors are the
        // last `retain` points regardless of how often the ring compacts.
        let mut mem = Memory::new(MemoryConfig { retain });
        let mut model = RefMemory::new(retain);
        for i in 0..total {
            let t = (i as f64) * f64::from(stride);
            prop_assert!(mem.store(ResourceId(9), t, t * 0.25));
            prop_assert!(model.append(9, t, t * 0.25));
        }
        assert_series_agrees(&mem, &model, 9)?;
    }

    #[test]
    fn csv_round_trip_restores_the_retained_window(
        retain in 1usize..6,
        total in 1usize..40,
        seed in any::<u64>(),
    ) {
        // save() then load() into a fresh memory reproduces the retained
        // window exactly (CSV carries full f64 precision).
        let mut mem = Memory::new(MemoryConfig { retain });
        let mut state = seed | 1;
        for i in 0..total {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (state >> 11) as f64 / (1u64 << 53) as f64;
            prop_assert!(mem.store(ResourceId(4), i as f64, v));
        }
        let path = std::env::temp_dir().join(format!(
            "nws-memory-model-{}-{seed:x}-{retain}-{total}.csv",
            std::process::id()
        ));
        mem.save(ResourceId(4), &path).expect("save");
        let mut restored = Memory::new(MemoryConfig { retain });
        let loaded = restored.load(ResourceId(4), &path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded, mem.len(ResourceId(4)));
        prop_assert_eq!(restored.len(ResourceId(4)), mem.len(ResourceId(4)));
        let want = extract(&mem, ResourceId(4), usize::MAX);
        let got = extract(&restored, ResourceId(4), usize::MAX);
        for (a, b) in want.iter().zip(&got) {
            prop_assert_eq!(a.time.to_bits(), b.time.to_bits());
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        // Loading replaces: revision moved, and a reload is idempotent.
        prop_assert_eq!(restored.revision(ResourceId(4)), 1);
    }
}
