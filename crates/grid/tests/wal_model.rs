//! Property tests for the write-ahead log and snapshot codec.
//!
//! Mirrors the `nws-wire` fuzzing pattern: every record sequence must
//! round-trip bit-exactly through the log; garbage bytes, truncated
//! tails, and bit-flipped records must yield typed errors — never a
//! panic — while recovery keeps every record before the first
//! corruption; and rebuilding a [`Memory`] from genesis replay or from
//! a snapshot plus the WAL suffix must reproduce the original
//! fingerprint exactly.

use nws_grid::wal::replay;
use nws_grid::{recover_memory, Memory, MemoryConfig, ResourceId, Wal, WalRecord};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Any f64 bit pattern, including NaNs, infinities, and signed zeros.
fn any_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// A record with fully arbitrary payload bits — what the codec has to
/// carry faithfully regardless of what the store would do with it.
fn any_record() -> impl Strategy<Value = WalRecord> {
    (0u8..3, 0u64..6, any_f64(), any_f64()).prop_map(|(kind, id, time, value)| {
        let id = ResourceId(id);
        match kind {
            0 => WalRecord::Append { id, time, value },
            1 => WalRecord::Gap { id, time },
            _ => WalRecord::Drop { id },
        }
    })
}

/// Raw op tuples for plausible journal traffic: mostly forward-in-time
/// appends (so series actually accumulate points and the ring
/// compacts), with occasional out-of-order appends, gaps, and drops.
fn raw_ops(max: usize) -> impl Strategy<Value = Vec<(u8, u64, i32, i32)>> {
    vec((0u8..12, 0u64..4, -3i32..10, -100_000i32..100_000), 1..max)
}

/// Decodes raw ops into records with per-series clocks, the way a
/// monitor would emit them.
fn build_records(raw: &[(u8, u64, i32, i32)]) -> Vec<WalRecord> {
    let mut clocks: BTreeMap<u64, f64> = BTreeMap::new();
    raw.iter()
        .map(|&(kind, id, delta, centivalue)| {
            let rid = ResourceId(id);
            match kind {
                9 => WalRecord::Gap {
                    id: rid,
                    time: clocks.get(&id).copied().unwrap_or(0.0),
                },
                10 | 11 => WalRecord::Drop { id: rid },
                _ => {
                    let clock = clocks.entry(id).or_insert(0.0);
                    let time = *clock + f64::from(delta);
                    if delta > 0 {
                        *clock = time;
                    }
                    WalRecord::Append {
                        id: rid,
                        time,
                        value: f64::from(centivalue) / 100.0,
                    }
                }
            }
        })
        .collect()
}

/// Encoded frame length of one record.
fn frame_len(rec: &WalRecord) -> usize {
    let mut buf = Vec::new();
    rec.encode_into(&mut buf);
    buf.len()
}

/// Logs every record into a fresh in-memory WAL.
fn log_all(records: &[WalRecord]) -> Wal {
    let mut wal = Wal::new();
    for rec in records {
        wal.log(rec);
    }
    wal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn records_round_trip_through_the_log(records in vec(any_record(), 0..64)) {
        let wal = log_all(&records);
        let mut seen = Vec::new();
        let outcome = replay(wal.bytes(), 0, |rec| seen.push(*rec));
        prop_assert!(outcome.error.is_none(), "own encoding must replay: {:?}", outcome.error);
        prop_assert_eq!(outcome.records as usize, records.len());
        prop_assert_eq!(outcome.end, wal.len());
        // NaN-safe equality: re-log what came back, compare the bytes.
        let relogged = log_all(&seen);
        prop_assert_eq!(relogged.bytes(), wal.bytes());
    }

    #[test]
    fn garbage_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        let outcome = replay(&bytes, 0, |_| {});
        prop_assert!(outcome.end <= bytes.len());
        // Either the garbage happened to parse to its end, or the
        // failure is typed and positioned inside the buffer.
        if outcome.end != bytes.len() {
            prop_assert!(outcome.error.is_some());
        }
    }

    #[test]
    fn truncation_keeps_every_whole_record(
        records in vec(any_record(), 1..48),
        frac in 0.0f64..1.0,
    ) {
        let wal = log_all(&records);
        let cut = ((wal.len() as f64) * frac) as usize;
        // How many records fit entirely below the cut, and where the
        // last whole one ends.
        let mut whole = 0usize;
        let mut boundary = 0usize;
        for rec in &records {
            let next = boundary + frame_len(rec);
            if next > cut {
                break;
            }
            boundary = next;
            whole += 1;
        }
        let mut seen = 0usize;
        let outcome = replay(&wal.bytes()[..cut], 0, |_| seen += 1);
        prop_assert_eq!(seen, whole);
        prop_assert_eq!(outcome.end, boundary);
        if cut == boundary {
            prop_assert!(outcome.error.is_none(), "cut on a boundary is a clean tail");
        } else {
            prop_assert!(outcome.error.is_some(), "torn tail must be typed");
        }
    }

    #[test]
    fn single_byte_flips_are_typed_and_keep_the_prefix(
        records in vec(any_record(), 1..48),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let wal = log_all(&records);
        let mut bytes = wal.bytes().to_vec();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        // The record containing the flipped byte, and its offset.
        let mut hit = 0usize;
        let mut offset = 0usize;
        for rec in &records {
            let next = offset + frame_len(rec);
            if pos < next {
                break;
            }
            offset = next;
            hit += 1;
        }
        let mut seen = 0usize;
        let outcome = replay(&bytes, 0, |_| seen += 1);
        prop_assert!(outcome.error.is_some(), "corruption must be a typed error");
        prop_assert_eq!(seen, hit);
        prop_assert_eq!(outcome.end, offset);
    }

    #[test]
    fn snapshots_round_trip_bit_exactly(
        retain in 1usize..6,
        raw in raw_ops(96),
    ) {
        let records = build_records(&raw);
        let mut mem = Memory::new(MemoryConfig { retain });
        for rec in &records {
            mem.apply(rec);
        }
        let snap = mem.snapshot_bytes();
        let (restored, wal_offset) = Memory::from_snapshot(&snap).expect("own snapshot loads");
        prop_assert_eq!(wal_offset, 0);
        prop_assert_eq!(restored.fingerprint(), mem.fingerprint());
        // Snapshotting the restored memory is a fixed point.
        prop_assert_eq!(restored.snapshot_bytes(), snap);
    }

    #[test]
    fn corrupted_snapshots_are_rejected_not_panics(
        retain in 1usize..6,
        raw in raw_ops(64),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
        cut_frac in 0.0f64..1.0,
    ) {
        let records = build_records(&raw);
        let mut mem = Memory::new(MemoryConfig { retain });
        for rec in &records {
            mem.apply(rec);
        }
        let snap = mem.snapshot_bytes();
        // Any single flipped byte breaks the trailer CRC (or the magic).
        let mut bad = snap.clone();
        let pos = (pos_seed % bad.len() as u64) as usize;
        bad[pos] ^= flip;
        prop_assert!(Memory::from_snapshot(&bad).is_err());
        // Any strict prefix is rejected too.
        let cut = ((snap.len() as f64) * cut_frac) as usize;
        prop_assert!(Memory::from_snapshot(&snap[..cut]).is_err());
    }

    #[test]
    fn recovery_reproduces_the_fingerprint_from_genesis_or_snapshot(
        retain in 1usize..6,
        raw in raw_ops(96),
        snap_at_seed in any::<u64>(),
    ) {
        let records = build_records(&raw);
        let config = MemoryConfig { retain };
        // The golden run: state and journal grown together.
        let mut golden = Memory::new(config);
        let mut wal = Wal::new();
        let snap_at = (snap_at_seed % (records.len() as u64 + 1)) as usize;
        let mut snapshot = None;
        for (i, rec) in records.iter().enumerate() {
            if i == snap_at {
                snapshot = Some(golden.snapshot_bytes_at(wal.len() as u64));
            }
            golden.apply(rec);
            wal.log(rec);
        }
        if snap_at == records.len() {
            snapshot = Some(golden.snapshot_bytes_at(wal.len() as u64));
        }

        // Cold start: replay the whole journal from genesis.
        let (from_genesis, report) = recover_memory(config, None, wal.bytes(), |_| {});
        prop_assert!(report.tail_error.is_none());
        prop_assert_eq!(report.replayed as usize, records.len());
        prop_assert_eq!(from_genesis.fingerprint(), golden.fingerprint());

        // Warm start: snapshot plus the journal suffix.
        let snap = snapshot.expect("snap_at is always in range");
        let (from_snap, report) = recover_memory(config, Some(&snap), wal.bytes(), |_| {});
        prop_assert!(report.tail_error.is_none());
        prop_assert!(report.snapshot_error.is_none());
        prop_assert_eq!(report.replayed as usize, records.len() - snap_at);
        prop_assert_eq!(from_snap.fingerprint(), golden.fingerprint());
    }
}
