//! The forecaster service: on-demand predictions per registered resource.

use crate::registry::ResourceId;
use nws_forecast::{Forecast, IntervalTracker, NwsForecaster, PredictionInterval};
use nws_timeseries::Seconds;
use std::collections::BTreeMap;

/// EWMA gain for the per-resource gap intensity that drives confidence
/// degradation: each observation decays it toward 0, each gap pushes it
/// toward 1.
const GAP_EWMA_GAIN: f64 = 0.15;

/// A forecast answer, NWS-extract style: the point forecast, the predictor
/// that issued it, and a calibrated prediction interval.
#[derive(Debug, Clone)]
pub struct ForecastAnswer {
    /// The point forecast for the next measurement.
    pub forecast: Forecast,
    /// Empirical prediction interval (absent until enough errors have been
    /// scored).
    pub interval: Option<PredictionInterval>,
    /// Number of measurements the forecaster has consumed.
    pub observations: u64,
    /// Seconds since the forecaster last absorbed a real measurement
    /// (0 when queried via [`ForecastService::forecast`], which has no
    /// notion of "now").
    pub staleness: Seconds,
    /// Confidence in `[0, 1]`: 1 on an uninterrupted measurement stream,
    /// degrading toward 0 as recent slots resolve to gaps instead of
    /// readings.
    pub confidence: f64,
}

/// Per-resource forecasting state.
#[derive(Debug)]
struct ResourceState {
    nws: NwsForecaster,
    intervals: IntervalTracker,
    /// Time of the last real measurement absorbed.
    last_obs: Option<Seconds>,
    /// EWMA of the recent gap rate (0 = clean stream, →1 = all gaps).
    gap_ewma: f64,
    /// Total gaps noted for this resource.
    gaps: u64,
    /// Bumped on every observation or gap — anything that can change
    /// the answer [`ForecastService::forecast`] returns. The serving
    /// layer's per-resource forecast cache is valid exactly while this
    /// counter holds still.
    revision: u64,
}

impl ResourceState {
    fn confidence(&self) -> f64 {
        (1.0 - self.gap_ewma).clamp(0.0, 1.0)
    }
}

/// Per-resource forecasters, updated as measurements arrive.
#[derive(Debug)]
pub struct ForecastService {
    coverage: f64,
    state: BTreeMap<ResourceId, ResourceState>,
    /// Bumped on any resource's observation or gap.
    global_revision: u64,
}

impl ForecastService {
    /// Creates a service issuing intervals with the given two-sided
    /// coverage (e.g. `0.9`).
    pub fn new(coverage: f64) -> Self {
        Self {
            coverage,
            state: BTreeMap::new(),
            global_revision: 0,
        }
    }

    fn entry(&mut self, id: ResourceId) -> &mut ResourceState {
        let coverage = self.coverage;
        self.state.entry(id).or_insert_with(|| ResourceState {
            nws: NwsForecaster::nws_default(),
            intervals: IntervalTracker::new(coverage),
            last_obs: None,
            gap_ewma: 0.0,
            gaps: 0,
            revision: 0,
        })
    }

    /// Feeds one measurement for a resource (scores the standing forecast
    /// first, as the paper's Eq. 5 protocol does). `time` is the
    /// measurement's timestamp, used to answer staleness queries.
    pub fn observe(&mut self, id: ResourceId, time: Seconds, value: f64) {
        let st = self.entry(id);
        if let Some(predicted) = st.nws.predicted_value() {
            st.intervals.record(predicted, value);
        }
        st.nws.update(value);
        st.last_obs = Some(time);
        st.gap_ewma *= 1.0 - GAP_EWMA_GAIN;
        st.revision += 1;
        self.global_revision += 1;
    }

    /// Notes that the slot at `time` resolved to a gap for this resource:
    /// the panel ages out stale windows, the confidence degrades, and no
    /// observation is counted.
    pub fn note_gap(&mut self, id: ResourceId, _time: Seconds) {
        let st = self.entry(id);
        st.nws.note_gap();
        st.gap_ewma += GAP_EWMA_GAIN * (1.0 - st.gap_ewma);
        st.gaps += 1;
        st.revision += 1;
        self.global_revision += 1;
    }

    /// Change counter for one resource's forecaster: equal revisions
    /// guarantee [`ForecastService::forecast`] returns an identical
    /// answer, which is what lets a serving cache short-circuit
    /// repeated queries between measurement ticks.
    pub fn revision(&self, id: ResourceId) -> u64 {
        self.state.get(&id).map_or(0, |st| st.revision)
    }

    /// Change counter across all resources (any observation or gap).
    pub fn global_revision(&self) -> u64 {
        self.global_revision
    }

    /// Gaps noted for a resource so far.
    pub fn gap_count(&self, id: ResourceId) -> u64 {
        self.state.get(&id).map_or(0, |st| st.gaps)
    }

    /// The standing forecast for a resource (staleness reported as 0 —
    /// use [`ForecastService::forecast_at`] when "now" is known).
    pub fn forecast(&self, id: ResourceId) -> Option<ForecastAnswer> {
        self.answer(id, None)
    }

    /// The standing forecast for a resource together with how stale it is
    /// at time `now` (seconds since the last absorbed measurement).
    pub fn forecast_at(&self, id: ResourceId, now: Seconds) -> Option<ForecastAnswer> {
        self.answer(id, Some(now))
    }

    fn answer(&self, id: ResourceId, now: Option<Seconds>) -> Option<ForecastAnswer> {
        let st = self.state.get(&id)?;
        let forecast = st.nws.forecast()?;
        let interval = st.intervals.interval(forecast.value);
        let staleness = match (now, st.last_obs) {
            (Some(now), Some(last)) => (now - last).max(0.0),
            _ => 0.0,
        };
        Some(ForecastAnswer {
            observations: st.nws.observations(),
            interval,
            staleness,
            confidence: st.confidence(),
            forecast,
        })
    }

    /// The selected predictor's `k`-step horizon forecast for a resource:
    /// step 1 is the one-step forecast, later steps follow the selected
    /// member's dynamics (flat for level/window members, mean-reverting
    /// for AR/ARMA). `None` before the resource has a live forecaster or
    /// when `k == 0`.
    pub fn forecast_horizon(&self, id: ResourceId, k: usize) -> Option<Vec<f64>> {
        if k == 0 {
            return None;
        }
        self.state.get(&id)?.nws.predict_horizon(k)
    }

    /// Resources with live forecasters.
    pub fn resource_ids(&self) -> Vec<ResourceId> {
        self.state.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ResourceId;

    fn rid(n: u64) -> ResourceId {
        ResourceId(n)
    }

    #[test]
    fn forecast_appears_after_first_observation() {
        let mut svc = ForecastService::new(0.9);
        assert!(svc.forecast(rid(1)).is_none());
        svc.observe(rid(1), 10.0, 0.7);
        let a = svc.forecast(rid(1)).expect("live");
        assert_eq!(a.forecast.value, 0.7);
        assert_eq!(a.observations, 1);
        assert_eq!(a.confidence, 1.0);
    }

    #[test]
    fn intervals_calibrate_over_time() {
        let mut svc = ForecastService::new(0.8);
        let mut rng = nws_stats::Rng::new(3);
        for i in 0..500 {
            svc.observe(
                rid(1),
                i as f64 * 10.0,
                (0.6 + 0.1 * rng.next_standard_normal()).clamp(0.0, 1.0),
            );
        }
        let a = svc.forecast(rid(1)).expect("live");
        let iv = a.interval.expect("interval warm");
        assert!(iv.lo < a.forecast.value && a.forecast.value < iv.hi);
        // The 80% interval of ~N(0.6, 0.1) spans roughly ±0.13.
        assert!(
            iv.hi - iv.lo > 0.1 && iv.hi - iv.lo < 0.5,
            "width = {}",
            iv.hi - iv.lo
        );
    }

    #[test]
    fn resources_are_isolated() {
        let mut svc = ForecastService::new(0.9);
        for i in 0..20 {
            let t = i as f64 * 10.0;
            svc.observe(rid(1), t, 0.9);
            svc.observe(rid(2), t, 0.1);
        }
        let a = svc.forecast(rid(1)).expect("live");
        let b = svc.forecast(rid(2)).expect("live");
        assert!((a.forecast.value - 0.9).abs() < 1e-6);
        assert!((b.forecast.value - 0.1).abs() < 1e-6);
        assert_eq!(svc.resource_ids(), vec![rid(1), rid(2)]);
    }

    #[test]
    fn staleness_measures_time_since_last_observation() {
        let mut svc = ForecastService::new(0.9);
        svc.observe(rid(1), 100.0, 0.5);
        let fresh = svc.forecast_at(rid(1), 100.0).expect("live");
        assert_eq!(fresh.staleness, 0.0);
        let stale = svc.forecast_at(rid(1), 400.0).expect("live");
        assert_eq!(stale.staleness, 300.0);
        // The now-less query reports zero staleness by convention.
        assert_eq!(svc.forecast(rid(1)).unwrap().staleness, 0.0);
    }

    #[test]
    fn confidence_degrades_on_gaps_and_recovers() {
        let mut svc = ForecastService::new(0.9);
        for i in 0..30 {
            svc.observe(rid(1), i as f64 * 10.0, 0.6);
        }
        assert_eq!(svc.forecast(rid(1)).unwrap().confidence, 1.0);
        for i in 30..40 {
            svc.note_gap(rid(1), i as f64 * 10.0);
        }
        let degraded = svc.forecast(rid(1)).expect("level members survive");
        assert!(degraded.confidence < 0.5, "c = {}", degraded.confidence);
        assert_eq!(svc.gap_count(rid(1)), 10);
        // Clean measurements rebuild confidence.
        for i in 40..80 {
            svc.observe(rid(1), i as f64 * 10.0, 0.6);
        }
        let recovered = svc.forecast(rid(1)).unwrap();
        assert!(recovered.confidence > 0.9, "c = {}", recovered.confidence);
    }

    #[test]
    fn revisions_move_with_observations_and_gaps() {
        let mut svc = ForecastService::new(0.9);
        assert_eq!(svc.revision(rid(1)), 0);
        svc.observe(rid(1), 0.0, 0.5);
        assert_eq!(svc.revision(rid(1)), 1);
        svc.note_gap(rid(1), 10.0);
        assert_eq!(svc.revision(rid(1)), 2);
        svc.observe(rid(2), 0.0, 0.5);
        assert_eq!(svc.revision(rid(1)), 2, "resources are isolated");
        assert_eq!(svc.global_revision(), 3);
    }

    #[test]
    fn horizon_starts_at_the_one_step_forecast() {
        let mut svc = ForecastService::new(0.9);
        assert!(svc.forecast_horizon(rid(1), 8).is_none(), "no data yet");
        for i in 0..60 {
            svc.observe(rid(1), i as f64 * 10.0, 0.4 + 0.2 * ((i % 5) as f64 / 5.0));
        }
        let h = svc.forecast_horizon(rid(1), 8).expect("live");
        assert_eq!(h.len(), 8);
        let one_step = svc.forecast(rid(1)).unwrap().forecast.value;
        assert_eq!(h[0], one_step, "horizon step 1 is the one-step forecast");
        assert!(svc.forecast_horizon(rid(1), 0).is_none());
    }

    #[test]
    fn gaps_do_not_count_as_observations() {
        let mut svc = ForecastService::new(0.9);
        svc.observe(rid(1), 0.0, 0.5);
        svc.note_gap(rid(1), 10.0);
        svc.note_gap(rid(1), 20.0);
        let a = svc.forecast(rid(1)).expect("live");
        assert_eq!(a.observations, 1);
    }
}
