//! The forecaster service: on-demand predictions per registered resource.

use crate::registry::ResourceId;
use nws_forecast::{Forecast, IntervalTracker, NwsForecaster, PredictionInterval};
use std::collections::BTreeMap;

/// A forecast answer, NWS-extract style: the point forecast, the predictor
/// that issued it, and a calibrated prediction interval.
#[derive(Debug, Clone)]
pub struct ForecastAnswer {
    /// The point forecast for the next measurement.
    pub forecast: Forecast,
    /// Empirical prediction interval (absent until enough errors have been
    /// scored).
    pub interval: Option<PredictionInterval>,
    /// Number of measurements the forecaster has consumed.
    pub observations: u64,
}

/// Per-resource forecasters, updated as measurements arrive.
#[derive(Debug)]
pub struct ForecastService {
    coverage: f64,
    state: BTreeMap<ResourceId, (NwsForecaster, IntervalTracker)>,
}

impl ForecastService {
    /// Creates a service issuing intervals with the given two-sided
    /// coverage (e.g. `0.9`).
    pub fn new(coverage: f64) -> Self {
        Self {
            coverage,
            state: BTreeMap::new(),
        }
    }

    /// Feeds one measurement for a resource (scores the standing forecast
    /// first, as the paper's Eq. 5 protocol does).
    pub fn observe(&mut self, id: ResourceId, value: f64) {
        let coverage = self.coverage;
        let (nws, intervals) = self
            .state
            .entry(id)
            .or_insert_with(|| (NwsForecaster::nws_default(), IntervalTracker::new(coverage)));
        if let Some(f) = nws.forecast() {
            intervals.record(f.value, value);
        }
        nws.update(value);
    }

    /// The standing forecast for a resource.
    pub fn forecast(&self, id: ResourceId) -> Option<ForecastAnswer> {
        let (nws, intervals) = self.state.get(&id)?;
        let forecast = nws.forecast()?;
        let interval = intervals.interval(forecast.value);
        Some(ForecastAnswer {
            observations: nws.observations(),
            interval,
            forecast,
        })
    }

    /// Resources with live forecasters.
    pub fn resource_ids(&self) -> Vec<ResourceId> {
        self.state.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ResourceId;

    fn rid(n: u64) -> ResourceId {
        ResourceId(n)
    }

    #[test]
    fn forecast_appears_after_first_observation() {
        let mut svc = ForecastService::new(0.9);
        assert!(svc.forecast(rid(1)).is_none());
        svc.observe(rid(1), 0.7);
        let a = svc.forecast(rid(1)).expect("live");
        assert_eq!(a.forecast.value, 0.7);
        assert_eq!(a.observations, 1);
    }

    #[test]
    fn intervals_calibrate_over_time() {
        let mut svc = ForecastService::new(0.8);
        let mut rng = nws_stats::Rng::new(3);
        for _ in 0..500 {
            svc.observe(
                rid(1),
                (0.6 + 0.1 * rng.next_standard_normal()).clamp(0.0, 1.0),
            );
        }
        let a = svc.forecast(rid(1)).expect("live");
        let iv = a.interval.expect("interval warm");
        assert!(iv.lo < a.forecast.value && a.forecast.value < iv.hi);
        // The 80% interval of ~N(0.6, 0.1) spans roughly ±0.13.
        assert!(
            iv.hi - iv.lo > 0.1 && iv.hi - iv.lo < 0.5,
            "width = {}",
            iv.hi - iv.lo
        );
    }

    #[test]
    fn resources_are_isolated() {
        let mut svc = ForecastService::new(0.9);
        for _ in 0..20 {
            svc.observe(rid(1), 0.9);
            svc.observe(rid(2), 0.1);
        }
        let a = svc.forecast(rid(1)).expect("live");
        let b = svc.forecast(rid(2)).expect("live");
        assert!((a.forecast.value - 0.9).abs() < 1e-6);
        assert!((b.forecast.value - 0.1).abs() < 1e-6);
        assert_eq!(svc.resource_ids(), vec![rid(1), rid(2)]);
    }
}
