//! `GridMonitor`: the whole weather service over a fleet of hosts.
//!
//! The monitor is a client of the deterministic event engine
//! ([`nws_runtime::Engine`]): each host is one engine shard — a
//! [`Source`] producing one [`SlotRecord`] per measurement slot — and
//! the [`Memory`] + [`ForecastService`] pair registers as the commit
//! [`Stage`] absorbing those events slot-major in host-registration
//! order. Timing comes from the shared [`Cadence`]; batching, ordering,
//! and backpressure live in the engine, not here.
//!
//! Beyond the fault-free lockstep flow, the monitor threads a
//! [`FaultPlan`] through the measurement path: hosts suffer sensor
//! dropouts, failed probes (retried with backoff under a per-slot
//! deadline), outages with reboots, and delayed deliveries (a
//! [`DelayLine`] event transform redelivers held-back measurements at
//! commit time) — and every slot still resolves to either a stored
//! reading or an explicit gap in the [`Memory`] and [`ForecastService`].
//! Because each host's fault stream is a pure function of the plan seed
//! and the host name, and the engine commits slot-major in registration
//! order, runs are bit-identical at any `--threads` setting, any batch
//! window, and under any engine clock.

use crate::memory::{Memory, MemoryConfig, StoreOutcome};
use crate::registry::{Metric, Registry, ResourceId};
use crate::service::{ForecastAnswer, ForecastService};
use nws_faults::{DelayLine, FaultPlan, FaultStats, HostFaults, SlotFaults};
use nws_runtime::{Cadence, Clock, Engine, EngineConfig, Source, Stage};
use nws_sensors::{HybridSensor, LoadAvgSensor, ProbeOutcome, VmstatSensor};
use nws_sim::{Host, HostProfile, Seconds};

/// Grid monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct GridMonitorConfig {
    /// The measurement/probe schedule (paper: 10 s measurements, 60 s
    /// probes) — the one shared [`Cadence`] the engine runs on.
    pub cadence: Cadence,
    /// Most slots the engine buffers per host before committing (the
    /// bounded event-queue window; output-invariant).
    pub batch_slots: usize,
    /// Memory retention per series.
    pub memory: MemoryConfig,
    /// Two-sided coverage of forecast intervals.
    pub interval_coverage: f64,
    /// Forecasts staler than this (seconds since the last absorbed
    /// measurement) mark their host *degraded*: still reported, but
    /// excluded from [`GridSnapshot::best_host`] placement decisions.
    pub staleness_bound: Seconds,
}

impl Default for GridMonitorConfig {
    fn default() -> Self {
        Self {
            cadence: Cadence::PAPER,
            batch_slots: EngineConfig::default().batch_slots,
            memory: MemoryConfig::default(),
            interval_coverage: 0.9,
            staleness_bound: 120.0,
        }
    }
}

/// A measurement held back by a delivery fault: what arrives when the
/// [`DelayLine`] redelivers it.
#[derive(Debug, Clone, Copy)]
struct PendingDelivery {
    id: ResourceId,
    t: Seconds,
    value: f64,
}

/// One engine shard: a host, its sensors, and its fault stream.
struct MonitoredHost {
    host: Host,
    load_sensor: LoadAvgSensor,
    vmstat_sensor: VmstatSensor,
    hybrid_sensor: HybridSensor,
    ids: [ResourceId; 4], // load, vmstat, hybrid, load1 (registry order)
    /// The slot grid (copied from the monitor config; the source needs
    /// it to place measurements in time).
    cadence: Cadence,
    /// This host's deterministic fault stream.
    faults: HostFaults,
    /// Measurements delayed in flight, redelivered at commit time.
    pending: DelayLine<PendingDelivery>,
    /// What the fault layer did to this host and how it was absorbed.
    stats: FaultStats,
}

impl Source for MonitoredHost {
    type Event = SlotRecord;

    /// Sensing side of the engine contract: advances the host simulator
    /// and takes all four readings. Reads only measurement state (host,
    /// sensors, fault stream) — never the delivery state (`pending`,
    /// `stats`) the commit stage mutates.
    fn produce(&mut self, slot: u64) -> SlotRecord {
        let probe_every = self.cadence.probe_every();
        let period = self.cadence.measurement_period;
        measure_host(self, slot, probe_every, period)
    }
}

/// Everything one host produced for one slot: the measurement time, one
/// optional reading per series (`None` = the reading was lost), and the
/// faults that shaped it. Produced thread-side, committed sequentially.
struct SlotRecord {
    t: Seconds,
    /// load, vmstat, hybrid, load1 — `None` marks an explicit gap.
    values: [Option<f64>; 4],
    faults: SlotFaults,
    /// Probe-cycle outcome (probe slots only).
    probe: Option<ProbeOutcome>,
    /// The hybrid served this slot via the cross-sensor fallback.
    cross_fallback: bool,
}

/// Advances one host to the given slot's measurement time and takes all
/// four readings, consulting the host's fault stream first. Touches only
/// this host's state, so batches of slots can run on different hosts
/// concurrently. With an inert fault stream every branch below reduces to
/// the fault-free measurement path, bit for bit.
fn measure_host(
    mh: &mut MonitoredHost,
    slot: u64,
    probe_every: u64,
    period: Seconds,
) -> SlotRecord {
    let probe_slot = slot.is_multiple_of(probe_every);
    let target = (slot + 1) as f64 * period;
    let f = mh.faults.slot(slot, probe_slot);
    if f.outage && !f.reboot {
        // Powered off: the simulator does not advance; the slot is a gap
        // on every series at its nominal timestamp.
        return SlotRecord {
            t: target,
            values: [None; 4],
            faults: f,
            probe: None,
            cross_fallback: false,
        };
    }
    if f.reboot {
        // The host came back up at the start of this slot with a fresh
        // kernel; stateful sensors must not difference across the boot.
        // (An overrunning probe can leave the clock past the nominal boot
        // time — boot "now" in that case rather than in the past.)
        mh.host
            .power_cycle_until((target - period).max(mh.host.now()));
        mh.vmstat_sensor.reset();
        mh.hybrid_sensor.reset();
    }
    mh.host.advance_to(target);
    let t = mh.host.now();
    let load_avail = if f.drop_load {
        None
    } else {
        Some(mh.load_sensor.measure(&mh.host))
    };
    let vm_avail = if f.drop_vmstat {
        None
    } else {
        Some(mh.vmstat_sensor.measure(&mh.host))
    };
    let (hybrid_avail, probe, cross_fallback) = if probe_slot {
        // The probe is an independent active measurement; it must finish
        // (including retries and backoff) before the next slot's time.
        let deadline = target + period;
        let (v, outcome) = mh.hybrid_sensor.measure_with_probe_retries(
            &mut mh.host,
            f.failed_probe_attempts,
            deadline,
        );
        (Some(v), Some(outcome), false)
    } else {
        match mh
            .hybrid_sensor
            .measure_degraded(&mh.host, f.drop_load, f.drop_vmstat)
        {
            Some((v, cross)) => (Some(v), None, cross),
            None => (None, None, false),
        }
    };
    let load1 = mh.host.load_average().one_minute();
    SlotRecord {
        t,
        values: [load_avail, vm_avail, hybrid_avail, Some(load1)],
        faults: f,
        probe,
        cross_fallback,
    }
}

/// The engine's commit stage: the memory and forecast service absorbing
/// each host's slot events in canonical order.
struct GridStage<'a> {
    memory: &'a mut Memory,
    service: &'a mut ForecastService,
}

impl Stage<MonitoredHost> for GridStage<'_> {
    fn commit(&mut self, _shard: usize, mh: &mut MonitoredHost, slot: u64, rec: &SlotRecord) {
        commit_slot(self.memory, self.service, mh, slot, rec);
    }
}

/// Commits one host's slot to the memory and forecast service: releases
/// delay-line deliveries that are now due, then stores this slot's
/// readings or records explicit gaps. The engine calls this slot-major
/// in host-registration order — from `step()` and `run_steps()` alike —
/// so the shared state evolves identically at any thread count.
fn commit_slot(
    memory: &mut Memory,
    service: &mut ForecastService,
    mh: &mut MonitoredHost,
    slot: u64,
    rec: &SlotRecord,
) {
    mh.stats.slots += 1;
    // Late deliveries land before the current slot's readings; whether
    // the memory still accepts them depends on what arrived in between.
    let stats = &mut mh.stats;
    mh.pending
        .release(slot, |p| match memory.append(p.id, p.t, p.value) {
            StoreOutcome::Stored => {
                service.observe(p.id, p.t, p.value);
                stats.late_delivered += 1;
            }
            _ => stats.late_dropped += 1,
        });
    let f = &rec.faults;
    if f.reboot {
        mh.stats.reboots += 1;
    }
    if f.outage && !f.reboot {
        mh.stats.outage_slots += 1;
        for id in mh.ids {
            memory.record_gap(id, rec.t);
            service.note_gap(id, rec.t);
            mh.stats.gaps += 1;
        }
        return;
    }
    if let Some(p) = rec.probe {
        mh.stats.probe_attempts_failed += u64::from(p.failed_attempts);
        if !p.succeeded {
            mh.stats.probes_abandoned += 1;
        }
    }
    if rec.cross_fallback {
        mh.stats.fallback_cross += 1;
    }
    if f.delay_slots > 0 {
        // The readings exist but are in flight: the slot resolves to a
        // gap *now*, and the delay line redelivers the values when their
        // due slot commits.
        mh.stats.delayed += 1;
        for (id, v) in mh.ids.iter().zip(rec.values) {
            memory.record_gap(*id, rec.t);
            service.note_gap(*id, rec.t);
            mh.stats.gaps += 1;
            if let Some(value) = v {
                mh.pending.admit(
                    slot + f.delay_slots,
                    PendingDelivery {
                        id: *id,
                        t: rec.t,
                        value,
                    },
                );
            }
        }
        return;
    }
    for (id, v) in mh.ids.iter().zip(rec.values) {
        match v {
            Some(value) => {
                if memory.append(*id, rec.t, value).is_stored() {
                    service.observe(*id, rec.t, value);
                    mh.stats.delivered += 1;
                }
            }
            None => {
                memory.record_gap(*id, rec.t);
                service.note_gap(*id, rec.t);
                mh.stats.gaps += 1;
            }
        }
    }
}

/// One host's row in a grid snapshot.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Host name.
    pub host: String,
    /// Latest hybrid availability measurement.
    pub latest_hybrid: Option<f64>,
    /// Standing hybrid availability forecast (with staleness relative to
    /// the snapshot time).
    pub forecast: Option<ForecastAnswer>,
    /// The forecast is missing or staler than the configured bound:
    /// the host is excluded from placement decisions.
    pub degraded: bool,
}

/// A point-in-time view of the whole grid.
#[derive(Debug, Clone)]
pub struct GridSnapshot {
    /// Simulation time of the snapshot.
    pub time: Seconds,
    /// One report per host, in registration order.
    pub hosts: Vec<HostReport>,
}

impl GridSnapshot {
    /// The non-degraded host with the highest finite forecast
    /// availability, if any — where a scheduler would send the next task.
    /// Hosts whose forecasts are stale (degraded) or non-finite are
    /// skipped rather than trusted or panicked over.
    pub fn best_host(&self) -> Option<&HostReport> {
        self.hosts
            .iter()
            .filter(|h| !h.degraded)
            .filter_map(|h| {
                let f = h.forecast.as_ref()?.forecast.value;
                f.is_finite().then_some((h, f))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(h, _)| h)
    }

    /// Hosts currently excluded from placement (no forecast, or one
    /// staler than the bound).
    pub fn degraded_hosts(&self) -> Vec<&HostReport> {
        self.hosts.iter().filter(|h| h.degraded).collect()
    }
}

/// The weather service: hosts + sensors + registry + memory + forecasts,
/// advanced together in lockstep.
///
/// # Examples
///
/// ```
/// use nws_grid::{GridMonitor, Metric};
///
/// let mut grid = GridMonitor::ucsd(7);
/// grid.run_steps(30); // five simulated minutes on the 10 s cadence
/// let id = grid
///     .registry()
///     .lookup("gremlin", Metric::CpuAvailabilityHybrid)
///     .unwrap();
/// let answer = grid.forecasts().forecast(id).unwrap();
/// assert!((0.0..=1.0).contains(&answer.forecast.value));
/// ```
pub struct GridMonitor {
    config: GridMonitorConfig,
    registry: Registry,
    memory: Memory,
    service: ForecastService,
    /// The event engine owning the per-host shards and the slot clock.
    engine: Engine<MonitoredHost>,
    plan: FaultPlan,
}

impl GridMonitor {
    /// Creates a monitor over the given host profiles, all seeded from
    /// `base_seed`, with no fault injection.
    pub fn new(profiles: &[HostProfile], base_seed: u64, config: GridMonitorConfig) -> Self {
        Self::with_faults(profiles, base_seed, config, FaultPlan::none())
    }

    /// Creates a monitor whose measurement path is subjected to the given
    /// fault plan. [`FaultPlan::none()`] reproduces the fault-free
    /// monitor bit for bit.
    pub fn with_faults(
        profiles: &[HostProfile],
        base_seed: u64,
        config: GridMonitorConfig,
        plan: FaultPlan,
    ) -> Self {
        Self::build(profiles, base_seed, config, plan, None)
    }

    /// Creates a monitor paced by an explicit engine clock. The clock
    /// changes pacing only: virtual-time, step-quantized, and wall
    /// clocks all produce bit-identical measurements and forecasts.
    pub fn with_clock(
        profiles: &[HostProfile],
        base_seed: u64,
        config: GridMonitorConfig,
        plan: FaultPlan,
        clock: Box<dyn Clock>,
    ) -> Self {
        Self::build(profiles, base_seed, config, plan, Some(clock))
    }

    fn build(
        profiles: &[HostProfile],
        base_seed: u64,
        config: GridMonitorConfig,
        plan: FaultPlan,
        clock: Option<Box<dyn Clock>>,
    ) -> Self {
        let mut registry = Registry::new();
        let hosts: Vec<MonitoredHost> = profiles
            .iter()
            .map(|p| {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in p.name().as_bytes() {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                let host = p.build(h ^ base_seed);
                let ids = [
                    registry.register(p.name(), Metric::CpuAvailabilityLoad),
                    registry.register(p.name(), Metric::CpuAvailabilityVmstat),
                    registry.register(p.name(), Metric::CpuAvailabilityHybrid),
                    registry.register(p.name(), Metric::LoadAverage),
                ];
                let faults = plan.host_faults(p.name());
                MonitoredHost {
                    host,
                    load_sensor: LoadAvgSensor::new(),
                    vmstat_sensor: VmstatSensor::new(),
                    hybrid_sensor: HybridSensor::default(),
                    ids,
                    cadence: config.cadence,
                    faults,
                    pending: DelayLine::new(),
                    stats: FaultStats::default(),
                }
            })
            .collect();
        let engine_config = EngineConfig {
            cadence: config.cadence,
            batch_slots: config.batch_slots,
        };
        let engine = match clock {
            None => Engine::new(hosts, engine_config),
            Some(clock) => Engine::with_clock(hosts, engine_config, clock),
        };
        Self {
            config,
            registry,
            memory: Memory::new(config.memory),
            service: ForecastService::new(config.interval_coverage),
            engine,
            plan,
        }
    }

    /// The six-UCSD-host grid of the paper.
    pub fn ucsd(base_seed: u64) -> Self {
        Self::new(&HostProfile::all(), base_seed, GridMonitorConfig::default())
    }

    /// The name service.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The measurement memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Attaches a write-ahead log to the memory: every accepted
    /// measurement, gap, and counted drop from here on is journaled in
    /// commit order (see [`crate::wal`]). Attach before the first step
    /// for a log that rebuilds the full state from genesis.
    pub fn attach_journal(&mut self, wal: crate::wal::Wal) {
        self.memory.attach_journal(wal);
    }

    /// The attached journal, if any — what the serving layer streams to
    /// replicas.
    pub fn journal(&self) -> Option<&crate::wal::Wal> {
        self.memory.journal()
    }

    /// Checkpoints the memory into `store` and rotates the journal up
    /// to the snapshot's covered offset — see [`Memory::checkpoint`].
    pub fn checkpoint(
        &mut self,
        store: &crate::wal::SnapshotStore,
        seq: u64,
    ) -> Result<crate::wal::CheckpointReport, crate::wal::WalError> {
        self.memory.checkpoint(store, seq)
    }

    /// The forecast service.
    pub fn forecasts(&self) -> &ForecastService {
        &self.service
    }

    /// The fault plan this monitor runs under.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Aggregate fault/survival statistics across the fleet.
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for mh in self.engine.sources() {
            total.merge(&mh.stats);
        }
        total
    }

    /// Measurement slots taken so far.
    pub fn slots(&self) -> u64 {
        self.engine.slot()
    }

    /// The shared tick schedule this monitor's engine runs on.
    pub fn cadence(&self) -> Cadence {
        self.config.cadence
    }

    /// Changes the engine's batch window (slots buffered per host before
    /// the commit barrier). Output-invariant; exposed for benchmarks.
    pub fn set_batch_slots(&mut self, batch_slots: usize) {
        self.config.batch_slots = batch_slots;
        self.engine.set_batch_slots(batch_slots);
    }

    /// Current simulation time in seconds (slots × measurement period);
    /// the "now" a serving layer judges staleness against.
    pub fn now(&self) -> Seconds {
        self.config.cadence.slot_time(self.slots())
    }

    /// Change counter over the whole monitor: any stored measurement or
    /// recorded gap bumps it, as does the passage of a measurement slot
    /// itself (so snapshot staleness never serves stale). A serving
    /// cache that captured this value can keep answering until it
    /// moves.
    pub fn revision(&self) -> u64 {
        self.slots()
            .wrapping_add(self.memory.global_revision())
            .wrapping_add(self.service.global_revision())
    }

    /// Advances every host by one measurement period and publishes one
    /// measurement (or explicit gap) per registered series.
    pub fn step(&mut self) {
        self.run_steps(1);
    }

    /// Runs `n` measurement slots through the event engine.
    ///
    /// The engine fans production out host-by-host across worker threads
    /// in bounded batches (host simulators, sensors, and fault streams
    /// share no state) and commits the buffered slot records to the
    /// memory and forecast service slot-major in host-registration order
    /// — the canonical event order — so memory contents, gap records,
    /// and forecast state are bit-identical at any thread count and any
    /// batch window.
    pub fn run_steps(&mut self, n: u64) {
        let mut stage = GridStage {
            memory: &mut self.memory,
            service: &mut self.service,
        };
        self.engine.run(n, &mut stage);
    }

    /// A snapshot of every host's latest hybrid measurement and forecast,
    /// with staleness judged against the snapshot time.
    pub fn snapshot(&self) -> GridSnapshot {
        let time = self.now();
        let bound = self.config.staleness_bound;
        let hosts = self
            .engine
            .sources()
            .iter()
            .map(|mh| {
                let hybrid_id = mh.ids[2];
                let forecast = self.service.forecast_at(hybrid_id, time);
                let degraded = forecast.as_ref().is_none_or(|a| a.staleness > bound);
                HostReport {
                    host: mh.host.name().to_string(),
                    latest_hybrid: self.memory.latest(hybrid_id).map(|p| p.value),
                    forecast,
                    degraded,
                }
            })
            .collect();
        GridSnapshot { time, hosts }
    }
}

impl std::fmt::Debug for GridMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridMonitor")
            .field("hosts", &self.engine.sources().len())
            .field("slots", &self.slots())
            .field("resources", &self.registry.len())
            .field("faults", &!self.plan.is_none())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_faults::FaultRates;

    #[test]
    fn registers_four_series_per_host() {
        let gm = GridMonitor::ucsd(1);
        assert_eq!(gm.registry().len(), 24);
        assert!(gm
            .registry()
            .lookup("kongo", Metric::CpuAvailabilityHybrid)
            .is_some());
    }

    #[test]
    fn steps_publish_measurements_and_forecasts() {
        let mut gm = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Gremlin],
            7,
            GridMonitorConfig::default(),
        );
        gm.run_steps(30); // five minutes
        assert_eq!(gm.slots(), 30);
        let id = gm
            .registry()
            .lookup("thing1", Metric::CpuAvailabilityHybrid)
            .expect("registered");
        assert_eq!(gm.memory().len(id), 30);
        let answer = gm.forecasts().forecast(id).expect("forecaster live");
        assert!((0.0..=1.0).contains(&answer.forecast.value));
        assert_eq!(answer.observations, 30);
        assert_eq!(answer.confidence, 1.0);
    }

    #[test]
    fn snapshot_reports_every_host() {
        let mut gm = GridMonitor::ucsd(3);
        gm.run_steps(12);
        let snap = gm.snapshot();
        assert_eq!(snap.hosts.len(), 6);
        assert!((snap.time - 120.0).abs() < 1e-9);
        for h in &snap.hosts {
            assert!(h.latest_hybrid.is_some(), "{} has no measurement", h.host);
            assert!(h.forecast.is_some(), "{} has no forecast", h.host);
            assert!(!h.degraded, "{} degraded on a clean run", h.host);
        }
        let best = snap.best_host().expect("forecasts live");
        assert!(!best.host.is_empty());
    }

    #[test]
    fn memory_eviction_bounds_history() {
        let mut gm = GridMonitor::new(
            &[HostProfile::Gremlin],
            9,
            GridMonitorConfig {
                memory: MemoryConfig { retain: 10 },
                ..GridMonitorConfig::default()
            },
        );
        gm.run_steps(25);
        let id = gm
            .registry()
            .lookup("gremlin", Metric::LoadAverage)
            .expect("registered");
        assert_eq!(gm.memory().len(id), 10);
    }

    #[test]
    fn batched_run_matches_sequential_stepping() {
        // step() n times (always sequential) vs run_steps(n) (batched when
        // threads allow): memory contents must be bit-identical.
        let collect = |batched: bool| {
            let mut gm = GridMonitor::ucsd(11);
            if batched {
                nws_runtime::set_threads(Some(4));
                gm.run_steps(24);
                nws_runtime::set_threads(None);
            } else {
                for _ in 0..24 {
                    gm.step();
                }
            }
            let mut all = Vec::new();
            for mh in gm.engine.sources() {
                for id in mh.ids {
                    let points: Vec<(f64, f64)> = gm.memory.with_series(id, |times, values| {
                        times.iter().copied().zip(values.iter().copied()).collect()
                    });
                    let forecast = gm.service.forecast(id).map(|a| a.forecast.value);
                    all.push((points, forecast));
                }
            }
            all
        };
        assert_eq!(collect(true), collect(false));
    }

    #[test]
    fn deterministic_across_instances() {
        let run = || {
            let mut gm = GridMonitor::ucsd(42);
            gm.run_steps(18);
            let snap = gm.snapshot();
            snap.hosts
                .iter()
                .map(|h| h.latest_hybrid.expect("measured"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn best_host_skips_non_finite_forecasts() {
        let mut gm = GridMonitor::ucsd(3);
        gm.run_steps(6);
        let mut snap = gm.snapshot();
        // Corrupt one host's forecast: best_host must skip it, not panic.
        snap.hosts[0].forecast.as_mut().unwrap().forecast.value = f64::NAN;
        let best = snap.best_host().expect("five finite forecasts remain");
        assert_ne!(best.host, snap.hosts[0].host);
        // All degraded: no best host, still no panic.
        for h in &mut snap.hosts {
            h.degraded = true;
        }
        assert!(snap.best_host().is_none());
    }

    #[test]
    fn none_plan_matches_fault_free_monitor_bit_for_bit() {
        let dump = |gm: &GridMonitor| {
            let mut all = Vec::new();
            for mh in gm.engine.sources() {
                for id in mh.ids {
                    let pts: Vec<(f64, f64)> = gm.memory.with_series(id, |times, values| {
                        times.iter().copied().zip(values.iter().copied()).collect()
                    });
                    all.push((pts, gm.service.forecast(id).map(|a| a.forecast.value)));
                }
            }
            all
        };
        let mut plain = GridMonitor::ucsd(21);
        plain.run_steps(36);
        let mut none = GridMonitor::with_faults(
            &HostProfile::all(),
            21,
            GridMonitorConfig::default(),
            FaultPlan::none(),
        );
        none.run_steps(36);
        assert_eq!(dump(&plain), dump(&none));
        assert_eq!(none.fault_stats().gaps, 0);
        assert_eq!(none.fault_stats().delivered, 36 * 6 * 4);
    }

    #[test]
    fn faulted_run_is_bit_identical_across_thread_counts() {
        // The tentpole determinism guarantee: same seed + same FaultPlan
        // => identical series, gap records, and stats at any --threads.
        let run = |threads: Option<usize>| {
            nws_runtime::set_threads(threads);
            let mut gm = GridMonitor::with_faults(
                &HostProfile::all(),
                77,
                GridMonitorConfig::default(),
                FaultPlan::seeded(5, FaultRates::uniform(0.15)),
            );
            gm.run_steps(90);
            nws_runtime::set_threads(None);
            let mut series = Vec::new();
            for mh in gm.engine.sources() {
                for id in mh.ids {
                    let pts: Vec<(f64, f64)> = gm.memory.with_series(id, |times, values| {
                        times.iter().copied().zip(values.iter().copied()).collect()
                    });
                    series.push((pts, gm.memory.gaps(id), gm.memory.dropped(id)));
                }
            }
            (series, gm.fault_stats())
        };
        let (s1, st1) = run(Some(1));
        let (s4, st4) = run(Some(4));
        assert_eq!(s1, s4);
        assert_eq!(st1, st4);
        assert!(st1.gaps > 0, "0.15 intensity must produce gaps");
    }

    #[test]
    fn every_slot_resolves_to_reading_or_gap_under_heavy_faults() {
        let mut gm = GridMonitor::with_faults(
            &HostProfile::all(),
            13,
            GridMonitorConfig::default(),
            FaultPlan::seeded(99, FaultRates::uniform(0.4)),
        );
        gm.run_steps(120);
        let stats = gm.fault_stats();
        assert_eq!(stats.slots, 120 * 6);
        // Per host-slot, each of the 4 series resolves on time to either
        // a stored reading or an explicit gap (late arrivals resolve
        // *their* slot's gap retroactively, not the current one).
        assert_eq!(
            stats.delivered + stats.gaps,
            stats.slots * 4,
            "every series-slot must resolve on time or as a gap"
        );
        assert!(stats.reboots > 0, "outages at 0.4 intensity reboot");
        assert!(stats.probe_attempts_failed > 0);
        assert!(stats.delayed > 0);
        for mh in gm.engine.sources() {
            for id in mh.ids {
                assert!(
                    gm.memory.len(id) + gm.memory.gap_count(id) > 0,
                    "series must not be empty"
                );
            }
        }
    }

    #[test]
    fn outage_degrades_host_and_best_host_excludes_it() {
        // A plan with outages long enough to blow the staleness bound.
        let rates = FaultRates {
            outage: 0.08,
            outage_slots: (20, 30), // 200–300 s >> 120 s bound
            ..FaultRates::none()
        };
        let mut gm = GridMonitor::with_faults(
            &HostProfile::all(),
            31,
            GridMonitorConfig::default(),
            FaultPlan::seeded(8, rates),
        );
        // Step until some host is mid-outage at snapshot time.
        let mut saw_degraded = false;
        for _ in 0..240 {
            gm.step();
            let snap = gm.snapshot();
            if snap.hosts.iter().any(|h| h.degraded) {
                saw_degraded = true;
                for h in &snap.degraded_hosts() {
                    let f = h.forecast.as_ref().expect("forecast survives outage");
                    assert!(f.staleness > 120.0, "staleness = {}", f.staleness);
                }
                if let Some(best) = snap.best_host() {
                    assert!(!best.degraded);
                }
                break;
            }
        }
        assert!(saw_degraded, "8%/slot outage rate over 40 min");
        assert!(gm.fault_stats().outage_slots > 0);
    }

    #[test]
    fn delayed_deliveries_arrive_late_or_drop_deterministically() {
        let rates = FaultRates {
            delay: 0.3,
            delay_slots: (1, 4),
            ..FaultRates::none()
        };
        let mut gm = GridMonitor::with_faults(
            &[HostProfile::Gremlin],
            17,
            GridMonitorConfig::default(),
            FaultPlan::seeded(2, rates),
        );
        gm.run_steps(200);
        let st = gm.fault_stats();
        assert!(st.delayed > 0, "30% delay rate over 200 slots");
        assert!(st.gaps >= st.delayed * 4, "delayed slots gap all series");
        // A delayed reading only survives if nothing newer was stored
        // first; with on-time neighbors almost always present, most drop.
        assert!(st.late_delivered + st.late_dropped > 0);
        assert!(gm.memory.total_dropped() >= st.late_dropped);
    }
}
