//! `GridMonitor`: the whole weather service over a fleet of hosts.

use crate::memory::{Memory, MemoryConfig};
use crate::registry::{Metric, Registry, ResourceId};
use crate::service::{ForecastAnswer, ForecastService};
use nws_sensors::{HybridSensor, LoadAvgSensor, VmstatSensor, MEASUREMENT_PERIOD, PROBE_PERIOD};
use nws_sim::{Host, HostProfile, Seconds};

/// Grid monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct GridMonitorConfig {
    /// Measurement cadence (paper: 10 s).
    pub measurement_period: Seconds,
    /// Hybrid probe cadence (paper: 60 s).
    pub probe_period: Seconds,
    /// Memory retention per series.
    pub memory: MemoryConfig,
    /// Two-sided coverage of forecast intervals.
    pub interval_coverage: f64,
}

impl Default for GridMonitorConfig {
    fn default() -> Self {
        Self {
            measurement_period: MEASUREMENT_PERIOD,
            probe_period: PROBE_PERIOD,
            memory: MemoryConfig::default(),
            interval_coverage: 0.9,
        }
    }
}

struct MonitoredHost {
    host: Host,
    load_sensor: LoadAvgSensor,
    vmstat_sensor: VmstatSensor,
    hybrid_sensor: HybridSensor,
    ids: [ResourceId; 4], // load, vmstat, hybrid, load1 (registry order)
}

/// Advances one host to the given slot's measurement time and takes all
/// four readings. Touches only this host's state, so batches of slots can
/// run on different hosts concurrently.
fn measure_host(
    mh: &mut MonitoredHost,
    slot: u64,
    probe_every: u64,
    period: Seconds,
) -> (Seconds, [f64; 4]) {
    let probe_slot = slot.is_multiple_of(probe_every);
    let target = (slot + 1) as f64 * period;
    mh.host.advance_to(target);
    let t = mh.host.now();
    let load_avail = mh.load_sensor.measure(&mh.host);
    let vm_avail = mh.vmstat_sensor.measure(&mh.host);
    let hybrid_avail = if probe_slot {
        mh.hybrid_sensor.measure_with_probe(&mut mh.host)
    } else {
        mh.hybrid_sensor.measure(&mh.host)
    };
    let load1 = mh.host.load_average().one_minute();
    (t, [load_avail, vm_avail, hybrid_avail, load1])
}

/// One host's row in a grid snapshot.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Host name.
    pub host: String,
    /// Latest hybrid availability measurement.
    pub latest_hybrid: Option<f64>,
    /// Standing hybrid availability forecast.
    pub forecast: Option<ForecastAnswer>,
}

/// A point-in-time view of the whole grid.
#[derive(Debug, Clone)]
pub struct GridSnapshot {
    /// Simulation time of the snapshot.
    pub time: Seconds,
    /// One report per host, in registration order.
    pub hosts: Vec<HostReport>,
}

impl GridSnapshot {
    /// The host with the highest forecast availability, if any forecast is
    /// live — where a scheduler would send the next task.
    pub fn best_host(&self) -> Option<&HostReport> {
        self.hosts
            .iter()
            .filter(|h| h.forecast.is_some())
            .max_by(|a, b| {
                let fa = a.forecast.as_ref().expect("filtered").forecast.value;
                let fb = b.forecast.as_ref().expect("filtered").forecast.value;
                fa.partial_cmp(&fb).expect("forecasts are finite")
            })
    }
}

/// The weather service: hosts + sensors + registry + memory + forecasts,
/// advanced together in lockstep.
///
/// # Examples
///
/// ```
/// use nws_grid::{GridMonitor, Metric};
///
/// let mut grid = GridMonitor::ucsd(7);
/// grid.run_steps(30); // five simulated minutes on the 10 s cadence
/// let id = grid
///     .registry()
///     .lookup("gremlin", Metric::CpuAvailabilityHybrid)
///     .unwrap();
/// let answer = grid.forecasts().forecast(id).unwrap();
/// assert!((0.0..=1.0).contains(&answer.forecast.value));
/// ```
pub struct GridMonitor {
    config: GridMonitorConfig,
    registry: Registry,
    memory: Memory,
    service: ForecastService,
    hosts: Vec<MonitoredHost>,
    /// Measurement slots taken so far.
    slots: u64,
}

impl GridMonitor {
    /// Creates a monitor over the given host profiles, all seeded from
    /// `base_seed`.
    pub fn new(profiles: &[HostProfile], base_seed: u64, config: GridMonitorConfig) -> Self {
        let mut registry = Registry::new();
        let hosts = profiles
            .iter()
            .map(|p| {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in p.name().as_bytes() {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                let host = p.build(h ^ base_seed);
                let ids = [
                    registry.register(p.name(), Metric::CpuAvailabilityLoad),
                    registry.register(p.name(), Metric::CpuAvailabilityVmstat),
                    registry.register(p.name(), Metric::CpuAvailabilityHybrid),
                    registry.register(p.name(), Metric::LoadAverage),
                ];
                MonitoredHost {
                    host,
                    load_sensor: LoadAvgSensor::new(),
                    vmstat_sensor: VmstatSensor::new(),
                    hybrid_sensor: HybridSensor::default(),
                    ids,
                }
            })
            .collect();
        Self {
            config,
            registry,
            memory: Memory::new(config.memory),
            service: ForecastService::new(config.interval_coverage),
            hosts,
            slots: 0,
        }
    }

    /// The six-UCSD-host grid of the paper.
    pub fn ucsd(base_seed: u64) -> Self {
        Self::new(&HostProfile::all(), base_seed, GridMonitorConfig::default())
    }

    /// The name service.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The measurement memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The forecast service.
    pub fn forecasts(&self) -> &ForecastService {
        &self.service
    }

    /// Measurement slots taken so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    fn probe_every(&self) -> u64 {
        (self.config.probe_period / self.config.measurement_period)
            .round()
            .max(1.0) as u64
    }

    /// Advances every host by one measurement period and publishes one
    /// measurement per registered series.
    pub fn step(&mut self) {
        let probe_every = self.probe_every();
        let period = self.config.measurement_period;
        for mh in &mut self.hosts {
            let (t, values) = measure_host(mh, self.slots, probe_every, period);
            for (id, value) in mh.ids.iter().zip(values) {
                if self.memory.store(*id, t, value) {
                    self.service.observe(*id, value);
                }
            }
        }
        self.slots += 1;
    }

    /// Runs `n` measurement steps.
    ///
    /// With more than one worker thread available, the fleet is advanced
    /// host-by-host in parallel: each host simulates all `n` slots on its
    /// own thread (host simulators and sensors share no state), and the
    /// buffered measurements are then committed to the memory and forecast
    /// service slot-major in host-registration order — exactly the order a
    /// sequential [`GridMonitor::step`] loop uses, so memory contents and
    /// forecast state are bit-identical at any thread count.
    pub fn run_steps(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        if nws_runtime::threads() <= 1 || self.hosts.len() <= 1 {
            for _ in 0..n {
                self.step();
            }
            return;
        }
        let probe_every = self.probe_every();
        let period = self.config.measurement_period;
        let start_slot = self.slots;
        let hosts = std::mem::take(&mut self.hosts);
        let mut advanced = nws_runtime::parallel_map(hosts, |mut mh| {
            let mut batch = Vec::with_capacity(n as usize);
            for i in 0..n {
                batch.push(measure_host(&mut mh, start_slot + i, probe_every, period));
            }
            (mh, batch)
        });
        for i in 0..n as usize {
            for (mh, batch) in &advanced {
                let (t, values) = batch[i];
                for (id, value) in mh.ids.iter().zip(values) {
                    if self.memory.store(*id, t, value) {
                        self.service.observe(*id, value);
                    }
                }
            }
        }
        self.hosts = advanced.drain(..).map(|(mh, _)| mh).collect();
        self.slots += n;
    }

    /// A snapshot of every host's latest hybrid measurement and forecast.
    pub fn snapshot(&self) -> GridSnapshot {
        let time = self.slots as f64 * self.config.measurement_period;
        let hosts = self
            .hosts
            .iter()
            .map(|mh| {
                let hybrid_id = mh.ids[2];
                HostReport {
                    host: mh.host.name().to_string(),
                    latest_hybrid: self.memory.latest(hybrid_id).map(|p| p.value),
                    forecast: self.service.forecast(hybrid_id),
                }
            })
            .collect();
        GridSnapshot { time, hosts }
    }
}

impl std::fmt::Debug for GridMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridMonitor")
            .field("hosts", &self.hosts.len())
            .field("slots", &self.slots)
            .field("resources", &self.registry.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_four_series_per_host() {
        let gm = GridMonitor::ucsd(1);
        assert_eq!(gm.registry().len(), 24);
        assert!(gm
            .registry()
            .lookup("kongo", Metric::CpuAvailabilityHybrid)
            .is_some());
    }

    #[test]
    fn steps_publish_measurements_and_forecasts() {
        let mut gm = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Gremlin],
            7,
            GridMonitorConfig::default(),
        );
        gm.run_steps(30); // five minutes
        assert_eq!(gm.slots(), 30);
        let id = gm
            .registry()
            .lookup("thing1", Metric::CpuAvailabilityHybrid)
            .expect("registered");
        assert_eq!(gm.memory().len(id), 30);
        let answer = gm.forecasts().forecast(id).expect("forecaster live");
        assert!((0.0..=1.0).contains(&answer.forecast.value));
        assert_eq!(answer.observations, 30);
    }

    #[test]
    fn snapshot_reports_every_host() {
        let mut gm = GridMonitor::ucsd(3);
        gm.run_steps(12);
        let snap = gm.snapshot();
        assert_eq!(snap.hosts.len(), 6);
        assert!((snap.time - 120.0).abs() < 1e-9);
        for h in &snap.hosts {
            assert!(h.latest_hybrid.is_some(), "{} has no measurement", h.host);
            assert!(h.forecast.is_some(), "{} has no forecast", h.host);
        }
        let best = snap.best_host().expect("forecasts live");
        assert!(!best.host.is_empty());
    }

    #[test]
    fn memory_eviction_bounds_history() {
        let mut gm = GridMonitor::new(
            &[HostProfile::Gremlin],
            9,
            GridMonitorConfig {
                memory: MemoryConfig { retain: 10 },
                ..GridMonitorConfig::default()
            },
        );
        gm.run_steps(25);
        let id = gm
            .registry()
            .lookup("gremlin", Metric::LoadAverage)
            .expect("registered");
        assert_eq!(gm.memory().len(id), 10);
    }

    #[test]
    fn batched_run_matches_sequential_stepping() {
        // step() n times (always sequential) vs run_steps(n) (batched when
        // threads allow): memory contents must be bit-identical.
        let collect = |batched: bool| {
            let mut gm = GridMonitor::ucsd(11);
            if batched {
                nws_runtime::set_threads(Some(4));
                gm.run_steps(24);
                nws_runtime::set_threads(None);
            } else {
                for _ in 0..24 {
                    gm.step();
                }
            }
            let mut all = Vec::new();
            for mh in &gm.hosts {
                for id in mh.ids {
                    let points: Vec<(f64, f64)> = gm
                        .memory
                        .extract(id, usize::MAX)
                        .iter()
                        .map(|p| (p.time, p.value))
                        .collect();
                    let forecast = gm.service.forecast(id).map(|a| a.forecast.value);
                    all.push((points, forecast));
                }
            }
            all
        };
        assert_eq!(collect(true), collect(false));
    }

    #[test]
    fn deterministic_across_instances() {
        let run = || {
            let mut gm = GridMonitor::ucsd(42);
            gm.run_steps(18);
            let snap = gm.snapshot();
            snap.hosts
                .iter()
                .map(|h| h.latest_hybrid.expect("measured"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
