//! Resource naming and discovery (the NWS name service).

use std::collections::BTreeMap;
use std::fmt;

/// What a series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// CPU availability by the Eq. 1 load-average method.
    CpuAvailabilityLoad,
    /// CPU availability by the Eq. 2 vmstat method.
    CpuAvailabilityVmstat,
    /// CPU availability by the NWS hybrid method.
    CpuAvailabilityHybrid,
    /// Raw 1-minute load average.
    LoadAverage,
    /// Achieved probe throughput on a network path (bytes/second).
    NetworkBandwidth,
    /// Small-message round-trip latency on a network path (seconds).
    NetworkLatency,
}

impl Metric {
    /// Canonical name fragment, NWS-style (`cpu.avail.<method>`).
    pub fn name(&self) -> &'static str {
        match self {
            Metric::CpuAvailabilityLoad => "cpu.avail.load",
            Metric::CpuAvailabilityVmstat => "cpu.avail.vmstat",
            Metric::CpuAvailabilityHybrid => "cpu.avail.hybrid",
            Metric::LoadAverage => "cpu.load1",
            Metric::NetworkBandwidth => "net.bandwidth",
            Metric::NetworkLatency => "net.latency",
        }
    }

    /// All metrics, in registration order.
    pub fn all() -> [Metric; 6] {
        [
            Metric::CpuAvailabilityLoad,
            Metric::CpuAvailabilityVmstat,
            Metric::CpuAvailabilityHybrid,
            Metric::LoadAverage,
            Metric::NetworkBandwidth,
            Metric::NetworkLatency,
        ]
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Opaque handle to a registered resource series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u64);

/// Metadata recorded for a registered resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceInfo {
    /// The handle.
    pub id: ResourceId,
    /// Host the series is measured on.
    pub host: String,
    /// What it measures.
    pub metric: Metric,
}

impl ResourceInfo {
    /// The fully qualified NWS-style name, e.g. `thing1/cpu.avail.hybrid`.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.host, self.metric.name())
    }
}

/// The name service: registers `(host, metric)` pairs and answers lookups.
#[derive(Debug, Default)]
pub struct Registry {
    next: u64,
    by_id: BTreeMap<ResourceId, ResourceInfo>,
    by_name: BTreeMap<(String, Metric), ResourceId>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource, returning its handle. Re-registering the same
    /// `(host, metric)` returns the existing handle (idempotent, like the
    /// NWS name server).
    pub fn register(&mut self, host: impl Into<String>, metric: Metric) -> ResourceId {
        let host = host.into();
        if let Some(&id) = self.by_name.get(&(host.clone(), metric)) {
            return id;
        }
        let id = ResourceId(self.next);
        self.next += 1;
        self.by_name.insert((host.clone(), metric), id);
        self.by_id.insert(id, ResourceInfo { id, host, metric });
        id
    }

    /// Looks a resource up by `(host, metric)`.
    pub fn lookup(&self, host: &str, metric: Metric) -> Option<ResourceId> {
        self.by_name.get(&(host.to_string(), metric)).copied()
    }

    /// Metadata for a handle.
    pub fn info(&self, id: ResourceId) -> Option<&ResourceInfo> {
        self.by_id.get(&id)
    }

    /// All registered resources, ordered by id.
    pub fn resources(&self) -> impl Iterator<Item = &ResourceInfo> {
        self.by_id.values()
    }

    /// All resources on one host.
    pub fn resources_on(&self, host: &str) -> Vec<&ResourceInfo> {
        self.by_id.values().filter(|r| r.host == host).collect()
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        let id = r.register("thing1", Metric::CpuAvailabilityHybrid);
        assert_eq!(r.lookup("thing1", Metric::CpuAvailabilityHybrid), Some(id));
        assert_eq!(r.lookup("thing1", Metric::LoadAverage), None);
        assert_eq!(r.lookup("thing2", Metric::CpuAvailabilityHybrid), None);
        let info = r.info(id).expect("registered");
        assert_eq!(info.full_name(), "thing1/cpu.avail.hybrid");
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = Registry::new();
        let a = r.register("h", Metric::LoadAverage);
        let b = r.register("h", Metric::LoadAverage);
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn per_host_enumeration() {
        let mut r = Registry::new();
        for m in Metric::all() {
            r.register("a", m);
        }
        r.register("b", Metric::LoadAverage);
        assert_eq!(r.resources_on("a").len(), Metric::all().len());
        assert_eq!(r.resources_on("b").len(), 1);
        assert_eq!(r.len(), Metric::all().len() + 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn metric_names_are_distinct() {
        let mut names: Vec<&str> = Metric::all().iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Metric::all().len());
    }
}
