//! Fleet-scale monitoring: racks of synthetic hosts rolled up into a
//! regional view.
//!
//! The six-host [`GridMonitor`](crate::GridMonitor) runs full kernel
//! simulations — the fidelity the paper's tables need, at ~100 scheduler
//! ticks per measurement slot per host. This module is the scale
//! counterpart: a [`FleetMonitor`] drives 10⁴–10⁵ *synthetic* hosts
//! ([`SyntheticHost`]) through the same deterministic event engine, the
//! same sharded columnar [`Memory`], and a hierarchical aggregation
//! layer, so engine throughput and fleet-wide queries can be measured at
//! sizes the kernel simulation cannot reach.
//!
//! # Hierarchical aggregation
//!
//! Hosts are grouped into racks of [`FleetConfig::rack_size`]; each rack
//! monitor maintains a max-tournament over its hosts' availability
//! forecasts, and a regional monitor maintains a tournament over the
//! rack winners. A host update replays one path in its rack's tree plus
//! one path in the regional tree — O(log n) total — and the fleet-wide
//! [`FleetMonitor::best_host`] answer is a root read, O(1). This mirrors
//! the NWS's hierarchy of per-LAN name servers reporting into wider
//! aggregates rather than one flat registry.
//!
//! # Determinism
//!
//! Each host's trajectory is a pure function of `(index, seed)`, events
//! commit slot-major in shard order through the engine, and the
//! tournament replays are input-deterministic — so a fleet run is
//! bit-identical at any thread count and any batch size, which
//! [`FleetMonitor::fingerprint`] pins cheaply.

use crate::memory::{Memory, MemoryConfig};
use crate::registry::ResourceId;
use nws_runtime::{Cadence, Engine, EngineConfig, Source, Stage};
use nws_sim::SyntheticHost;

/// Fleet sizing and tuning.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Hosts in the fleet.
    pub hosts: usize,
    /// Hosts per rack (the unit of the first aggregation level).
    pub rack_size: usize,
    /// Measurements retained per host series. Fleet memory is sized for
    /// recent-window forecasting, not day-long archives, so the default
    /// is far below the single-host default of 8 640.
    pub retain: usize,
    /// Base seed for the synthetic roster.
    pub seed: u64,
    /// Engine batch window (slots produced per commit barrier).
    pub batch_slots: usize,
    /// EWMA gain of the per-host availability forecaster.
    pub ewma_gain: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            hosts: 1024,
            rack_size: 64,
            retain: 64,
            seed: 4242,
            batch_slots: 64,
            ewma_gain: 0.25,
        }
    }
}

/// A max-tournament over a fixed leaf set: `update` replays the path
/// from one leaf to the root (O(log n)); `best` reads the root (O(1)).
/// Ties break toward the lower leaf index, keeping the winner — and
/// every artifact derived from it — independent of update order.
#[derive(Debug)]
struct Tournament {
    /// Number of live leaves.
    leaves: usize,
    /// Leaf capacity rounded up to a power of two.
    cap: usize,
    /// Leaf keys; dead leaves hold −∞ and never win.
    keys: Vec<f64>,
    /// Winning leaf index per internal node; `tree[1]` is the champion.
    tree: Vec<u32>,
}

impl Tournament {
    fn new(leaves: usize) -> Self {
        assert!(leaves > 0, "tournament needs at least one leaf");
        let cap = leaves.next_power_of_two();
        Self {
            leaves,
            cap,
            keys: vec![f64::NEG_INFINITY; leaves],
            tree: vec![u32::MAX; cap],
        }
    }

    /// The winning leaf below `node`, or `None` for dead subtrees.
    fn winner(&self, node: usize) -> Option<u32> {
        if node >= self.cap {
            let leaf = node - self.cap;
            (leaf < self.leaves && self.keys[leaf] > f64::NEG_INFINITY).then_some(leaf as u32)
        } else {
            let w = self.tree[node];
            (w != u32::MAX).then_some(w)
        }
    }

    /// Sets leaf `leaf`'s key and replays its path to the root.
    fn update(&mut self, leaf: usize, key: f64) {
        self.keys[leaf] = key;
        let mut node = (self.cap + leaf) / 2;
        while node >= 1 {
            let left = self.winner(2 * node);
            let right = self.winner(2 * node + 1);
            self.tree[node] = match (left, right) {
                (Some(l), Some(r)) => {
                    // Strict > keeps the tie-break on the lower index
                    // (left subtree holds the lower leaves).
                    if self.keys[r as usize] > self.keys[l as usize] {
                        r
                    } else {
                        l
                    }
                }
                (Some(l), None) => l,
                (None, Some(r)) => r,
                (None, None) => u32::MAX,
            };
            node /= 2;
        }
    }

    /// The champion leaf and its key (the root read; for a single-leaf
    /// tournament node 1 *is* that leaf).
    fn best(&self) -> Option<(usize, f64)> {
        let w = self.winner(1)?;
        Some((w as usize, self.keys[w as usize]))
    }
}

/// One fleet shard: a synthetic host behind the engine's
/// [`Source`] contract.
#[derive(Debug)]
struct FleetShard {
    host: SyntheticHost,
}

impl Source for FleetShard {
    type Event = f64;

    fn produce(&mut self, _slot: u64) -> f64 {
        self.host.step()
    }
}

/// The commit side: sharded memory ingest, per-host EWMA forecasts, and
/// the two-level tournament roll-up.
struct FleetStage<'a> {
    memory: &'a mut Memory,
    forecasts: &'a mut [f64],
    racks: &'a mut [Tournament],
    region: &'a mut Tournament,
    cadence: Cadence,
    rack_size: usize,
    ewma_gain: f64,
    events: &'a mut u64,
}

impl Stage<FleetShard> for FleetStage<'_> {
    fn commit(&mut self, shard: usize, _source: &mut FleetShard, slot: u64, event: &f64) {
        let availability = *event;
        self.memory.append(
            ResourceId(shard as u64),
            self.cadence.slot_time(slot),
            availability,
        );
        let forecast = &mut self.forecasts[shard];
        *forecast = if slot == 0 {
            availability
        } else {
            *forecast + self.ewma_gain * (availability - *forecast)
        };
        let rack = shard / self.rack_size;
        self.racks[rack].update(shard % self.rack_size, *forecast);
        if let Some((_, rack_best)) = self.racks[rack].best() {
            self.region.update(rack, rack_best);
        }
        *self.events += 1;
    }
}

/// The fleet: an engine over synthetic shards plus the rolled-up state
/// the commit stage maintains.
pub struct FleetMonitor {
    config: FleetConfig,
    engine: Engine<FleetShard>,
    memory: Memory,
    /// Per-host EWMA availability forecast.
    forecasts: Vec<f64>,
    /// First aggregation level: one tournament per rack.
    racks: Vec<Tournament>,
    /// Second level: tournament over rack winners.
    region: Tournament,
    events: u64,
}

impl FleetMonitor {
    /// Builds the fleet from its config.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` or `rack_size` is zero.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.hosts > 0, "fleet needs at least one host");
        assert!(config.rack_size > 0, "racks must hold at least one host");
        let shards: Vec<FleetShard> = (0..config.hosts as u64)
            .map(|i| FleetShard {
                host: SyntheticHost::new(i, config.seed),
            })
            .collect();
        let engine = Engine::new(
            shards,
            EngineConfig {
                cadence: Cadence::PAPER,
                batch_slots: config.batch_slots,
            },
        );
        let rack_count = config.hosts.div_ceil(config.rack_size);
        let racks = (0..rack_count)
            .map(|r| {
                let in_rack = config.rack_size.min(config.hosts - r * config.rack_size);
                Tournament::new(in_rack)
            })
            .collect();
        Self {
            config,
            engine,
            memory: Memory::new(MemoryConfig {
                retain: config.retain,
            }),
            forecasts: vec![0.0; config.hosts],
            racks,
            region: Tournament::new(rack_count),
            events: 0,
        }
    }

    /// Runs `slots` measurement slots through the engine.
    pub fn run_steps(&mut self, slots: u64) {
        let mut stage = FleetStage {
            memory: &mut self.memory,
            forecasts: &mut self.forecasts,
            racks: &mut self.racks,
            region: &mut self.region,
            cadence: *self.engine.cadence(),
            rack_size: self.config.rack_size,
            ewma_gain: self.config.ewma_gain,
            events: &mut self.events,
        };
        self.engine.run(slots, &mut stage);
    }

    /// The fleet-wide best host `(index, forecast availability)` —
    /// the regional tournament root, maintained in O(log n) per update
    /// and read in O(1).
    pub fn best_host(&self) -> Option<(usize, f64)> {
        let (rack, _) = self.region.best()?;
        let (leaf, key) = self.racks[rack].best()?;
        Some((rack * self.config.rack_size + leaf, key))
    }

    /// The best host within one rack.
    pub fn rack_best(&self, rack: usize) -> Option<(usize, f64)> {
        let (leaf, key) = self.racks.get(rack)?.best()?;
        Some((rack * self.config.rack_size + leaf, key))
    }

    /// Host count.
    pub fn hosts(&self) -> usize {
        self.config.hosts
    }

    /// Rack count.
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// Events committed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Slots completed so far.
    pub fn slots(&self) -> u64 {
        self.engine.slot()
    }

    /// The current EWMA forecast for one host.
    pub fn forecast(&self, host: usize) -> f64 {
        self.forecasts[host]
    }

    /// The measurement store.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// FNV-1a over every forecast's bits, the event count, and the best
    /// host — a cheap bit-identity pin for cross-thread/batch checks.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for b in word.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for f in &self.forecasts {
            mix(f.to_bits());
        }
        mix(self.events);
        if let Some((host, key)) = self.best_host() {
            mix(host as u64);
            mix(key.to_bits());
        }
        h
    }
}

impl std::fmt::Debug for FleetMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetMonitor")
            .field("hosts", &self.config.hosts)
            .field("racks", &self.racks.len())
            .field("slots", &self.engine.slot())
            .field("events", &self.events)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tournament_tracks_max_with_low_index_ties() {
        let mut t = Tournament::new(5);
        for (i, k) in [0.2, 0.9, 0.5, 0.9, 0.1].iter().enumerate() {
            t.update(i, *k);
        }
        assert_eq!(t.best(), Some((1, 0.9)), "tie breaks to the lower index");
        t.update(1, 0.05);
        assert_eq!(t.best(), Some((3, 0.9)));
        t.update(4, 0.95);
        assert_eq!(t.best(), Some((4, 0.95)));
    }

    #[test]
    fn tournament_matches_linear_scan_under_churn() {
        let mut t = Tournament::new(37);
        let mut keys = vec![f64::NEG_INFINITY; 37];
        let mut rng: u64 = 99;
        for step in 0..2000 {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            let leaf = (rng % 37) as usize;
            let key = ((rng >> 16) % 1000) as f64 / 1000.0;
            t.update(leaf, key);
            keys[leaf] = key;
            let want = keys
                .iter()
                .enumerate()
                .filter(|(_, k)| **k > f64::NEG_INFINITY)
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
                .map(|(i, k)| (i, *k));
            assert_eq!(t.best(), want, "step {step}");
        }
    }

    #[test]
    fn fleet_runs_and_serves_best_host() {
        let mut fleet = FleetMonitor::new(FleetConfig {
            hosts: 130,
            rack_size: 32,
            ..FleetConfig::default()
        });
        assert_eq!(fleet.rack_count(), 5, "129/32 racks plus the remainder");
        fleet.run_steps(50);
        assert_eq!(fleet.events(), 130 * 50);
        assert_eq!(fleet.slots(), 50);
        let (best, key) = fleet.best_host().expect("fleet has hosts");
        assert!(best < 130);
        assert!((0.0..=1.0).contains(&key));
        // The root really is the global argmax of the forecasts.
        let scan = (0..130)
            .map(|h| (h, fleet.forecast(h)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
            .unwrap();
        assert_eq!((best, key), scan);
        // Memory holds every host's series under its dense id.
        assert_eq!(fleet.memory().len(ResourceId(0)), 50);
        assert_eq!(fleet.memory().len(ResourceId(129)), 50);
    }

    #[test]
    fn fleet_is_bit_identical_across_threads_and_batches() {
        let run = |threads: usize, batch: usize| {
            nws_runtime::set_threads(Some(threads));
            let mut fleet = FleetMonitor::new(FleetConfig {
                hosts: 96,
                rack_size: 16,
                batch_slots: batch,
                ..FleetConfig::default()
            });
            fleet.run_steps(75);
            nws_runtime::set_threads(None);
            fleet.fingerprint()
        };
        let reference = run(1, 64);
        for threads in [1, 4] {
            for batch in [1, 16, 64] {
                assert_eq!(
                    run(threads, batch),
                    reference,
                    "threads={threads} batch={batch}"
                );
            }
        }
    }
}
