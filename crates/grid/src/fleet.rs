//! Fleet-scale monitoring: racks of synthetic hosts rolled up into a
//! regional view.
//!
//! The six-host [`GridMonitor`](crate::GridMonitor) runs full kernel
//! simulations — the fidelity the paper's tables need, at ~100 scheduler
//! ticks per measurement slot per host. This module is the scale
//! counterpart: a [`FleetMonitor`] drives 10⁴–10⁵ *synthetic* hosts
//! ([`SyntheticHost`]) through the same deterministic event engine, the
//! same sharded columnar [`Memory`], and a hierarchical aggregation
//! layer, so engine throughput and fleet-wide queries can be measured at
//! sizes the kernel simulation cannot reach.
//!
//! # Per-host forecasting
//!
//! Every fleet host carries a forecaster chosen by
//! [`FleetConfig::panel`]:
//!
//! - [`FleetPanel::Ewma`] (the default) keeps one dense `f64` per host
//!   and steps it through the canonical exponential-smoothing kernel
//!   ([`nws_forecast::ewma_step`] — the same expression
//!   `ExpSmoothing::observe` evaluates), so steady state allocates
//!   nothing and a 100k-host fleet costs 800 KB of forecast state;
//! - [`FleetPanel::Bank`] runs a full [`PredictorBank`] per host —
//!   any [`PanelSpec`] subset up to the extended panel v2 — with the
//!   same dynamic best-predictor selection and gap semantics as the
//!   per-host `ForecastService` path, plus per-predictor error tables
//!   ([`FleetMonitor::quality_table`]) for Table 2/3-style reporting at
//!   fleet scale.
//!
//! # Rosters and faults
//!
//! [`FleetRoster`] picks what the hosts replay: the synthetic AR(1)
//! model of PR 6, or a recorded trace mixture (each host loops one of a
//! set of availability traces at a seeded phase offset — the UCSD
//! profile traces via `nws_sim::ucsd_availability_traces`). A seeded
//! [`FaultPlan`] applies per-host outage/dropout streams at fleet scale:
//! a faulted slot records no measurement, window predictors age out
//! (gap semantics), and the tournament keeps the host's last standing
//! forecast. [`FaultPlan::none`] draws nothing and leaves every artifact
//! bit-identical to the fault-free fleet.
//!
//! # Hierarchical aggregation
//!
//! Hosts are grouped into racks of [`FleetConfig::rack_size`]; each rack
//! monitor maintains a max-tournament over its hosts' availability
//! forecasts, and a regional monitor maintains a tournament over the
//! rack winners. A host update replays one path in its rack's tree plus
//! one path in the regional tree — O(log n) total — and the fleet-wide
//! [`FleetMonitor::best_host`] answer is a root read, O(1). This mirrors
//! the NWS's hierarchy of per-LAN name servers reporting into wider
//! aggregates rather than one flat registry.
//!
//! # Determinism
//!
//! Each host's trajectory is a pure function of `(index, seed)`, fault
//! streams are pure functions of `(plan seed, host name)`, events commit
//! slot-major in shard order through the engine, and the tournament
//! replays are input-deterministic — so a fleet run is bit-identical at
//! any thread count and any batch size, which
//! [`FleetMonitor::fingerprint`] pins cheaply.

use crate::memory::{Memory, MemoryConfig};
use crate::registry::ResourceId;
use nws_faults::{FaultPlan, HostFaults};
use nws_forecast::{ewma_step, ErrorRow, PanelSpec, PredictorBank};
use nws_runtime::{Cadence, Engine, EngineConfig, Source, Stage};
use nws_sim::{synthetic_host_name, SyntheticHost};
use std::sync::Arc;

/// Which forecaster each fleet host runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FleetPanel {
    /// One dense EWMA per host — the zero-allocation default,
    /// bit-identical to the PR 6 fleet.
    #[default]
    Ewma,
    /// A [`PredictorBank`] per host, built from the spec, with dynamic
    /// best-predictor selection and per-predictor error tracking.
    Bank(PanelSpec),
}

/// Fleet sizing and tuning.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Hosts in the fleet.
    pub hosts: usize,
    /// Hosts per rack (the unit of the first aggregation level).
    pub rack_size: usize,
    /// Measurements retained per host series. Fleet memory is sized for
    /// recent-window forecasting, not day-long archives, so the default
    /// is far below the single-host default of 8 640.
    pub retain: usize,
    /// Base seed for the synthetic roster.
    pub seed: u64,
    /// Engine batch window (slots produced per commit barrier).
    pub batch_slots: usize,
    /// EWMA gain of the per-host availability forecaster (the
    /// [`FleetPanel::Ewma`] path).
    pub ewma_gain: f64,
    /// Per-host forecaster selection.
    pub panel: FleetPanel,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            hosts: 1024,
            rack_size: 64,
            retain: 64,
            seed: 4242,
            batch_slots: 64,
            ewma_gain: 0.25,
            panel: FleetPanel::Ewma,
        }
    }
}

/// What the fleet hosts replay.
#[derive(Debug, Clone, Default)]
pub enum FleetRoster {
    /// Synthetic AR(1) hosts with regime shifts (PR 6's roster).
    #[default]
    Synthetic,
    /// Each host loops one of the availability traces (host `i` takes
    /// trace `i % traces.len()` at a seeded phase offset), so a fleet of
    /// any size replays a real workload mixture.
    TraceMixture(Vec<Vec<f64>>),
}

/// A max-tournament over a fixed leaf set: `update` replays the path
/// from one leaf to the root (O(log n)); `best` reads the root (O(1)).
/// Ties break toward the lower leaf index, keeping the winner — and
/// every artifact derived from it — independent of update order.
#[derive(Debug)]
struct Tournament {
    /// Number of live leaves.
    leaves: usize,
    /// Leaf capacity rounded up to a power of two.
    cap: usize,
    /// Leaf keys; dead leaves hold −∞ and never win.
    keys: Vec<f64>,
    /// Winning leaf index per internal node; `tree[1]` is the champion.
    tree: Vec<u32>,
}

impl Tournament {
    fn new(leaves: usize) -> Self {
        assert!(leaves > 0, "tournament needs at least one leaf");
        let cap = leaves.next_power_of_two();
        Self {
            leaves,
            cap,
            keys: vec![f64::NEG_INFINITY; leaves],
            tree: vec![u32::MAX; cap],
        }
    }

    /// The winning leaf below `node`, or `None` for dead subtrees.
    fn winner(&self, node: usize) -> Option<u32> {
        if node >= self.cap {
            let leaf = node - self.cap;
            (leaf < self.leaves && self.keys[leaf] > f64::NEG_INFINITY).then_some(leaf as u32)
        } else {
            let w = self.tree[node];
            (w != u32::MAX).then_some(w)
        }
    }

    /// Sets leaf `leaf`'s key and replays its path to the root.
    fn update(&mut self, leaf: usize, key: f64) {
        self.keys[leaf] = key;
        let mut node = (self.cap + leaf) / 2;
        while node >= 1 {
            let left = self.winner(2 * node);
            let right = self.winner(2 * node + 1);
            self.tree[node] = match (left, right) {
                (Some(l), Some(r)) => {
                    // Strict > keeps the tie-break on the lower index
                    // (left subtree holds the lower leaves).
                    if self.keys[r as usize] > self.keys[l as usize] {
                        r
                    } else {
                        l
                    }
                }
                (Some(l), None) => l,
                (None, Some(r)) => r,
                (None, None) => u32::MAX,
            };
            node /= 2;
        }
    }

    /// The champion leaf and its key (the root read; for a single-leaf
    /// tournament node 1 *is* that leaf).
    fn best(&self) -> Option<(usize, f64)> {
        let w = self.winner(1)?;
        Some((w as usize, self.keys[w as usize]))
    }
}

/// The availability process one fleet shard replays.
#[derive(Debug)]
enum HostModel {
    /// Synthetic AR(1) with regime shifts.
    Synthetic(SyntheticHost),
    /// Looping replay of a recorded availability trace.
    Trace {
        levels: Arc<[f64]>,
        /// Next sample to replay.
        pos: usize,
    },
}

impl HostModel {
    fn step(&mut self) -> f64 {
        match self {
            HostModel::Synthetic(host) => host.step(),
            HostModel::Trace { levels, pos } => {
                let v = levels[*pos];
                *pos = (*pos + 1) % levels.len();
                v
            }
        }
    }
}

/// One measurement slot's outcome on one host: the availability reading,
/// or a gap when the fault plan took the slot out.
#[derive(Debug, Clone, Copy)]
pub struct FleetSample {
    /// Measured availability (meaningless when `gap`).
    value: f64,
    /// The measurement was lost (host outage or sensor dropout).
    gap: bool,
}

/// One fleet shard: a host model plus its seeded fault stream behind the
/// engine's [`Source`] contract.
#[derive(Debug)]
struct FleetShard {
    host: HostModel,
    faults: HostFaults,
}

impl Source for FleetShard {
    type Event = FleetSample;

    fn produce(&mut self, slot: u64) -> FleetSample {
        // The host's clock advances whether or not the measurement
        // survives; a faulted slot loses the reading, not the time.
        let value = self.host.step();
        let sf = self.faults.slot(slot, false);
        FleetSample {
            value,
            gap: sf.outage || sf.drop_load,
        }
    }
}

/// Per-host forecast state: the dense EWMA lane or a bank per host.
enum ForecastLane {
    Ewma,
    Bank(Vec<PredictorBank>),
}

/// The commit side: sharded memory ingest, per-host forecasts, and the
/// two-level tournament roll-up.
struct FleetStage<'a> {
    memory: &'a mut Memory,
    forecasts: &'a mut [f64],
    lane: &'a mut ForecastLane,
    racks: &'a mut [Tournament],
    region: &'a mut Tournament,
    cadence: Cadence,
    rack_size: usize,
    ewma_gain: f64,
    events: &'a mut u64,
    gaps: &'a mut u64,
}

impl Stage<FleetShard> for FleetStage<'_> {
    fn commit(&mut self, shard: usize, _source: &mut FleetShard, slot: u64, event: &FleetSample) {
        if event.gap {
            // Gap-aware semantics: no measurement is stored, window
            // predictors age out, level predictors (the EWMA lane) keep
            // their estimate, and the tournament keeps the host's last
            // standing key.
            if let ForecastLane::Bank(banks) = self.lane {
                banks[shard].note_gap();
            }
            *self.gaps += 1;
            return;
        }
        let availability = event.value;
        self.memory.append(
            ResourceId(shard as u64),
            self.cadence.slot_time(slot),
            availability,
        );
        let forecast = &mut self.forecasts[shard];
        match self.lane {
            ForecastLane::Ewma => {
                // Slot 0 initializes; later slots step the shared EWMA
                // kernel (the exact PR 6 arithmetic — `ewma_step` is the
                // expression the old inline kernel evaluated).
                *forecast = if slot == 0 {
                    availability
                } else {
                    ewma_step(*forecast, self.ewma_gain, availability)
                };
            }
            ForecastLane::Bank(banks) => {
                let bank = &mut banks[shard];
                bank.update(availability);
                *forecast = bank
                    .predicted_value()
                    .expect("a bank that just observed can predict");
            }
        }
        let rack = shard / self.rack_size;
        self.racks[rack].update(shard % self.rack_size, *forecast);
        if let Some((_, rack_best)) = self.racks[rack].best() {
            self.region.update(rack, rack_best);
        }
        *self.events += 1;
    }
}

/// The fleet: an engine over host shards plus the rolled-up state the
/// commit stage maintains.
pub struct FleetMonitor {
    config: FleetConfig,
    engine: Engine<FleetShard>,
    memory: Memory,
    /// Per-host availability forecast (dense; both lanes keep it).
    forecasts: Vec<f64>,
    lane: ForecastLane,
    /// First aggregation level: one tournament per rack.
    racks: Vec<Tournament>,
    /// Second level: tournament over rack winners.
    region: Tournament,
    events: u64,
    /// Slots lost to the fault plan (0 without one).
    gaps: u64,
}

impl FleetMonitor {
    /// Builds the default fleet: synthetic roster, no faults.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` or `rack_size` is zero.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_roster(config, FleetRoster::Synthetic, &FaultPlan::none())
    }

    /// Builds the fleet over a roster with a fault plan. Host `i`'s fault
    /// stream derives from its display name
    /// ([`synthetic_host_name`]), so the same plan hits the same hosts at
    /// any fleet size ordering.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` or `rack_size` is zero, or the trace mixture is
    /// empty / contains an empty trace.
    pub fn with_roster(config: FleetConfig, roster: FleetRoster, faults: &FaultPlan) -> Self {
        assert!(config.hosts > 0, "fleet needs at least one host");
        assert!(config.rack_size > 0, "racks must hold at least one host");
        let traces: Vec<Arc<[f64]>> = match &roster {
            FleetRoster::Synthetic => Vec::new(),
            FleetRoster::TraceMixture(traces) => {
                assert!(!traces.is_empty(), "trace mixture needs at least one trace");
                traces
                    .iter()
                    .map(|t| {
                        assert!(!t.is_empty(), "cannot replay an empty trace");
                        Arc::from(t.as_slice())
                    })
                    .collect()
            }
        };
        let shards: Vec<FleetShard> = (0..config.hosts as u64)
            .map(|i| {
                let host = if traces.is_empty() {
                    HostModel::Synthetic(SyntheticHost::new(i, config.seed))
                } else {
                    let levels = Arc::clone(&traces[(i as usize) % traces.len()]);
                    // Seeded phase offset (FNV-1a over the index, xor'd
                    // with the seed — the SyntheticHost derivation), so
                    // hosts sharing a trace don't move in lockstep.
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in i.to_le_bytes() {
                        h ^= u64::from(b);
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    let pos = ((h ^ config.seed) % levels.len() as u64) as usize;
                    HostModel::Trace { levels, pos }
                };
                FleetShard {
                    host,
                    faults: faults.host_faults(&synthetic_host_name(i as usize)),
                }
            })
            .collect();
        let engine = Engine::new(
            shards,
            EngineConfig {
                cadence: Cadence::PAPER,
                batch_slots: config.batch_slots,
            },
        );
        let rack_count = config.hosts.div_ceil(config.rack_size);
        let racks = (0..rack_count)
            .map(|r| {
                let in_rack = config.rack_size.min(config.hosts - r * config.rack_size);
                Tournament::new(in_rack)
            })
            .collect();
        let lane = match config.panel {
            FleetPanel::Ewma => ForecastLane::Ewma,
            FleetPanel::Bank(spec) => {
                ForecastLane::Bank((0..config.hosts).map(|_| spec.build()).collect())
            }
        };
        Self {
            config,
            engine,
            memory: Memory::new(MemoryConfig {
                retain: config.retain,
            }),
            forecasts: vec![0.0; config.hosts],
            lane,
            racks,
            region: Tournament::new(rack_count),
            events: 0,
            gaps: 0,
        }
    }

    /// Runs `slots` measurement slots through the engine.
    pub fn run_steps(&mut self, slots: u64) {
        let mut stage = FleetStage {
            memory: &mut self.memory,
            forecasts: &mut self.forecasts,
            lane: &mut self.lane,
            racks: &mut self.racks,
            region: &mut self.region,
            cadence: *self.engine.cadence(),
            rack_size: self.config.rack_size,
            ewma_gain: self.config.ewma_gain,
            events: &mut self.events,
            gaps: &mut self.gaps,
        };
        self.engine.run(slots, &mut stage);
    }

    /// The fleet-wide best host `(index, forecast availability)` —
    /// the regional tournament root, maintained in O(log n) per update
    /// and read in O(1).
    pub fn best_host(&self) -> Option<(usize, f64)> {
        let (rack, _) = self.region.best()?;
        let (leaf, key) = self.racks[rack].best()?;
        Some((rack * self.config.rack_size + leaf, key))
    }

    /// The best host within one rack.
    pub fn rack_best(&self, rack: usize) -> Option<(usize, f64)> {
        let (leaf, key) = self.racks.get(rack)?.best()?;
        Some((rack * self.config.rack_size + leaf, key))
    }

    /// Host count.
    pub fn hosts(&self) -> usize {
        self.config.hosts
    }

    /// Rack count.
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// Events committed so far (gap slots are not events).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Measurement slots lost to the fault plan so far.
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// Slots completed so far.
    pub fn slots(&self) -> u64 {
        self.engine.slot()
    }

    /// The current availability forecast for one host.
    pub fn forecast(&self, host: usize) -> f64 {
        self.forecasts[host]
    }

    /// The measurement store.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The fleet-wide per-predictor error table: every host bank's rows
    /// merged exactly (raw error sums, in panel order). Empty on the
    /// [`FleetPanel::Ewma`] lane, which tracks no per-member errors.
    pub fn quality_table(&self) -> Vec<ErrorRow> {
        let ForecastLane::Bank(banks) = &self.lane else {
            return Vec::new();
        };
        let mut merged: Vec<ErrorRow> = Vec::new();
        for bank in banks {
            let table = bank.error_table();
            if merged.is_empty() {
                merged = table;
            } else {
                for (m, row) in merged.iter_mut().zip(&table) {
                    m.merge(row);
                }
            }
        }
        merged
    }

    /// FNV-1a over every forecast's bits, the event count, and the best
    /// host — a cheap bit-identity pin for cross-thread/batch checks.
    /// Fault-plan runs additionally mix the gap count; fault-free runs
    /// hash exactly the PR 6 stream.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for b in word.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for f in &self.forecasts {
            mix(f.to_bits());
        }
        mix(self.events);
        if self.gaps > 0 {
            mix(self.gaps);
        }
        if let Some((host, key)) = self.best_host() {
            mix(host as u64);
            mix(key.to_bits());
        }
        h
    }
}

impl std::fmt::Debug for FleetMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetMonitor")
            .field("hosts", &self.config.hosts)
            .field("racks", &self.racks.len())
            .field("slots", &self.engine.slot())
            .field("events", &self.events)
            .field("gaps", &self.gaps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_faults::FaultRates;

    #[test]
    fn tournament_tracks_max_with_low_index_ties() {
        let mut t = Tournament::new(5);
        for (i, k) in [0.2, 0.9, 0.5, 0.9, 0.1].iter().enumerate() {
            t.update(i, *k);
        }
        assert_eq!(t.best(), Some((1, 0.9)), "tie breaks to the lower index");
        t.update(1, 0.05);
        assert_eq!(t.best(), Some((3, 0.9)));
        t.update(4, 0.95);
        assert_eq!(t.best(), Some((4, 0.95)));
    }

    #[test]
    fn tournament_matches_linear_scan_under_churn() {
        let mut t = Tournament::new(37);
        let mut keys = vec![f64::NEG_INFINITY; 37];
        let mut rng: u64 = 99;
        for step in 0..2000 {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            let leaf = (rng % 37) as usize;
            let key = ((rng >> 16) % 1000) as f64 / 1000.0;
            t.update(leaf, key);
            keys[leaf] = key;
            let want = keys
                .iter()
                .enumerate()
                .filter(|(_, k)| **k > f64::NEG_INFINITY)
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
                .map(|(i, k)| (i, *k));
            assert_eq!(t.best(), want, "step {step}");
        }
    }

    #[test]
    fn fleet_runs_and_serves_best_host() {
        let mut fleet = FleetMonitor::new(FleetConfig {
            hosts: 130,
            rack_size: 32,
            ..FleetConfig::default()
        });
        assert_eq!(fleet.rack_count(), 5, "129/32 racks plus the remainder");
        fleet.run_steps(50);
        assert_eq!(fleet.events(), 130 * 50);
        assert_eq!(fleet.slots(), 50);
        let (best, key) = fleet.best_host().expect("fleet has hosts");
        assert!(best < 130);
        assert!((0.0..=1.0).contains(&key));
        // The root really is the global argmax of the forecasts.
        let scan = (0..130)
            .map(|h| (h, fleet.forecast(h)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
            .unwrap();
        assert_eq!((best, key), scan);
        // Memory holds every host's series under its dense id.
        assert_eq!(fleet.memory().len(ResourceId(0)), 50);
        assert_eq!(fleet.memory().len(ResourceId(129)), 50);
    }

    #[test]
    fn fleet_is_bit_identical_across_threads_and_batches() {
        let run = |threads: usize, batch: usize| {
            nws_runtime::set_threads(Some(threads));
            let mut fleet = FleetMonitor::new(FleetConfig {
                hosts: 96,
                rack_size: 16,
                batch_slots: batch,
                ..FleetConfig::default()
            });
            fleet.run_steps(75);
            nws_runtime::set_threads(None);
            fleet.fingerprint()
        };
        let reference = run(1, 64);
        for threads in [1, 4] {
            for batch in [1, 16, 64] {
                assert_eq!(
                    run(threads, batch),
                    reference,
                    "threads={threads} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn ewma_only_bank_matches_the_dense_ewma_lane_bit_for_bit() {
        let base = FleetConfig {
            hosts: 40,
            rack_size: 8,
            ..FleetConfig::default()
        };
        let mut dense = FleetMonitor::new(base);
        let mut bank = FleetMonitor::new(FleetConfig {
            panel: FleetPanel::Bank(PanelSpec::EwmaOnly {
                gain: base.ewma_gain,
            }),
            ..base
        });
        dense.run_steps(60);
        bank.run_steps(60);
        for h in 0..40 {
            assert_eq!(
                dense.forecast(h).to_bits(),
                bank.forecast(h).to_bits(),
                "host {h}"
            );
        }
        assert_eq!(dense.best_host(), bank.best_host());
    }

    #[test]
    fn panel_fleet_is_bit_identical_across_threads_and_batches() {
        // The full satellite matrix: panel-backed fleet over a trace
        // mixture with a live fault plan, threads {1, 4} × batch {1, 64}.
        let traces = vec![
            (0..97)
                .map(|i| 0.3 + 0.4 * ((i % 13) as f64 / 13.0))
                .collect::<Vec<f64>>(),
            (0..61)
                .map(|i| 0.8 - 0.5 * ((i % 7) as f64 / 7.0))
                .collect(),
            (0..41)
                .map(|i| 0.5 + 0.3 * ((i % 5) as f64 / 5.0))
                .collect(),
        ];
        let run = |threads: usize, batch: usize| {
            nws_runtime::set_threads(Some(threads));
            let mut fleet = FleetMonitor::with_roster(
                FleetConfig {
                    hosts: 72,
                    rack_size: 16,
                    batch_slots: batch,
                    panel: FleetPanel::Bank(PanelSpec::Extended),
                    ..FleetConfig::default()
                },
                FleetRoster::TraceMixture(traces.clone()),
                &FaultPlan::seeded(0xFEE7, FaultRates::uniform(0.15)),
            );
            fleet.run_steps(80);
            nws_runtime::set_threads(None);
            assert!(fleet.gaps() > 0, "the fault plan must bite");
            (fleet.fingerprint(), fleet.events(), fleet.gaps())
        };
        let reference = run(1, 64);
        for threads in [1, 4] {
            for batch in [1, 64] {
                assert_eq!(
                    run(threads, batch),
                    reference,
                    "threads={threads} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn fault_free_plan_is_bit_identical_to_no_plan() {
        let cfg = FleetConfig {
            hosts: 48,
            rack_size: 16,
            ..FleetConfig::default()
        };
        let mut a = FleetMonitor::new(cfg);
        let mut b = FleetMonitor::with_roster(cfg, FleetRoster::Synthetic, &FaultPlan::none());
        a.run_steps(40);
        b.run_steps(40);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(b.gaps(), 0);
    }

    #[test]
    fn trace_roster_replays_the_mixture() {
        let traces = vec![vec![0.25; 10], vec![0.75; 10]];
        let mut fleet = FleetMonitor::with_roster(
            FleetConfig {
                hosts: 8,
                rack_size: 4,
                ..FleetConfig::default()
            },
            FleetRoster::TraceMixture(traces),
            &FaultPlan::none(),
        );
        fleet.run_steps(30);
        // Even hosts replay the 0.25 trace, odd hosts the 0.75 trace;
        // constant traces pin the EWMA exactly.
        for h in 0..8 {
            let want = if h % 2 == 0 { 0.25 } else { 0.75 };
            assert!(
                (fleet.forecast(h) - want).abs() < 1e-12,
                "host {h}: {}",
                fleet.forecast(h)
            );
        }
        let (best, key) = fleet.best_host().unwrap();
        assert_eq!(best, 1, "first odd host wins on the low-index tie-break");
        assert!((key - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quality_table_aggregates_across_hosts() {
        let mut fleet = FleetMonitor::with_roster(
            FleetConfig {
                hosts: 12,
                rack_size: 4,
                panel: FleetPanel::Bank(PanelSpec::Extended),
                ..FleetConfig::default()
            },
            FleetRoster::Synthetic,
            &FaultPlan::none(),
        );
        fleet.run_steps(120);
        let table = fleet.quality_table();
        assert_eq!(
            table.len(),
            PanelSpec::Extended.build().panel_len(),
            "one row per panel member"
        );
        // Every member scored on every host for (almost) every slot.
        for row in &table {
            assert!(row.scored > 0, "{} never scored", row.name);
            assert!(row.mae().is_finite());
            assert!(row.mse().is_finite());
        }
        // EWMA lane tracks no per-member errors.
        let mut ewma = FleetMonitor::new(FleetConfig::default());
        ewma.run_steps(5);
        assert!(ewma.quality_table().is_empty());
    }
}
