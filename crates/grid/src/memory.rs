//! Bounded measurement storage (the NWS persistent-state memory).
//!
//! The NWS memory stores a bounded history per series and serves
//! `extract`-style queries: "the most recent *n* measurements of resource
//! *r*". Storage here is an in-process ring buffer per resource; the NWS's
//! disk persistence is out of scope (the forecasting behaviour depends only
//! on the retained window).
//!
//! # Columnar layout, sharded segments
//!
//! Each series is stored structure-of-arrays: one contiguous `times`
//! column and one contiguous `values` column, plus a `start` cursor
//! marking the oldest live point (a *compacting ring*: eviction advances
//! the cursor, and the dead prefix is reclaimed with one `copy_within`
//! once it grows as large as the retention window, so appends stay
//! amortized O(1) and the backing storage never exceeds twice the
//! retention bound). Because the live window is always one contiguous
//! slice per column, analytics and wire encoding borrow measurements
//! directly — [`Memory::values`], [`Memory::tail`], [`Memory::with_series`]
//! — instead of cloning them out.
//!
//! Segments are addressed by [`ResourceId`] *directly*: the registry
//! hands out dense sequential ids and registers each host's series
//! adjacently, so the segment table is a flat vector in which every
//! shard (host) owns a small contiguous block of column segments.
//! Ingest is therefore an O(1) index, not a tree walk — at fleet scale
//! (10⁵ hosts × 4 series) the per-append id lookup is what dominates
//! the commit stage, and the commit loop's slot-major order makes the
//! per-segment revision bumps merge into `global_revision` in canonical
//! order regardless of how production was parallelized.

use crate::registry::ResourceId;
use crate::wal::{crc32, Wal, WalError, WalRecord, SNAPSHOT_MAGIC};
use nws_timeseries::csv::{read_series, write_series, CsvError};
use nws_timeseries::{Seconds, Series, TimePoint};
use std::collections::VecDeque;
use std::path::Path;

/// Memory sizing.
#[derive(Debug, Clone, Copy)]
pub struct MemoryConfig {
    /// Measurements retained per series (the NWS default order of
    /// magnitude; a day of 10-second measurements is 8 640).
    pub retain: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self { retain: 8640 }
    }
}

/// Why [`Memory::append`] accepted or refused a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The measurement was appended to the series.
    Stored,
    /// The timestamp was not strictly after the series' latest point
    /// (late or duplicate delivery). Counted per series.
    RejectedOutOfOrder,
    /// The value or timestamp was NaN/infinite.
    RejectedNonFinite,
}

impl StoreOutcome {
    /// True when the measurement was stored.
    pub fn is_stored(&self) -> bool {
        matches!(self, StoreOutcome::Stored)
    }
}

/// One series' measurements in columnar (SoA) form: parallel `times` and
/// `values` columns whose live window is `[start..]` of each vector.
#[derive(Debug, Default)]
struct ColumnSeries {
    times: Vec<Seconds>,
    values: Vec<f64>,
    /// Index of the oldest live point; everything before it is evicted
    /// and awaits compaction.
    start: usize,
}

impl ColumnSeries {
    fn len(&self) -> usize {
        self.times.len() - self.start
    }

    fn times(&self) -> &[Seconds] {
        &self.times[self.start..]
    }

    fn values(&self) -> &[f64] {
        &self.values[self.start..]
    }

    fn last_time(&self) -> Option<Seconds> {
        self.times.last().copied()
    }

    /// Appends one point, evicting the oldest when the live window is at
    /// the retention bound. The dead prefix is compacted away once it
    /// reaches `retain` slots, so the backing vectors stay under twice
    /// the bound and each point is moved at most once per `retain`
    /// evictions — amortized O(1).
    fn push(&mut self, time: Seconds, value: f64, retain: usize) {
        if self.len() == retain {
            self.start += 1;
            if self.start >= retain {
                let live = self.times.len() - self.start;
                self.times.copy_within(self.start.., 0);
                self.times.truncate(live);
                self.values.copy_within(self.start.., 0);
                self.values.truncate(live);
                self.start = 0;
            }
        }
        self.times.push(time);
        self.values.push(value);
    }
}

/// Per-series bookkeeping beyond the measurement columns themselves.
#[derive(Debug, Clone, Default)]
struct SeriesMeta {
    /// Out-of-order (or duplicate-time) deliveries dropped.
    dropped: u64,
    /// Timestamps of slots that resolved to no measurement at all,
    /// bounded like the measurement ring.
    gaps: VecDeque<Seconds>,
    /// Bumped on every accepted append, recorded gap, or reload —
    /// anything that changes what an extract of this series returns.
    /// Serving-layer caches compare revisions to decide whether a
    /// cached answer is still current.
    revision: u64,
}

/// The measurement store.
///
/// Column segments and their metadata live in flat vectors indexed by
/// the raw [`ResourceId`]; the registry's dense id allocation keeps the
/// tables compact and each shard's segments contiguous.
#[derive(Debug)]
pub struct Memory {
    config: MemoryConfig,
    store: Vec<ColumnSeries>,
    meta: Vec<SeriesMeta>,
    /// Bumped whenever any series changes; lets whole-memory views
    /// (snapshots) validate a cached answer with one comparison.
    global_revision: u64,
    /// Optional write-ahead log: when attached, every accepted append,
    /// recorded gap, and counted out-of-order drop is journaled in
    /// commit order (see [`crate::wal`]).
    journal: Option<Wal>,
}

impl Memory {
    /// Creates an empty memory.
    ///
    /// # Panics
    ///
    /// Panics if `retain == 0`.
    pub fn new(config: MemoryConfig) -> Self {
        assert!(config.retain > 0, "memory must retain at least one point");
        Self {
            config,
            store: Vec::new(),
            meta: Vec::new(),
            global_revision: 0,
            journal: None,
        }
    }

    /// Attaches a write-ahead log. From here on, every state change
    /// ([`StoreOutcome::Stored`] appends, recorded gaps, counted
    /// out-of-order drops) is journaled in commit order. Attach before
    /// the first measurement for a complete log; the legacy CSV
    /// [`Memory::load`] path is *not* journaled.
    pub fn attach_journal(&mut self, wal: Wal) {
        self.journal = Some(wal);
    }

    /// Detaches and returns the journal, leaving the memory unlogged.
    pub fn detach_journal(&mut self) -> Option<Wal> {
        self.journal.take()
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Wal> {
        self.journal.as_ref()
    }

    /// Mutable access to the attached journal (flush/sync the file
    /// mirror).
    pub fn journal_mut(&mut self) -> Option<&mut Wal> {
        self.journal.as_mut()
    }

    /// Checkpoints the memory: writes snapshot `seq` to `store`
    /// atomically, then rotates the attached journal up to the offset
    /// the snapshot covers. This is the loop that bounds WAL growth —
    /// everything the snapshot captures leaves the journal, everything
    /// after it stays replayable. Without an attached journal the
    /// snapshot is still written (covering offset 0) and nothing
    /// rotates.
    ///
    /// Rotation only happens after the snapshot has been durably
    /// renamed into place, so a crash between the two steps costs disk
    /// space, never recoverability.
    pub fn checkpoint(
        &mut self,
        store: &crate::wal::SnapshotStore,
        seq: u64,
    ) -> Result<crate::wal::CheckpointReport, crate::wal::WalError> {
        let snapshot = self.snapshot_bytes();
        let covered = self.journal.as_ref().map_or(0, |w| w.len());
        let snapshot_path = store.save(seq, &snapshot)?;
        let rotated = match self.journal.as_mut() {
            Some(wal) => wal.rotate(covered)?,
            None => 0,
        };
        Ok(crate::wal::CheckpointReport {
            snapshot_path,
            covered: covered as u64,
            rotated: rotated as u64,
        })
    }

    /// The memory's sizing configuration.
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// The column segment for a series, if it has ever been touched.
    fn seg(&self, id: ResourceId) -> Option<&ColumnSeries> {
        self.store.get(id.0 as usize)
    }

    /// Per-series metadata, if the series has ever been touched.
    fn meta_of(&self, id: ResourceId) -> Option<&SeriesMeta> {
        self.meta.get(id.0 as usize)
    }

    /// Grows the segment tables to cover `id` and returns its index.
    /// Ids are registry-dense, so growth is bounded by the number of
    /// registered series.
    fn ensure(&mut self, id: ResourceId) -> usize {
        let idx = id.0 as usize;
        if idx >= self.store.len() {
            self.store.resize_with(idx + 1, ColumnSeries::default);
            self.meta.resize_with(idx + 1, SeriesMeta::default);
        }
        idx
    }

    /// Stores one measurement. Timestamps within a series must be strictly
    /// increasing; out-of-order measurements are rejected with `false`
    /// (the NWS drops them too — clocks only move forward on one sensor).
    ///
    /// Convenience wrapper over [`Memory::append`].
    pub fn store(&mut self, id: ResourceId, time: Seconds, value: f64) -> bool {
        self.append(id, time, value).is_stored()
    }

    /// Stores one measurement, reporting *why* a refused one was refused.
    /// Out-of-order rejections are counted per series (see
    /// [`Memory::dropped`]) so fault-injected delivery reordering is
    /// observable rather than silent.
    pub fn append(&mut self, id: ResourceId, time: Seconds, value: f64) -> StoreOutcome {
        let out = self.apply_append(id, time, value);
        if let Some(wal) = &mut self.journal {
            match out {
                StoreOutcome::Stored => wal.log(&WalRecord::Append { id, time, value }),
                // The drop counter is fingerprinted state, so the
                // rejection itself is journaled (the rejected value is
                // not — replay only needs the counter bump).
                StoreOutcome::RejectedOutOfOrder => wal.log(&WalRecord::Drop { id }),
                // Non-finite rejections change nothing an extract or
                // fingerprint can see; nothing to journal.
                StoreOutcome::RejectedNonFinite => {}
            }
        }
        out
    }

    /// [`Memory::append`] without the journaling side: the state
    /// transition itself, shared by live ingest and WAL replay.
    fn apply_append(&mut self, id: ResourceId, time: Seconds, value: f64) -> StoreOutcome {
        if !value.is_finite() || !time.is_finite() {
            return StoreOutcome::RejectedNonFinite;
        }
        let idx = self.ensure(id);
        let buf = &mut self.store[idx];
        if let Some(last) = buf.last_time() {
            if time <= last {
                self.meta[idx].dropped += 1;
                return StoreOutcome::RejectedOutOfOrder;
            }
        }
        buf.push(time, value, self.config.retain);
        self.meta[idx].revision += 1;
        self.global_revision += 1;
        StoreOutcome::Stored
    }

    /// Records that the slot at `time` produced no measurement for this
    /// series — an explicit gap, distinct from "nothing happened". Gap
    /// timestamps are retained under the same bound as measurements.
    pub fn record_gap(&mut self, id: ResourceId, time: Seconds) {
        self.apply_gap(id, time);
        if let Some(wal) = &mut self.journal {
            wal.log(&WalRecord::Gap { id, time });
        }
    }

    fn apply_gap(&mut self, id: ResourceId, time: Seconds) {
        let idx = self.ensure(id);
        let meta = &mut self.meta[idx];
        if meta.gaps.len() == self.config.retain {
            meta.gaps.pop_front();
        }
        meta.gaps.push_back(time);
        meta.revision += 1;
        self.global_revision += 1;
    }

    /// Applies one replayed WAL record without journaling it — the
    /// recovery and replication path. Applying a log produced by this
    /// memory's journal in order reproduces the original state bit for
    /// bit: same column bytes, same revision counters, same
    /// [`Memory::fingerprint`].
    pub fn apply(&mut self, rec: &WalRecord) {
        match *rec {
            WalRecord::Append { id, time, value } => {
                let _ = self.apply_append(id, time, value);
            }
            WalRecord::Gap { id, time } => self.apply_gap(id, time),
            WalRecord::Drop { id } => {
                // Mirrors the RejectedOutOfOrder branch: the drop
                // counter moves, revisions do not.
                let idx = self.ensure(id);
                self.meta[idx].dropped += 1;
            }
        }
    }

    /// Change counter for one series: any append, gap, or reload bumps
    /// it. Equal revisions guarantee an identical extract, so a serving
    /// cache can answer without touching the ring.
    pub fn revision(&self, id: ResourceId) -> u64 {
        self.meta_of(id).map_or(0, |m| m.revision)
    }

    /// Change counter over the whole memory (any series).
    pub fn global_revision(&self) -> u64 {
        self.global_revision
    }

    /// Number of out-of-order deliveries dropped from a series.
    pub fn dropped(&self, id: ResourceId) -> u64 {
        self.meta_of(id).map_or(0, |m| m.dropped)
    }

    /// Total out-of-order drops across all series.
    pub fn total_dropped(&self) -> u64 {
        self.meta.iter().map(|m| m.dropped).sum()
    }

    /// Number of recorded gaps for a series (bounded by retention).
    pub fn gap_count(&self, id: ResourceId) -> usize {
        self.meta_of(id).map_or(0, |m| m.gaps.len())
    }

    /// The recorded gap timestamps for a series, oldest first.
    pub fn gaps(&self, id: ResourceId) -> Vec<Seconds> {
        self.meta_of(id)
            .map_or_else(Vec::new, |m| m.gaps.iter().copied().collect())
    }

    /// Number of measurements currently held for a series.
    pub fn len(&self, id: ResourceId) -> usize {
        self.seg(id).map_or(0, ColumnSeries::len)
    }

    /// True when the series holds no measurements (or is unknown).
    pub fn is_empty(&self, id: ResourceId) -> bool {
        self.len(id) == 0
    }

    /// The most recent measurement of a series.
    pub fn latest(&self, id: ResourceId) -> Option<TimePoint> {
        self.seg(id).and_then(|b| {
            let (times, values) = (b.times(), b.values());
            times
                .last()
                .map(|&t| TimePoint::new(t, *values.last().expect("columns in lockstep")))
        })
    }

    /// The retained measurement values of a series, oldest first, as one
    /// borrowed contiguous slice — the zero-copy path analytics kernels
    /// read. Empty for unknown series.
    pub fn values(&self, id: ResourceId) -> &[f64] {
        self.seg(id).map_or(&[], ColumnSeries::values)
    }

    /// The retained measurement timestamps of a series, oldest first,
    /// borrowed. Empty for unknown series.
    pub fn times(&self, id: ResourceId) -> &[Seconds] {
        self.seg(id).map_or(&[], ColumnSeries::times)
    }

    /// The most recent `n` measurements as borrowed `(times, values)`
    /// column slices, oldest first — the zero-copy `extract`.
    pub fn tail(&self, id: ResourceId, n: usize) -> (&[Seconds], &[f64]) {
        match self.seg(id) {
            None => (&[], &[]),
            Some(buf) => {
                let (times, values) = (buf.times(), buf.values());
                let skip = times.len().saturating_sub(n);
                (&times[skip..], &values[skip..])
            }
        }
    }

    /// Runs `f` over the series' borrowed `(times, values)` columns —
    /// handy when the caller holds the memory behind a lock and wants to
    /// compute without cloning or fighting the borrow checker. Unknown
    /// series yield empty slices.
    pub fn with_series<R>(&self, id: ResourceId, f: impl FnOnce(&[Seconds], &[f64]) -> R) -> R {
        match self.seg(id) {
            None => f(&[], &[]),
            Some(buf) => f(buf.times(), buf.values()),
        }
    }

    /// The full retained history as a [`Series`] (for analysis code).
    pub fn series(&self, id: ResourceId, name: impl Into<String>) -> Series {
        let mut s = Series::with_capacity(name, self.len(id));
        self.with_series(id, |times, values| {
            for (&t, &v) in times.iter().zip(values) {
                s.push(t, v).expect("ring buffer is ordered");
            }
        });
        s
    }

    /// Persists one series to a CSV file (the NWS memory's disk format,
    /// simplified): `time,value` rows under the given path.
    pub fn save(&self, id: ResourceId, path: impl AsRef<Path>) -> Result<(), CsvError> {
        let series = self.series(id, format!("resource-{}", id.0));
        write_series(&series, path)
    }

    /// Restores a series from a CSV file into the given resource id,
    /// replacing whatever that id currently holds. Only the most recent
    /// `retain` points are kept.
    pub fn load(&mut self, id: ResourceId, path: impl AsRef<Path>) -> Result<usize, CsvError> {
        let series = read_series(path)?;
        let keep = self.config.retain.min(series.len());
        let skip = series.len() - keep;
        let mut buf = ColumnSeries {
            times: Vec::with_capacity(keep),
            values: Vec::with_capacity(keep),
            start: 0,
        };
        for p in series.iter().skip(skip) {
            buf.times.push(p.time);
            buf.values.push(p.value);
        }
        let n = buf.len();
        let idx = self.ensure(id);
        self.store[idx] = buf;
        self.meta[idx].revision += 1;
        self.global_revision += 1;
        Ok(n)
    }

    /// Series ids with at least one stored measurement.
    pub fn resource_ids(&self) -> Vec<ResourceId> {
        self.store
            .iter()
            .enumerate()
            .filter(|(_, b)| b.len() > 0)
            .map(|(idx, _)| ResourceId(idx as u64))
            .collect()
    }

    /// FNV-1a fingerprint of everything an extract can observe: the
    /// retention bound, every live column window bit for bit, gap
    /// rings, drop counts, and all revision counters. Two memories with
    /// equal fingerprints answer every query identically — the
    /// crash-recovery and replication tests pin exactly this.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.config.retain as u64);
        mix(self.store.len() as u64);
        for idx in 0..self.store.len() {
            let buf = &self.store[idx];
            let meta = &self.meta[idx];
            mix(buf.len() as u64);
            for &t in buf.times() {
                mix(t.to_bits());
            }
            for &v in buf.values() {
                mix(v.to_bits());
            }
            mix(meta.dropped);
            mix(meta.gaps.len() as u64);
            for &g in &meta.gaps {
                mix(g.to_bits());
            }
            mix(meta.revision);
        }
        mix(self.global_revision);
        h
    }

    /// Serializes the full columnar state — live windows, gap rings,
    /// drop counts, revisions — as one CRC-trailed snapshot covering
    /// the attached journal's current offset (0 when unjournaled).
    /// Restoring it and replaying the WAL suffix from that offset
    /// reproduces any later state bit for bit.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let wal_offset = self.journal.as_ref().map_or(0, |w| w.len() as u64);
        self.snapshot_bytes_at(wal_offset)
    }

    /// [`Memory::snapshot_bytes`] with an explicit WAL offset (for
    /// callers journaling externally).
    pub fn snapshot_bytes_at(&self, wal_offset: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        let put = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        put(&mut out, self.config.retain as u64);
        put(&mut out, wal_offset);
        put(&mut out, self.global_revision);
        put(&mut out, self.store.len() as u64);
        for idx in 0..self.store.len() {
            let buf = &self.store[idx];
            let meta = &self.meta[idx];
            put(&mut out, buf.len() as u64);
            for &t in buf.times() {
                put(&mut out, t.to_bits());
            }
            for &v in buf.values() {
                put(&mut out, v.to_bits());
            }
            put(&mut out, meta.dropped);
            put(&mut out, meta.gaps.len() as u64);
            for &g in &meta.gaps {
                put(&mut out, g.to_bits());
            }
            put(&mut out, meta.revision);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Restores a memory from snapshot bytes, returning it with the WAL
    /// offset the snapshot covers. Total: bad magic, a checksum
    /// mismatch, truncation, or out-of-bounds counts yield a typed
    /// [`WalError::Snapshot`], never a panic — recovery treats any of
    /// them as "no snapshot" and falls back to a genesis replay.
    pub fn from_snapshot(bytes: &[u8]) -> Result<(Memory, u64), WalError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
            return Err(WalError::Snapshot("too short"));
        }
        if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(WalError::Snapshot("bad magic"));
        }
        let body_end = bytes.len() - 4;
        let want = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
        if crc32(&bytes[..body_end]) != want {
            return Err(WalError::Snapshot("checksum mismatch"));
        }
        let body = &bytes[..body_end];
        let mut off = SNAPSHOT_MAGIC.len();
        let take = |off: &mut usize| -> Result<u64, WalError> {
            let end = *off + 8;
            if end > body.len() {
                return Err(WalError::Snapshot("truncated body"));
            }
            let v = u64::from_le_bytes(body[*off..end].try_into().expect("8 bytes"));
            *off = end;
            Ok(v)
        };
        let retain = take(&mut off)? as usize;
        if retain == 0 {
            return Err(WalError::Snapshot("zero retention"));
        }
        let wal_offset = take(&mut off)?;
        let global_revision = take(&mut off)?;
        let nseries = take(&mut off)? as usize;
        // Every series costs at least 4 u64s; bound the count by the
        // bytes actually present before allocating tables.
        if nseries > (body.len() - off) / 32 + 1 {
            return Err(WalError::Snapshot("series count out of bounds"));
        }
        let mut store = Vec::with_capacity(nseries);
        let mut meta = Vec::with_capacity(nseries);
        for _ in 0..nseries {
            let len = take(&mut off)? as usize;
            if len > retain || len * 16 > body.len() - off {
                return Err(WalError::Snapshot("series length out of bounds"));
            }
            let mut buf = ColumnSeries {
                times: Vec::with_capacity(len),
                values: Vec::with_capacity(len),
                start: 0,
            };
            for _ in 0..len {
                buf.times.push(f64::from_bits(take(&mut off)?));
            }
            for _ in 0..len {
                buf.values.push(f64::from_bits(take(&mut off)?));
            }
            let dropped = take(&mut off)?;
            let ngaps = take(&mut off)? as usize;
            if ngaps > retain || ngaps * 8 > body.len() - off {
                return Err(WalError::Snapshot("gap count out of bounds"));
            }
            let mut gaps = VecDeque::with_capacity(ngaps);
            for _ in 0..ngaps {
                gaps.push_back(f64::from_bits(take(&mut off)?));
            }
            let revision = take(&mut off)?;
            store.push(buf);
            meta.push(SeriesMeta {
                dropped,
                gaps,
                revision,
            });
        }
        if off != body.len() {
            return Err(WalError::Snapshot("trailing bytes"));
        }
        Ok((
            Memory {
                config: MemoryConfig { retain },
                store,
                meta,
                global_revision,
                journal: None,
            },
            wal_offset,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u64) -> ResourceId {
        ResourceId(n)
    }

    /// Owned extract shape (the old NWS `extract` API), rebuilt from the
    /// borrowed tail for tests that diff against it.
    fn extract(m: &Memory, id: ResourceId, n: usize) -> Vec<TimePoint> {
        let (times, values) = m.tail(id, n);
        times
            .iter()
            .zip(values)
            .map(|(&t, &v)| TimePoint::new(t, v))
            .collect()
    }

    #[test]
    fn store_and_extract_in_order() {
        let mut m = Memory::new(MemoryConfig::default());
        assert!(m.store(rid(1), 0.0, 0.5));
        assert!(m.store(rid(1), 10.0, 0.6));
        assert!(m.store(rid(1), 20.0, 0.7));
        let pts = extract(&m, rid(1), 2);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].value, 0.6);
        assert_eq!(pts[1].value, 0.7);
        assert_eq!(m.latest(rid(1)).expect("stored").value, 0.7);
        assert_eq!(m.len(rid(1)), 3);
    }

    #[test]
    fn rejects_out_of_order_and_nonfinite() {
        let mut m = Memory::new(MemoryConfig::default());
        assert!(m.store(rid(1), 10.0, 0.5));
        assert!(!m.store(rid(1), 10.0, 0.6)); // equal time
        assert!(!m.store(rid(1), 5.0, 0.6)); // past
        assert!(!m.store(rid(1), 20.0, f64::NAN));
        assert!(!m.store(rid(1), f64::INFINITY, 0.5));
        assert_eq!(m.len(rid(1)), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut m = Memory::new(MemoryConfig { retain: 3 });
        for i in 0..10 {
            assert!(m.store(rid(7), i as f64, i as f64 / 10.0));
        }
        assert_eq!(m.len(rid(7)), 3);
        let pts = extract(&m, rid(7), 10);
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![0.7, 0.8, 0.9]);
    }

    #[test]
    fn borrowed_columns_match_extract_across_compactions() {
        // Push far past the retention bound so the ring compacts several
        // times; the borrowed view must stay the live window throughout.
        let mut m = Memory::new(MemoryConfig { retain: 5 });
        for i in 0..37 {
            m.store(rid(3), i as f64, (i as f64).sin());
            let pts = extract(&m, rid(3), usize::MAX);
            let times = m.times(rid(3));
            let values = m.values(rid(3));
            assert_eq!(times.len(), pts.len());
            assert_eq!(values.len(), pts.len());
            for (j, p) in pts.iter().enumerate() {
                assert_eq!(times[j], p.time);
                assert_eq!(values[j], p.value);
            }
        }
        assert_eq!(m.len(rid(3)), 5);
    }

    #[test]
    fn tail_returns_most_recent_slices() {
        let mut m = Memory::new(MemoryConfig { retain: 4 });
        for i in 0..9 {
            m.store(rid(1), i as f64, i as f64 / 10.0);
        }
        let (times, values) = m.tail(rid(1), 2);
        assert_eq!(times, &[7.0, 8.0]);
        assert_eq!(values, &[0.7, 0.8]);
        // Oversized n returns the whole live window.
        let (times, values) = m.tail(rid(1), 100);
        assert_eq!(times.len(), 4);
        assert_eq!(values[0], 0.5);
        // Unknown series: empty slices, no allocation, no panic.
        let (times, values) = m.tail(rid(9), 5);
        assert!(times.is_empty() && values.is_empty());
    }

    #[test]
    fn with_series_borrows_both_columns() {
        let mut m = Memory::new(MemoryConfig::default());
        for i in 0..6 {
            m.store(rid(2), i as f64 * 10.0, 0.1 * i as f64);
        }
        let (sum_t, sum_v) = m.with_series(rid(2), |times, values| {
            (times.iter().sum::<f64>(), values.iter().sum::<f64>())
        });
        assert_eq!(sum_t, 150.0);
        assert!((sum_v - 1.5).abs() < 1e-12);
        assert_eq!(m.with_series(rid(8), |t, v| t.len() + v.len()), 0);
    }

    #[test]
    fn unknown_series_is_empty() {
        let m = Memory::new(MemoryConfig::default());
        assert!(m.is_empty(rid(9)));
        assert!(extract(&m, rid(9), 5).is_empty());
        assert!(m.latest(rid(9)).is_none());
        assert!(m.values(rid(9)).is_empty());
        assert!(m.times(rid(9)).is_empty());
        assert!(m.resource_ids().is_empty());
    }

    #[test]
    fn series_conversion_round_trips() {
        let mut m = Memory::new(MemoryConfig::default());
        for i in 0..5 {
            m.store(rid(2), i as f64 * 10.0, 0.1 * i as f64);
        }
        let s = m.series(rid(2), "r2");
        assert_eq!(s.name(), "r2");
        assert_eq!(s.len(), 5);
        assert_eq!(s.values()[4], 0.4);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("nws-memory-test");
        let path = dir.join("r1.csv");
        let mut m = Memory::new(MemoryConfig::default());
        for i in 0..20 {
            m.store(rid(1), i as f64 * 10.0, (i as f64 / 20.0).min(1.0));
        }
        m.save(rid(1), &path).expect("writable temp dir");
        let mut m2 = Memory::new(MemoryConfig::default());
        let n = m2.load(rid(5), &path).expect("readable");
        assert_eq!(n, 20);
        assert_eq!(extract(&m2, rid(5), 100), extract(&m, rid(1), 100));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_truncates_to_retention() {
        let dir = std::env::temp_dir().join("nws-memory-trunc-test");
        let path = dir.join("r.csv");
        let mut big = Memory::new(MemoryConfig::default());
        for i in 0..50 {
            big.store(rid(1), i as f64, 0.5);
        }
        big.save(rid(1), &path).expect("writable");
        let mut small = Memory::new(MemoryConfig { retain: 7 });
        let n = small.load(rid(1), &path).expect("readable");
        assert_eq!(n, 7);
        // The RETAINED points are the most recent ones.
        assert_eq!(extract(&small, rid(1), 1)[0].time, 49.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn separate_series_are_independent() {
        let mut m = Memory::new(MemoryConfig { retain: 2 });
        m.store(rid(1), 1.0, 0.1);
        m.store(rid(2), 1.0, 0.2);
        assert_eq!(m.len(rid(1)), 1);
        assert_eq!(m.len(rid(2)), 1);
        assert_eq!(m.resource_ids(), vec![rid(1), rid(2)]);
    }

    #[test]
    fn append_reports_rejection_reasons_and_counts_drops() {
        let mut m = Memory::new(MemoryConfig::default());
        assert_eq!(m.append(rid(1), 10.0, 0.5), StoreOutcome::Stored);
        assert_eq!(
            m.append(rid(1), 10.0, 0.6),
            StoreOutcome::RejectedOutOfOrder
        );
        assert_eq!(m.append(rid(1), 5.0, 0.6), StoreOutcome::RejectedOutOfOrder);
        assert_eq!(
            m.append(rid(1), 20.0, f64::NAN),
            StoreOutcome::RejectedNonFinite
        );
        assert_eq!(m.dropped(rid(1)), 2, "only out-of-order deliveries count");
        assert_eq!(m.dropped(rid(2)), 0);
        assert_eq!(m.append(rid(2), 1.0, 0.1), StoreOutcome::Stored);
        assert_eq!(m.append(rid(2), 0.5, 0.1), StoreOutcome::RejectedOutOfOrder);
        assert_eq!(m.total_dropped(), 3);
        // The series itself only holds the accepted points.
        assert_eq!(m.len(rid(1)), 1);
    }

    #[test]
    fn revisions_track_every_visible_change() {
        let mut m = Memory::new(MemoryConfig::default());
        assert_eq!(m.revision(rid(1)), 0);
        assert_eq!(m.global_revision(), 0);
        m.store(rid(1), 10.0, 0.5);
        assert_eq!(m.revision(rid(1)), 1);
        // Rejected deliveries change nothing an extract would see.
        m.store(rid(1), 10.0, 0.6);
        m.store(rid(1), 5.0, f64::NAN);
        assert_eq!(m.revision(rid(1)), 1);
        m.record_gap(rid(1), 20.0);
        assert_eq!(m.revision(rid(1)), 2);
        // Other series bump the global counter but not this one.
        m.store(rid(2), 1.0, 0.1);
        assert_eq!(m.revision(rid(1)), 2);
        assert_eq!(m.revision(rid(2)), 1);
        assert_eq!(m.global_revision(), 3);
    }

    #[test]
    fn gaps_are_recorded_per_series_and_bounded() {
        let mut m = Memory::new(MemoryConfig { retain: 3 });
        assert_eq!(m.gap_count(rid(1)), 0);
        for i in 0..5 {
            m.record_gap(rid(1), i as f64 * 10.0);
        }
        assert_eq!(m.gap_count(rid(1)), 3, "gap ring respects retention");
        assert_eq!(m.gaps(rid(1)), vec![20.0, 30.0, 40.0]);
        assert_eq!(m.gap_count(rid(2)), 0);
        assert!(m.gaps(rid(2)).is_empty());
        // Gaps don't affect the measurement series.
        assert!(m.is_empty(rid(1)));
    }

    #[test]
    fn backing_storage_stays_bounded_under_long_ingest() {
        let mut m = Memory::new(MemoryConfig { retain: 8 });
        for i in 0..10_000 {
            m.store(rid(1), i as f64, 0.5);
        }
        let buf = &m.store[1];
        assert_eq!(buf.len(), 8);
        assert!(
            buf.times.len() <= 16 && buf.values.len() <= 16,
            "dead prefix must be compacted away: {} slots",
            buf.times.len()
        );
    }
}
