//! Durability: the append-only write-ahead log and columnar snapshots.
//!
//! The real NWS persistent-state memory journals measurements to disk so
//! a sensor host reboot (the paper's availability traces are full of
//! them) does not cost the forecaster its window. This module reproduces
//! that guarantee around the columnar [`Memory`]:
//!
//! - **WAL**: every state change the memory accepts — a stored
//!   measurement, a recorded gap, or an out-of-order drop — is journaled
//!   as one CRC-framed, length-prefixed [`WalRecord`] *in commit order*.
//!   Because the engine commits slot-major in host-registration order,
//!   the WAL byte stream is itself deterministic: bit-identical at any
//!   thread count, batch window, or clock.
//! - **Snapshots**: [`Memory::snapshot_bytes`] serializes the full
//!   columnar state (live windows, gap rings, drop counts, revisions)
//!   with a trailing CRC and the WAL offset it covers, so recovery
//!   replays only the suffix.
//! - **Recovery**: [`recover_memory`] composes the two — snapshot if one
//!   validates, genesis otherwise, then a total replay of the WAL that
//!   stops at the first corruption and keeps every record before it.
//!   Recovered state is bit-identical to an uninterrupted run: same
//!   column bytes, same per-segment and global revision counters, same
//!   [`Memory::fingerprint`].
//!
//! The WAL record stream doubles as the replication protocol: a replica
//! that applies the same records in the same order *is* the primary,
//! byte for byte (`nws-server`'s `ReplicaState` rides on exactly this).
//!
//! # Record format
//!
//! ```text
//! record  := len:u32le | crc32:u32le | payload[len]
//! payload := tag:u8 | id:u64le | [time:f64le-bits] | [value:f64le-bits]
//! ```
//!
//! Tags: `0` Append (25-byte payload), `1` Gap (17), `2` Drop (9). The
//! CRC (IEEE 802.3, reflected) covers the payload only; the length
//! prefix is validated against [`MAX_RECORD_PAYLOAD`] before anything
//! is read, mirroring `nws-wire`'s bound-before-alloc discipline. The
//! decoder is *total*: garbage bytes, truncated tails, and bit flips
//! all yield typed [`WalError`]s, never panics.

use crate::memory::{Memory, MemoryConfig};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

pub use crate::registry::ResourceId;
use nws_timeseries::Seconds;

/// Magic prefix of a columnar snapshot file (`NWSNAP` + format version).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"NWSNAP01";

/// Bytes of a record frame before its payload (`len` + `crc32`).
pub const RECORD_HEADER_LEN: usize = 8;

/// Upper bound on a record payload. The largest record today (Append)
/// is 25 bytes; the slack leaves room for future tags while still
/// rejecting garbage length prefixes before any payload is touched.
pub const MAX_RECORD_PAYLOAD: usize = 64;

/// Upper bound on one framed record (`header + payload`). Replication
/// chunk sizes are clamped to at least this so a chunk always makes
/// progress.
pub const MAX_RECORD_FRAME: usize = RECORD_HEADER_LEN + MAX_RECORD_PAYLOAD;

const TAG_APPEND: u8 = 0;
const TAG_GAP: u8 = 1;
const TAG_DROP: u8 = 2;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table built at compile time.

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of a byte slice — the checksum framing every WAL
/// record and trailing every snapshot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Errors

/// Why a WAL or snapshot byte stream could not be decoded. Offsets are
/// byte positions of the *record* that failed, so recovery can report
/// exactly how much of the log survived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The stream ends mid-record (a torn final write).
    Truncated { offset: usize },
    /// The payload checksum does not match (bit rot / corruption).
    BadCrc { offset: usize },
    /// The record kind is not in the vocabulary.
    UnknownTag { offset: usize, tag: u8 },
    /// The length prefix exceeds [`MAX_RECORD_PAYLOAD`] — garbage framing,
    /// rejected before any payload is read.
    RecordTooLong { offset: usize, len: usize },
    /// A known tag with the wrong payload size (corruption that survived
    /// the checksum).
    BadLength { offset: usize },
    /// A snapshot failed validation (magic, checksum, or bounds).
    Snapshot(&'static str),
    /// The file mirror failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Truncated { offset } => {
                write!(f, "wal truncated mid-record at byte {offset}")
            }
            WalError::BadCrc { offset } => {
                write!(f, "wal record checksum mismatch at byte {offset}")
            }
            WalError::UnknownTag { offset, tag } => {
                write!(f, "unknown wal record tag {tag} at byte {offset}")
            }
            WalError::RecordTooLong { offset, len } => write!(
                f,
                "wal record length {len} at byte {offset} exceeds {MAX_RECORD_PAYLOAD}"
            ),
            WalError::BadLength { offset } => {
                write!(f, "wal record payload size mismatch at byte {offset}")
            }
            WalError::Snapshot(what) => write!(f, "snapshot rejected: {what}"),
            WalError::Io(kind) => write!(f, "wal io error: {kind}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.kind())
    }
}

// ---------------------------------------------------------------------------
// Records

/// One journaled state change of the [`Memory`], in commit order.
///
/// `Append` and `Gap` carry everything the forecast layer needs too
/// (`observe(id, time, value)` / `note_gap(id, time)`), so a full-log
/// replay rebuilds the `ForecastService` exactly, not just the memory.
/// `Drop` records an out-of-order rejection — the `dropped` counter is
/// part of the fingerprinted state but not derivable from the accepted
/// appends alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalRecord {
    /// A measurement the memory accepted (`StoreOutcome::Stored`).
    Append {
        id: ResourceId,
        time: Seconds,
        value: f64,
    },
    /// A slot that resolved to an explicit gap.
    Gap { id: ResourceId, time: Seconds },
    /// An out-of-order delivery the memory rejected and counted.
    Drop { id: ResourceId },
}

impl WalRecord {
    fn fill_payload(&self, buf: &mut [u8; 25]) -> usize {
        match *self {
            WalRecord::Append { id, time, value } => {
                buf[0] = TAG_APPEND;
                buf[1..9].copy_from_slice(&id.0.to_le_bytes());
                buf[9..17].copy_from_slice(&time.to_bits().to_le_bytes());
                buf[17..25].copy_from_slice(&value.to_bits().to_le_bytes());
                25
            }
            WalRecord::Gap { id, time } => {
                buf[0] = TAG_GAP;
                buf[1..9].copy_from_slice(&id.0.to_le_bytes());
                buf[9..17].copy_from_slice(&time.to_bits().to_le_bytes());
                17
            }
            WalRecord::Drop { id } => {
                buf[0] = TAG_DROP;
                buf[1..9].copy_from_slice(&id.0.to_le_bytes());
                9
            }
        }
    }

    /// Appends this record's frame (`len | crc | payload`) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = [0u8; 25];
        let n = self.fill_payload(&mut payload);
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload[..n]).to_le_bytes());
        out.extend_from_slice(&payload[..n]);
    }

    /// Decodes the record framed at `offset`, returning it and the
    /// offset of the next frame. Total: every malformed input yields a
    /// typed [`WalError`].
    pub fn decode_at(bytes: &[u8], offset: usize) -> Result<(WalRecord, usize), WalError> {
        let rest = bytes.get(offset..).unwrap_or(&[]);
        if rest.len() < RECORD_HEADER_LEN {
            return Err(WalError::Truncated { offset });
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_PAYLOAD {
            return Err(WalError::RecordTooLong { offset, len });
        }
        if rest.len() < RECORD_HEADER_LEN + len {
            return Err(WalError::Truncated { offset });
        }
        let want = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        if crc32(payload) != want {
            return Err(WalError::BadCrc { offset });
        }
        let rec = Self::from_payload(payload, offset)?;
        Ok((rec, offset + RECORD_HEADER_LEN + len))
    }

    fn from_payload(p: &[u8], offset: usize) -> Result<WalRecord, WalError> {
        let Some(&tag) = p.first() else {
            return Err(WalError::BadLength { offset });
        };
        let u = |range: std::ops::Range<usize>| {
            u64::from_le_bytes(p[range].try_into().expect("8 bytes"))
        };
        match (tag, p.len()) {
            (TAG_APPEND, 25) => Ok(WalRecord::Append {
                id: ResourceId(u(1..9)),
                time: f64::from_bits(u(9..17)),
                value: f64::from_bits(u(17..25)),
            }),
            (TAG_GAP, 17) => Ok(WalRecord::Gap {
                id: ResourceId(u(1..9)),
                time: f64::from_bits(u(9..17)),
            }),
            (TAG_DROP, 9) => Ok(WalRecord::Drop {
                id: ResourceId(u(1..9)),
            }),
            (TAG_APPEND | TAG_GAP | TAG_DROP, _) => Err(WalError::BadLength { offset }),
            (tag, _) => Err(WalError::UnknownTag { offset, tag }),
        }
    }
}

// ---------------------------------------------------------------------------
// Replay

/// What a [`replay`] scan found: how many records decoded, where the
/// valid prefix ends, and what (if anything) stopped the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replay {
    /// Records decoded and delivered to the callback.
    pub records: u64,
    /// Byte offset just past the last valid record — the recovered
    /// log's length.
    pub end: usize,
    /// `None` when the scan reached the end of the bytes cleanly; the
    /// first corruption otherwise. Everything before `end` was kept.
    pub error: Option<WalError>,
}

/// Scans WAL bytes from `from`, delivering each valid record in order.
/// Stops at the first malformed record and reports it; every record
/// before the corruption is preserved (a torn final write after a crash
/// costs exactly the torn record, nothing before it).
pub fn replay(bytes: &[u8], from: usize, mut f: impl FnMut(&WalRecord)) -> Replay {
    let mut offset = from.min(bytes.len());
    let mut records = 0u64;
    while offset < bytes.len() {
        match WalRecord::decode_at(bytes, offset) {
            Ok((rec, next)) => {
                f(&rec);
                records += 1;
                offset = next;
            }
            Err(error) => {
                return Replay {
                    records,
                    end: offset,
                    error: Some(error),
                }
            }
        }
    }
    Replay {
        records,
        end: offset,
        error: None,
    }
}

// ---------------------------------------------------------------------------
// The log itself

/// The append-only write-ahead log: an in-memory byte journal (the
/// replication source — chunks are served straight from it) with an
/// optional buffered file mirror for on-disk durability.
///
/// File-mirror write errors are sticky and surfaced via
/// [`Wal::io_error`] / [`Wal::flush`] rather than panicking the ingest
/// path; the in-memory journal stays authoritative.
///
/// # Rotation
///
/// Offsets are *absolute* and never reused: [`Wal::len`] is the total
/// bytes ever journaled, and [`Wal::rotate`] discards a prefix the
/// latest snapshot already covers without renumbering anything —
/// [`Wal::start_offset`] moves forward, replication offsets stay
/// valid, and a request for a rotated-away offset is distinguishable
/// from a bad one. This is what bounds journal growth: snapshot, then
/// rotate up to the offset the snapshot covers
/// ([`Memory::checkpoint`](crate::Memory::checkpoint) does both).
#[derive(Debug, Default)]
pub struct Wal {
    /// Retained journal bytes: the suffix from `base` on.
    bytes: Vec<u8>,
    /// Absolute offset of `bytes[0]` — 0 until the first rotation.
    base: usize,
    file: Option<BufWriter<File>>,
    /// The file mirror's path, kept for rotation rewrites.
    path: Option<PathBuf>,
    io_error: Option<std::io::ErrorKind>,
}

impl Wal {
    /// An in-memory-only journal (replication without disk durability).
    pub fn new() -> Self {
        Self::default()
    }

    /// A journal mirrored to a file (created or truncated).
    pub fn with_file(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Self {
            bytes: Vec::new(),
            base: 0,
            file: Some(BufWriter::new(file)),
            path: Some(path),
            io_error: None,
        })
    }

    /// Appends one record frame to the journal (and the file mirror,
    /// when present).
    pub fn log(&mut self, rec: &WalRecord) {
        let start = self.bytes.len();
        rec.encode_into(&mut self.bytes);
        if let Some(file) = &mut self.file {
            if let Err(e) = file.write_all(&self.bytes[start..]) {
                self.io_error.get_or_insert(e.kind());
            }
        }
    }

    /// Total bytes ever journaled — the absolute end offset and the
    /// replication high-water mark. Unaffected by rotation.
    pub fn len(&self) -> usize {
        self.base + self.bytes.len()
    }

    /// True when nothing has ever been journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The absolute offset of the oldest retained byte — 0 until the
    /// first [`Wal::rotate`]. Offsets below this have been rotated away
    /// and can no longer be served.
    pub fn start_offset(&self) -> usize {
        self.base
    }

    /// The retained journal bytes (the suffix from
    /// [`Wal::start_offset`] on; the whole journal until a rotation).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A chunk of the journal starting at absolute `offset`, at most
    /// `max` bytes, always ending on a record boundary so the receiver
    /// never sees a torn frame. Empty when `offset` is at (or past) the
    /// end, or before [`Wal::start_offset`] (callers that care
    /// distinguish rotated-away offsets *before* asking). A `max`
    /// smaller than the first frame still yields that one frame, so
    /// streaming always makes progress.
    pub fn chunk(&self, offset: usize, max: usize) -> &[u8] {
        if offset < self.base {
            return &[];
        }
        let local = offset - self.base;
        if local >= self.bytes.len() {
            return &[];
        }
        let mut end = local;
        while let Ok((_, next)) = WalRecord::decode_at(&self.bytes, end) {
            if next - local > max && end > local {
                break;
            }
            end = next;
            if next - local >= max {
                break;
            }
        }
        &self.bytes[local..end]
    }

    /// Discards journaled bytes before absolute offset `upto` (snapped
    /// down to a record boundary), returning how many bytes were
    /// dropped. Offsets stay absolute — [`Wal::len`] does not move,
    /// [`Wal::start_offset`] advances — so replication readers past the
    /// cut are unaffected.
    ///
    /// With a file mirror attached, the retained suffix is rewritten
    /// atomically (temp file + rename), so a crash mid-rotation leaves
    /// either the old file or the new one. The rewrite comes from the
    /// authoritative in-memory journal, so it also clears any sticky
    /// [`Wal::io_error`] from earlier mirror writes.
    ///
    /// Call with the WAL offset a just-saved snapshot covers — that is
    /// exactly the prefix recovery no longer needs.
    pub fn rotate(&mut self, upto: usize) -> Result<usize, WalError> {
        let target = upto.clamp(self.base, self.len()) - self.base;
        // Snap down to a record boundary so retained bytes always
        // decode from their start.
        let mut cut = 0;
        while cut < target {
            match WalRecord::decode_at(&self.bytes, cut) {
                Ok((_, next)) if next <= target => cut = next,
                _ => break,
            }
        }
        if cut == 0 {
            return Ok(0);
        }
        if let (Some(path), Some(_)) = (&self.path, &self.file) {
            let tmp = path.with_extension("rotate-tmp");
            std::fs::write(&tmp, &self.bytes[cut..])?;
            std::fs::rename(&tmp, path)?;
            let file = std::fs::OpenOptions::new().append(true).open(path)?;
            self.file = Some(BufWriter::new(file));
            self.io_error = None;
        }
        self.bytes.drain(..cut);
        self.base += cut;
        Ok(cut)
    }

    /// The first file-mirror write error, if any occurred.
    pub fn io_error(&self) -> Option<std::io::ErrorKind> {
        self.io_error
    }

    /// Flushes the file mirror's buffer, reporting any sticky write
    /// error first.
    pub fn flush(&mut self) -> Result<(), WalError> {
        if let Some(kind) = self.io_error {
            return Err(WalError::Io(kind));
        }
        if let Some(file) = &mut self.file {
            file.flush()?;
        }
        Ok(())
    }

    /// Flushes and fsyncs the file mirror (full durability barrier).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.flush()?;
        if let Some(file) = &mut self.file {
            file.get_ref().sync_all()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Snapshot store

/// A directory of sequence-numbered snapshot files with bounded
/// retention. Writes are atomic (temp file + rename) so a crash during
/// [`SnapshotStore::save`] never leaves a half-written snapshot where
/// recovery would find it — recovery sees either the old snapshot or
/// the new one.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    keep: usize,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory retaining the
    /// newest `keep` snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `keep == 0`.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, WalError> {
        assert!(keep > 0, "snapshot store must retain at least one");
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, keep })
    }

    fn path_of(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snap-{seq:020}.nws"))
    }

    /// Writes snapshot `seq` atomically and prunes old snapshots beyond
    /// the retention bound. Returns the final path.
    pub fn save(&self, seq: u64, bytes: &[u8]) -> Result<PathBuf, WalError> {
        let tmp = self.dir.join(format!("snap-{seq:020}.tmp"));
        std::fs::write(&tmp, bytes)?;
        let path = self.path_of(seq);
        std::fs::rename(&tmp, &path)?;
        let mut seqs = self.sequences()?;
        seqs.sort_unstable();
        while seqs.len() > self.keep {
            let old = seqs.remove(0);
            let _ = std::fs::remove_file(self.path_of(old));
        }
        Ok(path)
    }

    fn sequences(&self) -> Result<Vec<u64>, WalError> {
        let mut seqs = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("snap-")
                .and_then(|s| s.strip_suffix(".nws"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        Ok(seqs)
    }

    /// Loads the newest snapshot, if any exists. The bytes are returned
    /// unvalidated — [`recover_memory`] (or [`Memory::from_snapshot`])
    /// decides whether they are usable.
    pub fn load_newest(&self) -> Result<Option<(u64, Vec<u8>)>, WalError> {
        let Some(&seq) = self.sequences()?.iter().max() else {
            return Ok(None);
        };
        let bytes = std::fs::read(self.path_of(seq))?;
        Ok(Some((seq, bytes)))
    }
}

// ---------------------------------------------------------------------------
// Recovery

/// Where recovery started from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// No usable snapshot: the full WAL was replayed from an empty
    /// memory.
    Genesis,
    /// A validated snapshot covering the WAL up to `wal_offset`; only
    /// the suffix was replayed.
    Snapshot { wal_offset: usize },
}

/// What [`recover_memory`] did and found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Snapshot or genesis.
    pub source: RecoverySource,
    /// Why the offered snapshot was rejected (recovery fell back to
    /// genesis), if it was.
    pub snapshot_error: Option<WalError>,
    /// WAL records replayed on top of the starting state.
    pub replayed: u64,
    /// Length of the valid WAL prefix (bytes). Anything past this was
    /// torn or corrupt and is reported, not silently dropped.
    pub valid_wal_len: usize,
    /// The corruption that ended the replay, if the log did not decode
    /// cleanly to its end.
    pub tail_error: Option<WalError>,
}

/// Rebuilds a [`Memory`] from an optional snapshot plus the WAL.
///
/// A snapshot that fails validation — or claims to cover more WAL than
/// exists — is rejected (reported in the [`RecoveryReport`]) and
/// recovery falls back to a genesis replay of the whole log. The replay
/// is total: it stops at the first corrupt record, keeping everything
/// before it. `on_record` sees every replayed record in order, which is
/// how callers rebuild companion state (the `ForecastService`) during a
/// genesis replay.
pub fn recover_memory(
    config: MemoryConfig,
    snapshot: Option<&[u8]>,
    wal: &[u8],
    on_record: impl FnMut(&WalRecord),
) -> (Memory, RecoveryReport) {
    recover_memory_rotated(config, snapshot, wal, 0, on_record)
}

/// [`recover_memory`] for a rotated journal: `wal` holds the bytes
/// from absolute offset `wal_base` on (what [`Wal::bytes`] retains
/// after [`Wal::rotate`]), and the snapshot's covered offset is
/// interpreted absolutely.
///
/// A rotated journal makes a genesis replay impossible — the early
/// records are gone by design, because a snapshot covered them. So
/// when `wal_base > 0` a usable snapshot covering at least `wal_base`
/// is *required*: anything else is reported as a snapshot error and
/// the WAL is left unreplayed rather than silently rebuilding wrong
/// state from the middle of history.
pub fn recover_memory_rotated(
    config: MemoryConfig,
    snapshot: Option<&[u8]>,
    wal: &[u8],
    wal_base: usize,
    mut on_record: impl FnMut(&WalRecord),
) -> (Memory, RecoveryReport) {
    let wal_end = wal_base + wal.len();
    let mut snapshot_error = None;
    let (mut memory, source) = match snapshot {
        Some(bytes) => match Memory::from_snapshot(bytes) {
            Ok((m, off)) if (wal_base..=wal_end).contains(&(off as usize)) => (
                m,
                RecoverySource::Snapshot {
                    wal_offset: off as usize,
                },
            ),
            Ok((_, off)) if (off as usize) < wal_base => {
                snapshot_error = Some(WalError::Snapshot("snapshot predates the rotated wal"));
                (Memory::new(config), RecoverySource::Genesis)
            }
            Ok(_) => {
                snapshot_error = Some(WalError::Snapshot("snapshot is ahead of the wal"));
                (Memory::new(config), RecoverySource::Genesis)
            }
            Err(e) => {
                snapshot_error = Some(e);
                (Memory::new(config), RecoverySource::Genesis)
            }
        },
        None => (Memory::new(config), RecoverySource::Genesis),
    };
    if source == RecoverySource::Genesis && wal_base > 0 {
        // The log's beginning was rotated away; replaying the suffix
        // from an empty memory would fabricate state. Refuse.
        return (
            memory,
            RecoveryReport {
                source,
                snapshot_error: snapshot_error
                    .or(Some(WalError::Snapshot("rotated wal requires a snapshot"))),
                replayed: 0,
                valid_wal_len: wal_base,
                tail_error: None,
            },
        );
    }
    let from = match source {
        RecoverySource::Snapshot { wal_offset } => wal_offset - wal_base,
        RecoverySource::Genesis => 0,
    };
    let scan = replay(wal, from, |rec| {
        memory.apply(rec);
        on_record(rec);
    });
    (
        memory,
        RecoveryReport {
            source,
            snapshot_error,
            replayed: scan.records,
            valid_wal_len: wal_base + scan.end,
            tail_error: scan.error,
        },
    )
}

// ---------------------------------------------------------------------------
// Checkpoints

/// What one [`Memory::checkpoint`](crate::Memory::checkpoint) did: the
/// snapshot it wrote and the journal prefix the rotation reclaimed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Where the snapshot landed.
    pub snapshot_path: PathBuf,
    /// Absolute WAL offset the snapshot covers (recovery replays from
    /// here).
    pub covered: u64,
    /// Journal bytes the rotation dropped.
    pub rotated: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u64) -> ResourceId {
        ResourceId(n)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let records = [
            WalRecord::Append {
                id: rid(7),
                time: 120.0,
                value: 0.875,
            },
            WalRecord::Gap {
                id: rid(3),
                time: 130.0,
            },
            WalRecord::Drop { id: rid(7) },
        ];
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        let mut seen = Vec::new();
        let scan = replay(&bytes, 0, |r| seen.push(*r));
        assert_eq!(scan.records, 3);
        assert_eq!(scan.end, bytes.len());
        assert_eq!(scan.error, None);
        assert_eq!(seen, records);
    }

    #[test]
    fn truncated_tail_keeps_valid_prefix() {
        let mut bytes = Vec::new();
        WalRecord::Drop { id: rid(1) }.encode_into(&mut bytes);
        let first = bytes.len();
        WalRecord::Append {
            id: rid(2),
            time: 10.0,
            value: 0.5,
        }
        .encode_into(&mut bytes);
        // Tear the final record at every possible byte.
        for cut in first + 1..bytes.len() {
            let torn = &bytes[..cut];
            let mut count = 0;
            let scan = replay(torn, 0, |_| count += 1);
            assert_eq!(count, 1, "cut at {cut}");
            assert_eq!(scan.end, first);
            assert_eq!(scan.error, Some(WalError::Truncated { offset: first }));
        }
    }

    #[test]
    fn bit_flips_yield_typed_errors() {
        let mut clean = Vec::new();
        WalRecord::Append {
            id: rid(5),
            time: 50.0,
            value: 0.25,
        }
        .encode_into(&mut clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                // Never panics; either decodes (flip restored a valid
                // frame — impossible for a single flip) or errors.
                let scan = replay(&bytes, 0, |_| {});
                assert!(scan.error.is_some(), "flip {byte}.{bit} went unnoticed");
                assert_eq!(scan.end, 0);
            }
        }
    }

    #[test]
    fn chunk_ends_on_record_boundaries() {
        let mut wal = Wal::new();
        let mut offsets = vec![0usize];
        for i in 0..10u64 {
            wal.log(&WalRecord::Append {
                id: rid(i),
                time: i as f64,
                value: 0.5,
            });
            offsets.push(wal.len());
        }
        let frame = offsets[1];
        // Any max: chunks start where asked and end on a boundary.
        for max in 1..wal.len() + 10 {
            let mut at = 0;
            while at < wal.len() {
                let c = wal.chunk(at, max);
                assert!(!c.is_empty(), "progress at {at} with max {max}");
                let end = at + c.len();
                assert!(offsets.contains(&end), "end {end} off-boundary");
                assert!(c.len() <= max.max(frame));
                at = end;
            }
        }
        assert!(wal.chunk(wal.len(), 1024).is_empty());
    }

    #[test]
    fn file_mirror_round_trips() {
        let dir = std::env::temp_dir().join(format!("nws-wal-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("grid.wal");
        let mut wal = Wal::with_file(&path).expect("creatable");
        for i in 0..20u64 {
            wal.log(&WalRecord::Append {
                id: rid(1),
                time: i as f64,
                value: 0.5,
            });
        }
        wal.sync().expect("flush");
        let disk = std::fs::read(&path).expect("readable");
        assert_eq!(disk, wal.bytes());
        assert_eq!(wal.io_error(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_store_keeps_newest_and_prunes() {
        let dir = std::env::temp_dir().join(format!("nws-snapstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(&dir, 2).expect("creatable");
        assert!(store.load_newest().expect("empty dir").is_none());
        for seq in 1..=5u64 {
            store.save(seq, &[seq as u8; 4]).expect("writable");
        }
        let (seq, bytes) = store.load_newest().expect("readable").expect("saved");
        assert_eq!(seq, 5);
        assert_eq!(bytes, vec![5u8; 4]);
        assert_eq!(store.sequences().expect("listable").len(), 2, "pruned");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_absolute_offsets_and_boundaries() {
        let mut wal = Wal::new();
        let mut offsets = vec![0usize];
        for i in 0..10u64 {
            wal.log(&WalRecord::Append {
                id: rid(i),
                time: i as f64,
                value: 0.5,
            });
            offsets.push(wal.len());
        }
        let total = wal.len();
        let all = wal.bytes().to_vec();
        // Rotate to a mid-record offset: snaps down to the boundary.
        let dropped = wal.rotate(offsets[4] + 3).expect("in-memory rotate");
        assert_eq!(dropped, offsets[4]);
        assert_eq!(wal.start_offset(), offsets[4]);
        assert_eq!(wal.len(), total, "absolute end never moves");
        assert_eq!(wal.bytes(), &all[offsets[4]..]);
        // Chunks at surviving offsets serve identical bytes.
        for &at in &offsets[4..10] {
            assert_eq!(wal.chunk(at, 1 << 20), &all[at..]);
        }
        // Rotated-away offsets serve nothing (the server layer turns
        // this into a typed error before asking).
        assert!(wal.chunk(0, 1 << 20).is_empty());
        // Rotating backwards is a no-op.
        assert_eq!(wal.rotate(0).expect("noop"), 0);
        assert_eq!(wal.start_offset(), offsets[4]);
        // Rotating past the end clamps to the end.
        let dropped = wal.rotate(total + 999).expect("clamp");
        assert_eq!(dropped, total - offsets[4]);
        assert_eq!(wal.start_offset(), total);
        assert!(wal.bytes().is_empty());
        assert_eq!(wal.len(), total);
    }

    #[test]
    fn rotation_rewrites_the_file_mirror_atomically() {
        let dir = std::env::temp_dir().join(format!("nws-wal-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("grid.wal");
        let mut wal = Wal::with_file(&path).expect("creatable");
        let mut boundary = 0;
        for i in 0..20u64 {
            wal.log(&WalRecord::Append {
                id: rid(1),
                time: i as f64,
                value: 0.5,
            });
            if i == 11 {
                boundary = wal.len();
            }
        }
        wal.rotate(boundary).expect("file rotate");
        wal.sync().expect("durable");
        let disk = std::fs::read(&path).expect("readable");
        assert_eq!(disk, wal.bytes(), "file holds exactly the suffix");
        // Appends after rotation land in the rewritten file.
        wal.log(&WalRecord::Drop { id: rid(9) });
        wal.sync().expect("durable");
        let disk = std::fs::read(&path).expect("readable");
        assert_eq!(disk, wal.bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotates_and_recovery_replays_the_suffix() {
        let dir = std::env::temp_dir().join(format!("nws-checkpoint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(&dir, 2).expect("creatable");
        let config = MemoryConfig { retain: 8 };
        // Golden: the same stream with no checkpoints.
        let mut golden = Memory::new(config);
        let mut live = Memory::new(config);
        live.attach_journal(Wal::new());
        let mut seq = 0;
        for i in 0..60 {
            golden.store(rid(i % 3), i as f64, 0.25);
            live.store(rid(i % 3), i as f64, 0.25);
            if i % 20 == 19 {
                seq += 1;
                let report = live.checkpoint(&store, seq).expect("checkpoint");
                assert_eq!(
                    report.covered,
                    live.journal().expect("attached").len() as u64
                );
                assert!(report.rotated > 0, "each checkpoint reclaims bytes");
            }
        }
        // More records after the last checkpoint: the replay suffix.
        for i in 60..70 {
            golden.store(rid(i % 3), i as f64, 0.25);
            live.store(rid(i % 3), i as f64, 0.25);
        }
        let wal = live.journal().expect("attached");
        assert!(
            wal.start_offset() > 0 && wal.bytes().len() < wal.len(),
            "growth is bounded: the journal retains a suffix only"
        );
        let (_, snap) = store.load_newest().expect("readable").expect("saved");
        let (recovered, report) =
            recover_memory_rotated(config, Some(&snap), wal.bytes(), wal.start_offset(), |_| {});
        assert!(matches!(report.source, RecoverySource::Snapshot { .. }));
        assert_eq!(report.tail_error, None);
        assert_eq!(recovered.fingerprint(), golden.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotated_wal_without_a_snapshot_refuses_to_recover() {
        let mut wal = Wal::new();
        for i in 0..6u64 {
            wal.log(&WalRecord::Append {
                id: rid(1),
                time: i as f64,
                value: 0.5,
            });
        }
        let cut = wal.len() / 2;
        wal.rotate(cut).expect("rotate");
        let (m, report) = recover_memory_rotated(
            MemoryConfig { retain: 8 },
            None,
            wal.bytes(),
            wal.start_offset(),
            |_| {},
        );
        assert_eq!(report.replayed, 0, "no fabricated mid-history state");
        assert_eq!(
            report.snapshot_error,
            Some(WalError::Snapshot("rotated wal requires a snapshot"))
        );
        assert_eq!(
            m.fingerprint(),
            Memory::new(MemoryConfig { retain: 8 }).fingerprint()
        );
    }

    #[test]
    fn recover_rejects_snapshot_ahead_of_wal() {
        let mut m = Memory::new(MemoryConfig { retain: 8 });
        m.attach_journal(Wal::new());
        for i in 0..10 {
            m.store(rid(1), i as f64, 0.5);
        }
        let snap = m.snapshot_bytes();
        // Offer the snapshot with a WAL shorter than it claims to cover.
        let wal = &m.journal().expect("attached").bytes()[..10];
        let (_, report) = recover_memory(MemoryConfig { retain: 8 }, Some(&snap), wal, |_| {});
        assert_eq!(report.source, RecoverySource::Genesis);
        assert_eq!(
            report.snapshot_error,
            Some(WalError::Snapshot("snapshot is ahead of the wal"))
        );
    }
}
