//! A miniature Network Weather Service.
//!
//! The paper's CPU sensor is one component of the NWS, "a distributed,
//! on-line performance forecasting system" (Section 1). The full system —
//! described in the companion NWS papers the text cites (\[29\], \[30\],
//! \[31\]) — has four parts:
//!
//! 1. **sensors** that produce timestamped measurements,
//! 2. a **name service / registry** where monitored resources are
//!    published and discovered,
//! 3. **persistent-state memories** that store bounded measurement
//!    histories, and
//! 4. **forecasters** that turn a stored history into a prediction on
//!    demand.
//!
//! This crate reproduces that architecture in-process over simulated
//! hosts:
//!
//! - [`registry`] — resource naming and discovery;
//! - [`memory`] — bounded ring-buffer series storage with the NWS
//!   `extract`-style query API;
//! - [`service`] — the forecaster service: per-series [`NwsForecaster`]
//!   instances (with prediction intervals) updated as measurements arrive;
//! - [`monitor`] — `GridMonitor`, which drives a fleet of simulated hosts
//!   in lockstep on the 10-second NWS cadence, publishing every sensor's
//!   measurements into the memory and keeping the forecasts warm — the
//!   "computational grid weather map" a scheduler like
//!   [`nws_sched`](https://docs.rs/nws-sched) consumes.
//!
//! [`NwsForecaster`]: nws_forecast::NwsForecaster

pub mod fleet;
pub mod memory;
pub mod monitor;
pub mod registry;
pub mod service;
pub mod wal;
pub mod weather;

pub use fleet::{FleetConfig, FleetMonitor, FleetPanel, FleetRoster};
pub use memory::{Memory, MemoryConfig, StoreOutcome};
pub use monitor::{GridMonitor, GridMonitorConfig, GridSnapshot, HostReport};
pub use registry::{Metric, Registry, ResourceId, ResourceInfo};
pub use service::{ForecastAnswer, ForecastService};
pub use wal::{
    recover_memory, recover_memory_rotated, CheckpointReport, RecoveryReport, RecoverySource,
    Replay, SnapshotStore, Wal, WalError, WalRecord,
};
pub use weather::{WeatherService, WeatherServiceConfig};
