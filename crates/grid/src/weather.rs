//! The complete weather service: CPU *and* network monitoring together.
//!
//! This is the full NWS of the paper's introduction — "computational grids
//! from which compute cycles can be obtained in the way electrical power is
//! obtained from an electrical power utility" — in one object: host CPU
//! availability (via [`GridMonitor`]) and inter-site network performance
//! (via [`nws_net::LinkMonitor`]) measured on their own cadences, published
//! into one registry/memory, and forecast per series.

use crate::memory::{Memory, MemoryConfig};
use crate::monitor::{GridMonitor, GridMonitorConfig};
use crate::registry::{Metric, Registry, ResourceId};
use crate::service::{ForecastAnswer, ForecastService};
use nws_faults::FaultPlan;
use nws_net::{LinkConfig, LinkMonitor, LinkMonitorConfig, LinkSample};
use nws_runtime::{Cadence, Engine, EngineConfig, Stage};
use nws_sim::HostProfile;

/// Configuration for the combined service.
#[derive(Debug, Clone, Copy)]
pub struct WeatherServiceConfig {
    /// CPU-side configuration.
    pub grid: GridMonitorConfig,
    /// Network-side configuration.
    pub links: LinkMonitorConfig,
    /// Memory retention for the network series.
    pub net_memory: MemoryConfig,
}

impl Default for WeatherServiceConfig {
    fn default() -> Self {
        Self {
            grid: GridMonitorConfig::default(),
            links: LinkMonitorConfig::default(),
            net_memory: MemoryConfig { retain: 4096 },
        }
    }
}

/// CPU + network weather under one roof.
pub struct WeatherService {
    cpu: GridMonitor,
    /// The network half as its own engine: the whole [`LinkMonitor`] is
    /// one shard (its probe-drop RNG spans links), one slot = one probe
    /// cycle on the link cadence.
    net: Engine<LinkMonitor>,
    net_registry: Registry,
    net_memory: Memory,
    net_forecasts: ForecastService,
    /// `(bandwidth id, latency id, link name, capacity)` per link.
    link_ids: Vec<(ResourceId, ResourceId, String, f64)>,
    config: WeatherServiceConfig,
}

/// The commit side of the network engine: publishes each cycle's samples
/// (or explicit gaps) into the shared memory and forecast service.
struct NetStage<'a> {
    memory: &'a mut Memory,
    forecasts: &'a mut ForecastService,
    link_ids: &'a [(ResourceId, ResourceId, String, f64)],
    probe_period: f64,
}

impl Stage<LinkMonitor> for NetStage<'_> {
    fn commit(
        &mut self,
        _shard: usize,
        _source: &mut LinkMonitor,
        slot: u64,
        event: &Vec<Option<LinkSample>>,
    ) {
        // The cycle completes at the *end* of its probe period.
        let now = (slot + 1) as f64 * self.probe_period;
        for ((bw_id, lat_id, _, capacity), sample) in self.link_ids.iter().zip(event) {
            match sample {
                Some(s) => {
                    self.memory.store(*bw_id, s.time, s.bandwidth);
                    // Forecast the capacity-normalized series.
                    self.forecasts
                        .observe(*bw_id, s.time, s.bandwidth / capacity);
                    self.memory.store(*lat_id, s.time, s.latency);
                    self.forecasts.observe(*lat_id, s.time, s.latency);
                }
                None => {
                    // A dropped probe cycle is an explicit gap on both
                    // series at the cycle's nominal completion time.
                    for id in [bw_id, lat_id] {
                        self.memory.record_gap(*id, now);
                        self.forecasts.note_gap(*id, now);
                    }
                }
            }
        }
    }
}

impl WeatherService {
    /// Builds the service over host profiles and named links.
    pub fn new(
        profiles: &[HostProfile],
        links: Vec<(String, LinkConfig)>,
        base_seed: u64,
        config: WeatherServiceConfig,
    ) -> Self {
        Self::with_faults(profiles, links, base_seed, config, FaultPlan::none())
    }

    /// Builds the service with fault injection on both halves: the CPU
    /// monitor runs under the plan directly, and network probe cycles
    /// are dropped at the plan's sensor-dropout rate.
    /// [`FaultPlan::none()`] reproduces the fault-free service bit for
    /// bit.
    pub fn with_faults(
        profiles: &[HostProfile],
        links: Vec<(String, LinkConfig)>,
        base_seed: u64,
        config: WeatherServiceConfig,
        plan: FaultPlan,
    ) -> Self {
        let mut net_registry = Registry::new();
        let link_ids = links
            .iter()
            .map(|(name, cfg)| {
                (
                    net_registry.register(name.clone(), Metric::NetworkBandwidth),
                    net_registry.register(name.clone(), Metric::NetworkLatency),
                    name.clone(),
                    cfg.capacity,
                )
            })
            .collect();
        let mut net = LinkMonitor::new(links, base_seed ^ 0x4E45_54FE, config.links);
        if !plan.is_none() {
            net.inject_faults(base_seed ^ 0x4E45_54FA, plan.rates().sensor_dropout);
        }
        // The network engine ticks on the link probe cadence: one slot =
        // one probe cycle.
        let net_cadence = Cadence {
            measurement_period: config.links.probe_period,
            probe_period: config.links.probe_period,
            ..Cadence::PAPER
        };
        Self {
            cpu: GridMonitor::with_faults(profiles, base_seed, config.grid, plan),
            net: Engine::new(
                vec![net],
                EngineConfig {
                    cadence: net_cadence,
                    batch_slots: config.grid.batch_slots,
                },
            ),
            net_registry,
            net_memory: Memory::new(config.net_memory),
            net_forecasts: ForecastService::new(config.grid.interval_coverage),
            link_ids,
            config,
        }
    }

    /// The six-UCSD-host grid plus the demo link set.
    pub fn ucsd(base_seed: u64) -> Self {
        Self::new(
            &HostProfile::all(),
            vec![
                ("ucsd->utk".to_string(), LinkConfig::wan_10mbit()),
                ("ucsd->uva".to_string(), LinkConfig::wan_10mbit()),
                ("ucsd-lan".to_string(), LinkConfig::lan_100mbit()),
            ],
            base_seed,
            WeatherServiceConfig::default(),
        )
    }

    /// The CPU half.
    pub fn cpu(&self) -> &GridMonitor {
        &self.cpu
    }

    /// The network registry (link series).
    pub fn net_registry(&self) -> &Registry {
        &self.net_registry
    }

    /// The network measurement memory.
    pub fn net_memory(&self) -> &Memory {
        &self.net_memory
    }

    /// Network forecasts (normalized to link capacity for bandwidth).
    pub fn net_forecasts(&self) -> &ForecastService {
        &self.net_forecasts
    }

    /// Advances both halves by `seconds` of simulated time: the CPU side on
    /// its 10-second measurement cadence, the network side on its probe
    /// cadence, both driven through the event engine and published into
    /// the memories and forecasters.
    pub fn advance(&mut self, seconds: f64) {
        let cpu_steps = (seconds / self.config.grid.cadence.measurement_period).round() as u64;
        self.cpu.run_steps(cpu_steps);
        let net_probes = (seconds / self.config.links.probe_period).round() as u64;
        let mut stage = NetStage {
            memory: &mut self.net_memory,
            forecasts: &mut self.net_forecasts,
            link_ids: &self.link_ids,
            probe_period: self.config.links.probe_period,
        };
        self.net.run(net_probes, &mut stage);
    }

    /// Change counter over both halves of the weather service: CPU
    /// measurements, network probe cycles, and recorded gaps all bump
    /// it. The serving layer invalidates cached answers when this
    /// moves, so repeated queries between sensor ticks are cache hits.
    pub fn revision(&self) -> u64 {
        self.cpu
            .revision()
            .wrapping_add(self.net_memory.global_revision())
            .wrapping_add(self.net_forecasts.global_revision())
    }

    /// The standing bandwidth forecast for a link, in bytes/second.
    pub fn bandwidth_forecast(&self, link: &str) -> Option<ForecastAnswer> {
        let (bw_id, _, _, capacity) = self.link_ids.iter().find(|(_, _, name, _)| name == link)?;
        let mut answer = self.net_forecasts.forecast(*bw_id)?;
        answer.forecast.value *= capacity;
        if let Some(iv) = &mut answer.interval {
            iv.forecast *= capacity;
            iv.lo *= capacity;
            iv.hi *= capacity;
        }
        Some(answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_halves_advance_together() {
        let mut ws = WeatherService::ucsd(3);
        ws.advance(1200.0); // 20 minutes: 120 CPU slots, 10 net probes
        assert_eq!(ws.cpu().slots(), 120);
        let id = ws
            .net_registry()
            .lookup("ucsd->utk", Metric::NetworkBandwidth)
            .expect("registered");
        assert_eq!(ws.net_memory().len(id), 10);
        let fc = ws.bandwidth_forecast("ucsd->utk").expect("warm");
        assert!(
            fc.forecast.value > 1e4,
            "bw forecast = {}",
            fc.forecast.value
        );
        assert!(fc.forecast.value <= 1.25e6 * 1.01);
    }

    #[test]
    fn latency_series_also_published() {
        let mut ws = WeatherService::ucsd(5);
        ws.advance(600.0);
        let id = ws
            .net_registry()
            .lookup("ucsd-lan", Metric::NetworkLatency)
            .expect("registered");
        let latest = ws.net_memory().latest(id).expect("stored");
        assert!(latest.value > 0.0 && latest.value < 1.0);
    }

    #[test]
    fn revision_advances_with_both_halves() {
        let mut ws = WeatherService::ucsd(9);
        let r0 = ws.revision();
        ws.advance(120.0); // 12 CPU slots, 1 net probe cycle
        let r1 = ws.revision();
        assert_ne!(r0, r1, "measurements must invalidate cached answers");
        // No time passed: no change, a cache may keep serving.
        assert_eq!(ws.revision(), r1);
    }

    #[test]
    fn unknown_link_has_no_forecast() {
        let ws = WeatherService::ucsd(7);
        assert!(ws.bandwidth_forecast("nonesuch").is_none());
    }

    #[test]
    fn none_plan_matches_fault_free_service_bit_for_bit() {
        let run = |faulted: bool| {
            let mut ws = if faulted {
                WeatherService::with_faults(
                    &HostProfile::all(),
                    vec![("ucsd->utk".to_string(), LinkConfig::wan_10mbit())],
                    3,
                    WeatherServiceConfig::default(),
                    nws_faults::FaultPlan::none(),
                )
            } else {
                WeatherService::new(
                    &HostProfile::all(),
                    vec![("ucsd->utk".to_string(), LinkConfig::wan_10mbit())],
                    3,
                    WeatherServiceConfig::default(),
                )
            };
            ws.advance(600.0);
            let fc = ws.bandwidth_forecast("ucsd->utk").map(|a| a.forecast.value);
            let snap = ws.cpu().snapshot();
            (
                fc,
                snap.hosts
                    .iter()
                    .map(|h| h.latest_hybrid)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn faulted_service_records_net_gaps_and_survives() {
        let mut ws = WeatherService::with_faults(
            &HostProfile::all(),
            vec![("ucsd->utk".to_string(), LinkConfig::wan_10mbit())],
            11,
            WeatherServiceConfig::default(),
            nws_faults::FaultPlan::seeded(6, nws_faults::FaultRates::uniform(0.25)),
        );
        ws.advance(7200.0); // two hours: 60 net cycles, 720 CPU slots
        let bw_id = ws
            .net_registry()
            .lookup("ucsd->utk", Metric::NetworkBandwidth)
            .expect("registered");
        assert!(
            ws.net_memory().gap_count(bw_id) > 0,
            "25% probe drops over 60 cycles"
        );
        assert!(ws.net_memory().len(bw_id) > 0, "some cycles survive");
        assert!(ws.bandwidth_forecast("ucsd->utk").is_some());
        assert!(ws.cpu().fault_stats().gaps > 0);
    }
}
