//! Open-loop and closed-loop drivers over any [`Transport`].
//!
//! The open-loop runner is the point of the crate: each request is
//! charged from its **virtual arrival time** on the precomputed
//! schedule, not from the moment a worker got around to sending it.
//! If the server (or the worker pool) falls behind, the backlog shows
//! up as latency — coordinated omission cannot hide it. The
//! closed-loop runner measures the old way (send, wait, repeat) for
//! comparison: the gap between the two curves *is* the omitted delay.

use crate::arrivals::{ArrivalSchedule, InterArrival};
use crate::histogram::LatencyHistogram;
use nws_server::Transport;
use nws_wire::{Request, Response};
use std::time::{Duration, Instant};

/// What one load run measured.
#[derive(Debug)]
pub struct LoadOutcome {
    /// Requests completed (responses decoded, of any variant).
    pub completed: u64,
    /// Typed error responses plus transport failures.
    pub errors: u64,
    /// Wall clock from start to the last completion.
    pub elapsed: Duration,
    /// Latency distribution (open loop: from virtual arrival;
    /// closed loop: from send).
    pub hist: LatencyHistogram,
}

impl LoadOutcome {
    /// Completed requests per wall-clock second.
    pub fn achieved_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }
}

/// Runs the schedule open-loop across `transports` (one worker per
/// transport, arrivals dealt round-robin). `requests` must be at least
/// as long as the schedule; request `i` fires at schedule offset `i`.
///
/// Latency for request `i` is `completion − (start + offset_i)`: the
/// time a client that *asked at the scheduled moment* would have
/// waited, including any time the request spent queued behind a slow
/// worker or server.
pub fn open_loop<T: Transport + Send>(
    transports: Vec<T>,
    schedule: &ArrivalSchedule,
    requests: &[Request],
) -> LoadOutcome {
    assert!(!transports.is_empty(), "need at least one worker");
    assert!(
        requests.len() >= schedule.len(),
        "fewer requests than arrivals"
    );
    let workers = transports.len();
    let start = Instant::now();
    let results: Vec<(LatencyHistogram, u64, u64, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = transports
            .into_iter()
            .enumerate()
            .map(|(w, mut t)| {
                scope.spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let mut completed = 0u64;
                    let mut errors = 0u64;
                    let mut last_done = Duration::ZERO;
                    for i in (w..schedule.len()).step_by(workers) {
                        let due = Duration::from_secs_f64(schedule.offsets()[i]);
                        let now = start.elapsed();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        match t.call(&requests[i]) {
                            Ok(resp) => {
                                completed += 1;
                                if matches!(resp, Response::Error(_)) {
                                    errors += 1;
                                }
                            }
                            Err(_) => {
                                // The connection is broken; this worker
                                // can contribute nothing further.
                                errors += 1;
                                break;
                            }
                        }
                        last_done = start.elapsed();
                        hist.record(last_done.saturating_sub(due));
                    }
                    (hist, completed, errors, last_done)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    let mut hist = LatencyHistogram::new();
    let mut completed = 0;
    let mut errors = 0;
    let mut elapsed = Duration::ZERO;
    for (h, c, e, last) in results {
        hist.merge(&h);
        completed += c;
        errors += e;
        elapsed = elapsed.max(last);
    }
    LoadOutcome {
        completed,
        errors,
        elapsed,
        hist,
    }
}

/// Runs `requests` closed-loop: worker `w` of `W` issues requests
/// `w, w+W, w+2W, …` back-to-back, measuring each from its own send.
/// This is the self-throttling baseline the open-loop runner exists to
/// correct.
pub fn closed_loop<T: Transport + Send>(transports: Vec<T>, requests: &[Request]) -> LoadOutcome {
    assert!(!transports.is_empty(), "need at least one worker");
    let workers = transports.len();
    let start = Instant::now();
    let results: Vec<(LatencyHistogram, u64, u64, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = transports
            .into_iter()
            .enumerate()
            .map(|(w, mut t)| {
                scope.spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let mut completed = 0u64;
                    let mut errors = 0u64;
                    let mut last_done = Duration::ZERO;
                    for req in requests.iter().skip(w).step_by(workers) {
                        let sent = Instant::now();
                        match t.call(req) {
                            Ok(resp) => {
                                completed += 1;
                                if matches!(resp, Response::Error(_)) {
                                    errors += 1;
                                }
                            }
                            Err(_) => {
                                errors += 1;
                                break;
                            }
                        }
                        hist.record(sent.elapsed());
                        last_done = start.elapsed();
                    }
                    (hist, completed, errors, last_done)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    let mut hist = LatencyHistogram::new();
    let mut completed = 0;
    let mut errors = 0;
    let mut elapsed = Duration::ZERO;
    for (h, c, e, last) in results {
        hist.merge(&h);
        completed += c;
        errors += e;
        elapsed = elapsed.max(last);
    }
    LoadOutcome {
        completed,
        errors,
        elapsed,
        hist,
    }
}

/// Tunables for [`max_sustainable_rps`].
#[derive(Debug, Clone, Copy)]
pub struct RateSearch {
    /// Lowest candidate rate, requests per second.
    pub lo_rps: f64,
    /// Highest candidate rate, requests per second.
    pub hi_rps: f64,
    /// Bisection steps (each one full probe run).
    pub iterations: u32,
    /// Requests per probe run.
    pub requests: usize,
    /// A rate is unsustainable once open-loop p99 exceeds this.
    pub p99_cap: Duration,
    /// …or once achieved throughput drops below this fraction of
    /// offered (the server is shedding or lagging the schedule).
    pub min_goodput: f64,
}

/// One probed rate during the search.
#[derive(Debug, Clone, Copy)]
pub struct RateProbe {
    /// Offered rate, requests per second.
    pub offered_rps: f64,
    /// Achieved rate, requests per second.
    pub achieved_rps: f64,
    /// Open-loop p99 at this rate, nanoseconds.
    pub p99_ns: u64,
    /// Whether the rate met both sustainability conditions.
    pub sustainable: bool,
}

/// Geometric bisection for the highest offered rate the server
/// sustains: open-loop probes with Poisson arrivals, fresh transports
/// per probe from `connect`, requests from `make_requests` (called
/// with the probe size). Returns the best sustainable rate found
/// (0 if even `lo_rps` fails) and every probe for the record.
pub fn max_sustainable_rps<T: Transport + Send>(
    mut connect: impl FnMut(usize) -> T,
    workers: usize,
    seed: u64,
    mut make_requests: impl FnMut(usize) -> Vec<Request>,
    search: RateSearch,
) -> (f64, Vec<RateProbe>) {
    assert!(search.lo_rps > 0.0 && search.hi_rps > search.lo_rps);
    let mut lo = search.lo_rps;
    let mut hi = search.hi_rps;
    let mut best = 0.0f64;
    let mut probes = Vec::new();
    for iter in 0..search.iterations {
        // Geometric midpoint: the candidate range spans decades.
        let mid = (lo * hi).sqrt();
        let schedule = ArrivalSchedule::generate(
            InterArrival::poisson(mid),
            seed ^ u64::from(iter),
            search.requests,
        );
        let requests = make_requests(search.requests);
        let transports: Vec<T> = (0..workers).map(&mut connect).collect();
        let outcome = open_loop(transports, &schedule, &requests);
        let p99 = outcome.hist.p99();
        let sustainable = outcome.errors == 0
            && outcome.achieved_rps() >= search.min_goodput * mid
            && Duration::from_nanos(p99) <= search.p99_cap;
        probes.push(RateProbe {
            offered_rps: mid,
            achieved_rps: outcome.achieved_rps(),
            p99_ns: p99,
            sustainable,
        });
        if sustainable {
            best = best.max(mid);
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (best, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::{MixRatios, RequestStream};
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_server::{GridState, InMemoryTransport};
    use nws_sim::HostProfile;
    use std::sync::{Arc, Mutex};

    fn warm_state() -> Arc<Mutex<GridState>> {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Thing2],
            13,
            GridMonitorConfig::default(),
        );
        grid.run_steps(40);
        Arc::new(Mutex::new(GridState::new(grid)))
    }

    fn mixed_requests(n: usize) -> Vec<Request> {
        let hosts = vec!["thing1".to_string(), "thing2".to_string()];
        RequestStream::new(17, &hosts, MixRatios::default(), 8, 3).take(n)
    }

    #[test]
    fn open_loop_completes_every_arrival() {
        let state = warm_state();
        let schedule = ArrivalSchedule::generate(InterArrival::poisson(2000.0), 1, 200);
        let transports: Vec<_> = (0..4)
            .map(|_| InMemoryTransport::new(Arc::clone(&state)))
            .collect();
        let out = open_loop(transports, &schedule, &mixed_requests(200));
        assert_eq!(out.completed, 200);
        assert_eq!(out.errors, 0);
        assert_eq!(out.hist.count(), 200);
        assert!(out.achieved_rps() > 0.0);
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let state = warm_state();
        let transports: Vec<_> = (0..4)
            .map(|_| InMemoryTransport::new(Arc::clone(&state)))
            .collect();
        let out = closed_loop(transports, &mixed_requests(400));
        assert_eq!(out.completed, 400);
        assert_eq!(out.errors, 0);
    }

    #[test]
    fn open_loop_charges_queueing_delay_to_latency() {
        // One worker, arrivals every 1 ms, but each call holds the state
        // lock ~0 — instead make the schedule impossibly fast so the
        // worker lags it: latency must dwarf per-call service time.
        let state = warm_state();
        let n = 500;
        let schedule = ArrivalSchedule::generate(InterArrival::poisson(1e9), 2, n);
        let transports = vec![InMemoryTransport::new(Arc::clone(&state))];
        let out = open_loop(transports, &schedule, &mixed_requests(n));
        assert_eq!(out.completed, n as u64);
        // The last arrival was due ~instantly; serving n requests takes
        // real time, so high percentiles carry the backlog.
        assert!(
            out.hist.p999() >= out.hist.p50(),
            "p999 {} < p50 {}",
            out.hist.p999(),
            out.hist.p50()
        );
        assert!(out.hist.max_ns() as f64 >= out.elapsed.as_nanos() as f64 * 0.5);
    }

    #[test]
    fn rate_search_finds_a_sustainable_rate_in_memory() {
        let state = warm_state();
        let (best, probes) = max_sustainable_rps(
            |_| InMemoryTransport::new(Arc::clone(&state)),
            2,
            23,
            mixed_requests,
            RateSearch {
                lo_rps: 50.0,
                hi_rps: 50_000.0,
                iterations: 3,
                requests: 150,
                p99_cap: Duration::from_millis(250),
                min_goodput: 0.5,
            },
        );
        assert_eq!(probes.len(), 3);
        // In-memory dispatch easily clears tiny rates, so the search
        // must land on something positive.
        assert!(best > 0.0, "probes: {probes:?}");
    }
}
