//! Workload generator and latency harness for the serving tier.
//!
//! The serving experiments before this crate measured latency with a
//! single closed-loop client: send, wait, measure, repeat. A closed
//! loop is self-throttling — when the server stalls, the client stops
//! sending, so the stall charges only one request with extra latency
//! and the histogram stays rosy. That is *coordinated omission*. Real
//! grid clients do not coordinate with the server: queries arrive on
//! their own clock, bursty and heavy-tailed like the CPU availability
//! signal the paper forecasts.
//!
//! This crate measures the server the way traffic actually hits it:
//!
//! - [`arrivals`] precomputes a virtual arrival timeline from a seeded
//!   inter-arrival distribution (exponential, or Pareto for the
//!   self-similar story) *before* any request is sent. The open-loop
//!   runner charges each request from its virtual arrival time, so
//!   queueing delay the server causes is measured, not hidden.
//! - [`mix`] draws a deterministic stream of typed queries in
//!   configurable ratios over the full vocabulary.
//! - [`histogram`] is a dependency-free log-bucketed latency histogram
//!   with bounded relative error, mergeable across workers.
//! - [`runner`] drives any [`nws_server::Transport`] open-loop or
//!   closed-loop and binary-searches the max sustainable request rate.
//! - [`soak`] runs the open-loop schedule with latencies bucketed into
//!   fixed time windows keyed by virtual arrival — a p50/p99 series
//!   over time that exposes trends a whole-run histogram averages away.
//! - [`churn`] sweeps the *connection-arrival* rate: connections come
//!   and go open-loop on their own schedule, each issuing a short
//!   burst, so the accept path is measured per connection the way the
//!   request path is measured per request.
//! - [`personas`] are adversarial clients — partial frames, oversize
//!   length claims, byte-trickling slow writers — that must trip the
//!   server's deadline and cap handling without hurting healthy peers.

pub mod arrivals;
pub mod churn;
pub mod histogram;
pub mod mix;
pub mod personas;
pub mod runner;
pub mod soak;

pub use arrivals::{ArrivalSchedule, InterArrival};
pub use churn::{churn, ChurnConnect, ChurnOutcome};
pub use histogram::LatencyHistogram;
pub use mix::{MixRatios, QueryKind, RequestStream};
pub use personas::PersonaReport;
pub use runner::{closed_loop, max_sustainable_rps, open_loop, LoadOutcome, RateProbe, RateSearch};
pub use soak::{soak, SoakOutcome, SoakWindow};

/// FNV-1a over a byte slice: the repo's standard order-sensitive
/// fingerprint for determinism checks in committed artifacts.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
