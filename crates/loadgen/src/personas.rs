//! Adversarial client personas.
//!
//! Each persona speaks just enough of the wire protocol to probe one
//! defensive path in the server: the per-read timeout, the
//! pre-allocation frame bound, and the whole-frame request deadline.
//! A persona *trips* when the server does the right thing — answers
//! with a typed error where the protocol allows one, then hangs up —
//! within the caller's patience. A persona that does **not** trip
//! means the server tolerated the abuse (and is one slow peer away
//! from wedging a handler thread).

use nws_wire::{read_response, ErrorCode, Response, HEADER_LEN, MAGIC, MAX_FRAME, VERSION};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// What one persona observed.
#[derive(Debug, Clone)]
pub struct PersonaReport {
    /// Persona name, for labels.
    pub name: &'static str,
    /// Whether the server's defense fired within patience.
    pub tripped: bool,
    /// Wall clock from connect to verdict.
    pub elapsed: Duration,
    /// Human-readable account of what happened.
    pub detail: String,
}

/// Builds a request-frame header claiming a `len`-byte payload.
fn header(len: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..2].copy_from_slice(&MAGIC.to_be_bytes());
    h[2] = VERSION;
    h[3] = 0; // request kind
    h[4..].copy_from_slice(&len.to_le_bytes());
    h
}

/// Whether a read result means "the server hung up on us".
fn is_hangup(res: &std::io::Result<usize>) -> bool {
    match res {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => matches!(
            e.kind(),
            ErrorKind::ConnectionReset | ErrorKind::BrokenPipe | ErrorKind::UnexpectedEof
        ),
    }
}

/// Sends a valid header claiming a 64-byte payload, delivers only a
/// fragment, then goes silent. The server's per-read timeout must cut
/// the connection rather than wait forever for the rest.
pub fn partial_frame(addr: SocketAddr, patience: Duration) -> std::io::Result<PersonaReport> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(patience))?;
    stream.write_all(&header(64))?;
    stream.write_all(&[0u8; 10])?; // 10 of the promised 64 bytes
    let mut buf = [0u8; 64];
    let res = stream.read(&mut buf);
    let tripped = is_hangup(&res);
    Ok(PersonaReport {
        name: "partial_frame",
        tripped,
        elapsed: started.elapsed(),
        detail: format!("read after stall: {res:?}"),
    })
}

/// Claims a payload one byte over [`MAX_FRAME`]. The server must
/// refuse before allocating — a typed `BadRequest` frame, then close.
pub fn oversize_claim(addr: SocketAddr, patience: Duration) -> std::io::Result<PersonaReport> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(patience))?;
    stream.write_all(&header(MAX_FRAME as u32 + 1))?;
    let mut reader = std::io::BufReader::new(stream);
    let (tripped, detail) = match read_response(&mut reader) {
        Ok((Response::Error(e), _)) if e.code == ErrorCode::BadRequest => {
            // The error frame must be followed by a close, not more
            // service on a stream the server can no longer trust.
            let mut one = [0u8; 1];
            let after = reader.read(&mut one);
            (is_hangup(&after), format!("typed refusal, then {after:?}"))
        }
        Ok((other, _)) => (false, format!("unexpected reply: {other:?}")),
        Err(e) => (false, format!("no typed refusal: {e}")),
    };
    Ok(PersonaReport {
        name: "oversize_claim",
        tripped,
        elapsed: started.elapsed(),
        detail,
    })
}

/// Writes a perfectly valid frame one byte every `gap`, slower in
/// total than the server's whole-request deadline. Per-read timeouts
/// alone never fire (every byte lands in time); only a wall-clock
/// budget on the whole frame can end this connection.
pub fn slow_writer(
    addr: SocketAddr,
    frame: &[u8],
    gap: Duration,
    patience: Duration,
) -> std::io::Result<PersonaReport> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(patience))?;
    let mut cut_mid_write = false;
    for &b in frame {
        std::thread::sleep(gap);
        if let Err(e) = stream.write_all(&[b]) {
            // The server already hung up; writes now bounce.
            cut_mid_write = matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe);
            if !cut_mid_write {
                return Err(e);
            }
            break;
        }
    }
    let (tripped, detail) = if cut_mid_write {
        (true, "write bounced off a closed socket".to_string())
    } else {
        // All bytes were accepted (kernel buffers can absorb a trickle
        // past the close); the proof is in the read: a served frame
        // means the server tolerated the trickle, a hangup means the
        // deadline fired.
        let mut buf = [0u8; 1];
        let res = stream.read(&mut buf);
        (is_hangup(&res), format!("read after trickle: {res:?}"))
    };
    Ok(PersonaReport {
        name: "slow_writer",
        tripped,
        elapsed: started.elapsed(),
        detail,
    })
}
