//! Deterministic mixed-query streams.
//!
//! A load run should look like real traffic, not a loop of one query:
//! cheap cached forecasts, whole-grid snapshots, best-host picks,
//! history tails, and batches all hit different code paths and
//! different lock hold times. [`RequestStream`] draws from that
//! vocabulary in configurable integer ratios, seeded, so the exact
//! same request sequence can be replayed on any transport or thread
//! count and fingerprinted into committed artifacts.

use crate::fnv1a;
use nws_stats::Rng;
use nws_wire::Request;

/// The query vocabulary a stream draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// One-host forecast (the hot, cacheable path).
    Forecast,
    /// Whole-grid snapshot.
    Snapshot,
    /// Best-host selection.
    BestHost,
    /// Recent measurement history for one host.
    SeriesTail,
    /// A batch of forecasts in one frame.
    Batch,
}

impl QueryKind {
    /// All kinds, in ratio order.
    pub const ALL: [QueryKind; 5] = [
        QueryKind::Forecast,
        QueryKind::Snapshot,
        QueryKind::BestHost,
        QueryKind::SeriesTail,
        QueryKind::Batch,
    ];

    /// Short name for CSV rows and labels.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Forecast => "forecast",
            QueryKind::Snapshot => "snapshot",
            QueryKind::BestHost => "best_host",
            QueryKind::SeriesTail => "series_tail",
            QueryKind::Batch => "batch",
        }
    }
}

/// Integer weights for each query kind. A weight of zero removes the
/// kind from the mix entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixRatios {
    /// Weight of [`QueryKind::Forecast`].
    pub forecast: u32,
    /// Weight of [`QueryKind::Snapshot`].
    pub snapshot: u32,
    /// Weight of [`QueryKind::BestHost`].
    pub best_host: u32,
    /// Weight of [`QueryKind::SeriesTail`].
    pub series_tail: u32,
    /// Weight of [`QueryKind::Batch`].
    pub batch: u32,
}

impl Default for MixRatios {
    /// Forecast-heavy, like a scheduler polling the grid: 60% point
    /// forecasts, 10% snapshots, 10% best-host, 15% tails, 5% batches.
    fn default() -> Self {
        Self {
            forecast: 60,
            snapshot: 10,
            best_host: 10,
            series_tail: 15,
            batch: 5,
        }
    }
}

impl MixRatios {
    fn weights(&self) -> [u32; 5] {
        [
            self.forecast,
            self.snapshot,
            self.best_host,
            self.series_tail,
            self.batch,
        ]
    }

    /// Total weight across all kinds.
    pub fn total(&self) -> u32 {
        self.weights().iter().sum()
    }
}

/// A seeded generator of typed requests in the configured ratios.
pub struct RequestStream {
    rng: Rng,
    hosts: Vec<String>,
    ratios: MixRatios,
    /// Points asked of each `SeriesTail`.
    tail_n: u32,
    /// Forecasts per `Batch` request.
    batch_size: usize,
    counts: [u64; 5],
    /// Running FNV-1a over (kind tag, host index) draws, so a stream's
    /// identity can be asserted without storing every request.
    fingerprint: u64,
    drawn: u64,
}

impl RequestStream {
    /// Builds a stream over `hosts` (forecast/tail targets rotate
    /// through them by seeded draw). Panics if `hosts` is empty or
    /// every ratio is zero.
    pub fn new(
        seed: u64,
        hosts: &[String],
        ratios: MixRatios,
        tail_n: u32,
        batch_size: usize,
    ) -> Self {
        assert!(!hosts.is_empty(), "a mix needs at least one host");
        assert!(ratios.total() > 0, "all mix ratios are zero");
        assert!(batch_size > 0, "batch_size must be positive");
        Self {
            rng: Rng::new(seed).fork("loadgen.mix"),
            hosts: hosts.to_vec(),
            ratios,
            tail_n,
            batch_size,
            counts: [0; 5],
            fingerprint: fnv1a(&[]),
            drawn: 0,
        }
    }

    fn pick_kind(&mut self) -> QueryKind {
        let weights = self.ratios.weights();
        let mut roll = self.rng.below(u64::from(self.ratios.total()));
        for (kind, &w) in QueryKind::ALL.iter().zip(&weights) {
            if roll < u64::from(w) {
                return *kind;
            }
            roll -= u64::from(w);
        }
        unreachable!("roll below total weight always lands in a band")
    }

    fn pick_host(&mut self) -> usize {
        self.rng.below(self.hosts.len() as u64) as usize
    }

    fn note(&mut self, kind: QueryKind, host_idx: usize) {
        let mut bytes = [0u8; 9];
        bytes[0] = kind as u8;
        bytes[1..].copy_from_slice(&(host_idx as u64).to_le_bytes());
        // Chain the running fingerprint with this draw.
        let mut chained = self.fingerprint.to_le_bytes().to_vec();
        chained.extend_from_slice(&bytes);
        self.fingerprint = fnv1a(&chained);
    }

    /// Draws the next request in the stream.
    pub fn next_request(&mut self) -> Request {
        let kind = self.pick_kind();
        let idx = QueryKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known kind");
        self.counts[idx] += 1;
        self.drawn += 1;
        match kind {
            QueryKind::Forecast => {
                let h = self.pick_host();
                self.note(kind, h);
                Request::Forecast {
                    host: self.hosts[h].clone(),
                }
            }
            QueryKind::Snapshot => {
                self.note(kind, 0);
                Request::Snapshot
            }
            QueryKind::BestHost => {
                self.note(kind, 0);
                Request::BestHost
            }
            QueryKind::SeriesTail => {
                let h = self.pick_host();
                self.note(kind, h);
                Request::SeriesTail {
                    host: self.hosts[h].clone(),
                    n: self.tail_n,
                }
            }
            QueryKind::Batch => {
                let mut items = Vec::with_capacity(self.batch_size);
                for _ in 0..self.batch_size {
                    let h = self.pick_host();
                    self.note(kind, h);
                    items.push(Request::Forecast {
                        host: self.hosts[h].clone(),
                    });
                }
                Request::Batch(items)
            }
        }
    }

    /// Draws `n` requests.
    pub fn take(&mut self, n: usize) -> Vec<Request> {
        (0..n).map(|_| self.next_request()).collect()
    }

    /// How many of each kind have been drawn, in [`QueryKind::ALL`] order.
    pub fn counts(&self) -> [(QueryKind, u64); 5] {
        let mut out = [(QueryKind::Forecast, 0); 5];
        for (i, &kind) in QueryKind::ALL.iter().enumerate() {
            out[i] = (kind, self.counts[i]);
        }
        out
    }

    /// Total requests drawn.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// Order-sensitive fingerprint of every draw so far.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts() -> Vec<String> {
        vec!["thing1".into(), "thing2".into(), "gremlin".into()]
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = RequestStream::new(5, &hosts(), MixRatios::default(), 16, 4);
        let mut b = RequestStream::new(5, &hosts(), MixRatios::default(), 16, 4);
        assert_eq!(a.take(300), b.take(300));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = RequestStream::new(6, &hosts(), MixRatios::default(), 16, 4);
        c.take(300);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn ratios_are_respected_within_tolerance() {
        let ratios = MixRatios::default();
        let mut s = RequestStream::new(42, &hosts(), ratios, 16, 4);
        let n = 20_000;
        s.take(n);
        let total = ratios.total() as f64;
        let weights = [
            ratios.forecast,
            ratios.snapshot,
            ratios.best_host,
            ratios.series_tail,
            ratios.batch,
        ];
        for ((kind, got), &w) in s.counts().iter().zip(&weights) {
            let want = n as f64 * f64::from(w) / total;
            assert!(
                (*got as f64 - want).abs() < want * 0.15 + 20.0,
                "{}: got {got}, want ≈{want}",
                kind.label()
            );
        }
    }

    #[test]
    fn zero_weight_removes_a_kind() {
        let ratios = MixRatios {
            batch: 0,
            snapshot: 0,
            ..MixRatios::default()
        };
        let mut s = RequestStream::new(9, &hosts(), ratios, 8, 4);
        for req in s.take(1000) {
            assert!(
                !matches!(req, Request::Batch(_) | Request::Snapshot),
                "zero-weight kind drawn: {req:?}"
            );
        }
    }
}
