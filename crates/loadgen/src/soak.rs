//! Sustained-soak runs: latency *over time*, not just in aggregate.
//!
//! A single whole-run histogram answers "how fast is the server" but
//! hides "is it getting slower" — cache churn, queue buildup, or a
//! journal that grows without bound all show up as a latency trend,
//! and a trend averages away in one histogram. The soak runner drives
//! the same open-loop schedule as [`crate::runner::open_loop`] but
//! buckets every completion into fixed time windows, producing a
//! p50/p99 series a sweep can graph and a regression check can gate
//! on.
//!
//! Windows are keyed by each request's **virtual arrival time** on the
//! schedule, not its completion time. That keeps the per-window
//! request population deterministic for a fixed schedule (worker
//! timing can't migrate a request between windows), so two runs of the
//! same soak disagree only in the measured latencies — never in which
//! rows exist or how many requests each row covers.

use crate::arrivals::ArrivalSchedule;
use crate::histogram::LatencyHistogram;
use nws_server::Transport;
use nws_wire::{Request, Response};
use std::time::{Duration, Instant};

/// One time window of a soak run: the latency distribution of every
/// request whose virtual arrival fell inside it.
#[derive(Debug)]
pub struct SoakWindow {
    /// Window index (0-based; window `i` covers virtual time
    /// `[i·window, (i+1)·window)`).
    pub index: u32,
    /// Requests completed in this window.
    pub completed: u64,
    /// Typed error responses plus transport failures in this window.
    pub errors: u64,
    /// The window's latency distribution (from virtual arrival).
    pub hist: LatencyHistogram,
}

/// What a soak run produced: the per-window series plus the usual
/// aggregate.
#[derive(Debug)]
pub struct SoakOutcome {
    /// The latency-over-time series, one row per window, in order.
    /// Every window the schedule touches is present, even if all its
    /// requests failed.
    pub windows: Vec<SoakWindow>,
    /// Width of each window.
    pub window: Duration,
    /// Requests completed across the whole run.
    pub completed: u64,
    /// Errors across the whole run.
    pub errors: u64,
    /// Wall clock from start to the last completion.
    pub elapsed: Duration,
    /// Whole-run latency distribution (the union of the windows).
    pub hist: LatencyHistogram,
}

/// Runs the schedule open-loop (same charging rules as
/// [`crate::runner::open_loop`]) and buckets latencies into
/// fixed-width windows by virtual arrival time.
pub fn soak<T: Transport + Send>(
    transports: Vec<T>,
    schedule: &ArrivalSchedule,
    requests: &[Request],
    window: Duration,
) -> SoakOutcome {
    assert!(!transports.is_empty(), "need at least one worker");
    assert!(
        requests.len() >= schedule.len(),
        "fewer requests than arrivals"
    );
    assert!(window > Duration::ZERO, "window must be positive");
    let workers = transports.len();
    let n_windows = schedule
        .offsets()
        .last()
        .map_or(0, |&last| (last / window.as_secs_f64()) as usize + 1);
    let start = Instant::now();
    type WorkerResult = (Vec<(LatencyHistogram, u64, u64)>, Duration);
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = transports
            .into_iter()
            .enumerate()
            .map(|(w, mut t)| {
                scope.spawn(move || {
                    let mut windows: Vec<(LatencyHistogram, u64, u64)> = (0..n_windows)
                        .map(|_| (LatencyHistogram::new(), 0, 0))
                        .collect();
                    let mut last_done = Duration::ZERO;
                    for i in (w..schedule.len()).step_by(workers) {
                        let due_secs = schedule.offsets()[i];
                        let due = Duration::from_secs_f64(due_secs);
                        let wi = ((due_secs / window.as_secs_f64()) as usize).min(n_windows - 1);
                        let now = start.elapsed();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let cell = &mut windows[wi];
                        match t.call(&requests[i]) {
                            Ok(resp) => {
                                cell.1 += 1;
                                if matches!(resp, Response::Error(_)) {
                                    cell.2 += 1;
                                }
                            }
                            Err(_) => {
                                cell.2 += 1;
                                break;
                            }
                        }
                        last_done = start.elapsed();
                        cell.0.record(last_done.saturating_sub(due));
                    }
                    (windows, last_done)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak worker panicked"))
            .collect()
    });
    let mut windows: Vec<SoakWindow> = (0..n_windows)
        .map(|i| SoakWindow {
            index: i as u32,
            completed: 0,
            errors: 0,
            hist: LatencyHistogram::new(),
        })
        .collect();
    let mut elapsed = Duration::ZERO;
    for (per_window, last) in results {
        for (i, (h, c, e)) in per_window.iter().enumerate() {
            windows[i].hist.merge(h);
            windows[i].completed += c;
            windows[i].errors += e;
        }
        elapsed = elapsed.max(last);
    }
    let mut hist = LatencyHistogram::new();
    let mut completed = 0;
    let mut errors = 0;
    for wdw in &windows {
        hist.merge(&wdw.hist);
        completed += wdw.completed;
        errors += wdw.errors;
    }
    SoakOutcome {
        windows,
        window,
        completed,
        errors,
        elapsed,
        hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::InterArrival;
    use crate::mix::{MixRatios, RequestStream};
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_server::{GridState, InMemoryTransport};
    use nws_sim::HostProfile;
    use std::sync::{Arc, Mutex};

    fn warm_state() -> Arc<Mutex<GridState>> {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Thing2],
            13,
            GridMonitorConfig::default(),
        );
        grid.run_steps(40);
        Arc::new(Mutex::new(GridState::new(grid)))
    }

    #[test]
    fn windows_partition_the_run_exactly() {
        let state = warm_state();
        let n = 300;
        // ~3000 rps over 300 requests ≈ 100 ms of schedule; 20 ms
        // windows give a handful of rows.
        let schedule = ArrivalSchedule::generate(InterArrival::poisson(3000.0), 7, n);
        let transports: Vec<_> = (0..3)
            .map(|_| InMemoryTransport::new(Arc::clone(&state)))
            .collect();
        let hosts = vec!["thing1".to_string(), "thing2".to_string()];
        let requests = RequestStream::new(17, &hosts, MixRatios::default(), 8, 3).take(n);
        let out = soak(transports, &schedule, &requests, Duration::from_millis(20));
        assert_eq!(out.completed, n as u64);
        assert_eq!(out.errors, 0);
        assert!(out.windows.len() >= 2, "schedule spans several windows");
        let sum: u64 = out.windows.iter().map(|w| w.completed).sum();
        assert_eq!(sum, out.completed, "every request lands in one window");
        assert_eq!(out.hist.count(), n as u64);
        for (i, w) in out.windows.iter().enumerate() {
            assert_eq!(w.index as usize, i);
        }
    }

    #[test]
    fn window_populations_are_schedule_deterministic() {
        let state = warm_state();
        let n = 200;
        let schedule = ArrivalSchedule::generate(InterArrival::poisson(5000.0), 11, n);
        let hosts = vec!["thing1".to_string(), "thing2".to_string()];
        let mut runs = Vec::new();
        for _ in 0..2 {
            let transports: Vec<_> = (0..2)
                .map(|_| InMemoryTransport::new(Arc::clone(&state)))
                .collect();
            let requests = RequestStream::new(17, &hosts, MixRatios::default(), 8, 3).take(n);
            let out = soak(transports, &schedule, &requests, Duration::from_millis(10));
            runs.push(
                out.windows
                    .iter()
                    .map(|w| (w.index, w.completed))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(
            runs[0], runs[1],
            "window membership depends only on the schedule"
        );
    }
}
