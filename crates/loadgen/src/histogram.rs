//! A dependency-free log-bucketed latency histogram.
//!
//! Values are nanoseconds in `u64`. The first 16 buckets are exact;
//! above that, each power-of-two range splits into 16 linear
//! sub-buckets, so the relative quantization error is bounded by
//! 1/16 ≈ 6% while the whole table stays under 1000 counters — small
//! enough to live per worker and merge at the end of a run.

use std::time::Duration;

/// Sub-buckets per power-of-two range (and the exact-bucket cutoff).
const SUB: usize = 16;
/// Index one past the largest representable bucket (major 63).
const BUCKETS: usize = SUB * (64 - 3);

/// A mergeable latency histogram over nanosecond values.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a nanosecond value.
fn index_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let major = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (major - 4)) & 0xF) as usize;
    SUB * (major - 3) + sub
}

/// Lower bound and width of bucket `idx`, inverting [`index_of`].
fn bucket_range(idx: usize) -> (u64, u64) {
    if idx < SUB {
        return (idx as u64, 1);
    }
    let major = idx / SUB + 3;
    let sub = (idx % SUB) as u64;
    let width = 1u64 << (major - 4);
    ((SUB as u64 + sub) * width, width)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one latency sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[index_of(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.max = self.max.max(ns);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean of all samples, nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, nanoseconds, reported as the
    /// midpoint of the bucket holding that rank (so within ~6% of the
    /// true sample). `q = 1` returns the exact maximum.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, width) = bucket_range(idx);
                return (lo + width / 2).min(self.max);
            }
        }
        self.max
    }

    /// Median, nanoseconds.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile, nanoseconds.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile, nanoseconds.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_range_invert_each_other() {
        for v in [0u64, 1, 15, 16, 17, 100, 1023, 1024, 1 << 20, u64::MAX] {
            let idx = index_of(v);
            let (lo, width) = bucket_range(idx);
            // `v - lo < width` avoids overflow at the top bucket.
            assert!(
                lo <= v && v - lo < width,
                "v={v} idx={idx} lo={lo} width={width}"
            );
        }
    }

    #[test]
    fn quantiles_track_exact_values_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        let mut values: Vec<u64> = (1..=10_000u64).map(|i| i * 997).collect();
        for &v in &values {
            h.record_ns(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1] as f64;
            let got = h.percentile(q) as f64;
            assert!(
                (got - exact).abs() / exact < 0.07,
                "q={q}: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.percentile(1.0), *values.last().unwrap());
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..5000u64 {
            let v = i * i + 17;
            if i % 2 == 0 {
                a.record_ns(v);
            } else {
                b.record_ns(v);
            }
            whole.record_ns(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_ns(), whole.max_ns());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn ordered_percentiles() {
        let mut h = LatencyHistogram::new();
        for i in 0..100_000u64 {
            h.record_ns(i % 7919 * 1000);
        }
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max_ns());
    }
}
