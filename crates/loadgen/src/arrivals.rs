//! Virtual arrival timelines for open-loop load.
//!
//! An open-loop generator decides *when* each request arrives before
//! the first one is sent, from a seeded inter-arrival distribution.
//! The runner then works through the timeline: if the server falls
//! behind, requests queue behind their virtual timestamps and the
//! waiting counts against measured latency. Nothing the server does
//! can slow the arrival clock down — which is exactly the property a
//! closed-loop client lacks.

use crate::fnv1a;
use nws_stats::dist::{Distribution, Exponential, Pareto};
use nws_stats::Rng;

/// How successive arrivals are spaced, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterArrival {
    /// Poisson arrivals: exponential gaps with the given mean.
    Exponential {
        /// Mean gap between arrivals, seconds.
        mean: f64,
    },
    /// Heavy-tailed arrivals: Pareto gaps with tail index `shape` and
    /// minimum gap `scale`, clamped at `cap` so one draw from the tail
    /// cannot stall a finite run forever. With `1 < shape < 2` the
    /// gaps have finite mean but infinite variance — the same
    /// mechanism that gives the paper's availability traces their
    /// self-similarity gives this workload its bursts.
    Pareto {
        /// Tail index `α`.
        shape: f64,
        /// Minimum gap, seconds.
        scale: f64,
        /// Clamp for individual gaps, seconds.
        cap: f64,
    },
}

impl InterArrival {
    /// Poisson arrivals at `rate` requests per second.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        InterArrival::Exponential { mean: 1.0 / rate }
    }

    /// Heavy-tailed arrivals averaging `rate` requests per second with
    /// tail index `shape` (use `1 < shape < 2` for the infinite-variance
    /// regime). The scale is solved so the *uncapped* mean gap is
    /// `1/rate`; the cap at 1000 mean gaps trims only the extreme tail,
    /// so the effective rate stays within a fraction of a percent.
    pub fn heavy_tail(rate: f64, shape: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        assert!(shape > 1.0, "need a finite mean, so shape > 1");
        let mean = 1.0 / rate;
        let scale = mean * (shape - 1.0) / shape;
        InterArrival::Pareto {
            shape,
            scale,
            cap: 1000.0 * mean,
        }
    }

    /// Short name for CSV rows and labels.
    pub fn label(&self) -> &'static str {
        match self {
            InterArrival::Exponential { .. } => "exponential",
            InterArrival::Pareto { .. } => "pareto",
        }
    }

    /// The analytic mean gap, seconds.
    pub fn analytic_mean(&self) -> f64 {
        match *self {
            InterArrival::Exponential { mean } => mean,
            InterArrival::Pareto { shape, scale, cap } => Pareto::new(shape, scale)
                .with_cap(cap)
                .mean()
                .expect("capped Pareto has a finite mean"),
        }
    }

    /// Draws one gap, seconds.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            InterArrival::Exponential { mean } => Exponential::with_mean(mean).sample(rng),
            InterArrival::Pareto { shape, scale, cap } => {
                Pareto::new(shape, scale).with_cap(cap).sample(rng)
            }
        }
    }
}

/// A precomputed open-loop arrival timeline: cumulative offsets from
/// the start of the run, seconds, non-decreasing.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSchedule {
    offsets: Vec<f64>,
}

impl ArrivalSchedule {
    /// Generates `n` arrivals from `dist`, deterministically from
    /// `seed`. The timeline is a pure function of its arguments — it
    /// never looks at wall clock or thread count, so the same seed
    /// yields bit-identical schedules everywhere.
    pub fn generate(dist: InterArrival, seed: u64, n: usize) -> Self {
        let mut rng = Rng::new(seed).fork("loadgen.arrivals");
        let mut offsets = Vec::with_capacity(n);
        let mut t = 0.0;
        for _ in 0..n {
            t += dist.sample(&mut rng);
            offsets.push(t);
        }
        Self { offsets }
    }

    /// Cumulative arrival offsets, seconds.
    pub fn offsets(&self) -> &[f64] {
        &self.offsets
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Virtual duration of the whole timeline, seconds.
    pub fn duration(&self) -> f64 {
        self.offsets.last().copied().unwrap_or(0.0)
    }

    /// Offered request rate implied by the timeline.
    pub fn offered_rps(&self) -> f64 {
        if self.duration() > 0.0 {
            self.len() as f64 / self.duration()
        } else {
            0.0
        }
    }

    /// FNV-1a over the IEEE-754 bits of every offset, in order: the
    /// committed-artifact fingerprint for cross-thread-count identity.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.offsets.len() * 8);
        for v in &self.offsets {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_deterministic() {
        let d = InterArrival::poisson(100.0);
        let a = ArrivalSchedule::generate(d, 7, 500);
        let b = ArrivalSchedule::generate(d, 7, 500);
        let c = ArrivalSchedule::generate(d, 8, 500);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn offsets_are_non_decreasing_and_positive() {
        for dist in [
            InterArrival::poisson(50.0),
            InterArrival::heavy_tail(50.0, 1.5),
        ] {
            let s = ArrivalSchedule::generate(dist, 11, 1000);
            let mut prev = 0.0;
            for &t in s.offsets() {
                assert!(t > 0.0 && t >= prev, "{}: bad offset {t}", dist.label());
                prev = t;
            }
        }
    }

    #[test]
    fn offered_rate_tracks_the_analytic_mean() {
        for dist in [
            InterArrival::poisson(200.0),
            InterArrival::heavy_tail(200.0, 1.5),
        ] {
            let s = ArrivalSchedule::generate(dist, 3, 20_000);
            let mean_gap = s.duration() / s.len() as f64;
            let want = dist.analytic_mean();
            assert!(
                (mean_gap - want).abs() / want < 0.15,
                "{}: empirical mean gap {mean_gap} vs analytic {want}",
                dist.label()
            );
        }
    }

    #[test]
    fn heavy_tail_cap_trims_little_mass() {
        // The capped analytic mean must sit within a couple percent of
        // the uncapped target 1/rate the constructor solved for (the
        // cap at 1000 mean gaps trims ~(α−1)/α · 1000^(1−α) of the
        // mass: ~1.2% at α = 1.5).
        let d = InterArrival::heavy_tail(100.0, 1.5);
        let got = d.analytic_mean();
        assert!((got - 0.01).abs() / 0.01 < 0.02, "capped mean {got}");
    }
}
