//! Connection-churn sweeps: how fast can clients *arrive*?
//!
//! Request-rate sweeps hold a fixed set of connections open and vary
//! requests per second. Real grid clients also come and go — a
//! scheduler process connects, asks a few questions, and disconnects —
//! so there is a second axis: **connects per second**. Accept-path
//! work (socket setup, admission, registration with the reactor)
//! happens per connection, not per request, and only a churn sweep
//! exercises it.
//!
//! The runner drives connection arrivals open-loop from a seeded
//! schedule, exactly like the request runner drives requests: each
//! connection is charged from its virtual arrival, so a backlogged
//! accept path shows up as connect latency instead of being absorbed
//! by the harness. Each admitted connection issues a short burst of
//! requests and disconnects. Typed `Overloaded` refusals are counted
//! separately from transport failures — a refusal is the server
//! working as designed at its cap, not an error.

use crate::arrivals::ArrivalSchedule;
use crate::histogram::LatencyHistogram;
use nws_server::Transport;
use nws_wire::{ErrorCode, Request, Response};
use std::time::{Duration, Instant};

/// How one connection attempt resolved at connect time.
pub enum ChurnConnect<T> {
    /// Connected; the transport is ready for requests.
    Serve(T),
    /// The connect itself failed (socket error, refused TCP).
    Failed,
}

/// What a churn run measured.
#[derive(Debug)]
pub struct ChurnOutcome {
    /// Connection arrivals on the schedule.
    pub attempted: u64,
    /// Connections that got at least one non-`Overloaded` reply.
    pub served: u64,
    /// Connections answered with a typed `Overloaded` refusal.
    pub refused: u64,
    /// Connections that failed at the socket level.
    pub failed: u64,
    /// Requests completed across all served connections.
    pub completed: u64,
    /// Typed error replies (other than the counted refusals) plus
    /// mid-burst transport failures.
    pub errors: u64,
    /// Wall clock from start to the last completion.
    pub elapsed: Duration,
    /// Connect-to-first-reply latency, charged from each connection's
    /// virtual arrival (includes accept backlog — the point of the
    /// sweep).
    pub first_reply: LatencyHistogram,
    /// Per-request latency from send, across all served connections.
    pub requests: LatencyHistogram,
}

impl ChurnOutcome {
    /// Connections handled (served + refused) per wall-clock second.
    pub fn achieved_cps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            (self.served + self.refused) as f64 / secs
        } else {
            0.0
        }
    }
}

/// Runs one churn sweep: connection `i` arrives at schedule offset
/// `i`, issues `requests_per_conn` requests drawn from `requests`
/// round-robin (request `i·k + j`, modulo the pool), and disconnects.
/// Workers deal connections round-robin, same as the request runner.
///
/// `connect` is called with the connection index; it should establish
/// a fresh transport (or report the failure). A first reply carrying
/// the typed `Overloaded` refusal counts the connection as refused and
/// ends it — that is the accept gate answering, not an error.
pub fn churn<T, F>(
    connect: &F,
    workers: usize,
    schedule: &ArrivalSchedule,
    requests: &[Request],
    requests_per_conn: usize,
) -> ChurnOutcome
where
    T: Transport,
    F: Fn(usize) -> ChurnConnect<T> + Sync,
{
    assert!(workers > 0, "need at least one worker");
    assert!(!requests.is_empty(), "need a request pool");
    assert!(requests_per_conn > 0, "each connection must ask something");
    let start = Instant::now();
    let results: Vec<(ChurnOutcome, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = empty_outcome();
                    let mut last_done = Duration::ZERO;
                    for i in (w..schedule.len()).step_by(workers) {
                        let due = Duration::from_secs_f64(schedule.offsets()[i]);
                        let now = start.elapsed();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        out.attempted += 1;
                        let mut t = match connect(i) {
                            ChurnConnect::Serve(t) => t,
                            ChurnConnect::Failed => {
                                out.failed += 1;
                                continue;
                            }
                        };
                        let mut first = true;
                        for j in 0..requests_per_conn {
                            let req = &requests[(i * requests_per_conn + j) % requests.len()];
                            let sent = Instant::now();
                            match t.call(req) {
                                Ok(Response::Error(e)) if e.code == ErrorCode::Overloaded => {
                                    // The accept gate answered: count
                                    // the refusal and move on.
                                    out.refused += 1;
                                    break;
                                }
                                Ok(resp) => {
                                    if first {
                                        out.served += 1;
                                        out.first_reply.record(start.elapsed().saturating_sub(due));
                                        first = false;
                                    }
                                    out.completed += 1;
                                    if matches!(resp, Response::Error(_)) {
                                        out.errors += 1;
                                    }
                                    out.requests.record(sent.elapsed());
                                }
                                Err(_) => {
                                    out.errors += 1;
                                    break;
                                }
                            }
                            last_done = start.elapsed();
                        }
                        // The transport drops here: the disconnect half
                        // of the churn.
                    }
                    (out, last_done)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("churn worker panicked"))
            .collect()
    });
    let mut total = empty_outcome();
    for (out, last) in results {
        total.attempted += out.attempted;
        total.served += out.served;
        total.refused += out.refused;
        total.failed += out.failed;
        total.completed += out.completed;
        total.errors += out.errors;
        total.first_reply.merge(&out.first_reply);
        total.requests.merge(&out.requests);
        total.elapsed = total.elapsed.max(last);
    }
    total
}

fn empty_outcome() -> ChurnOutcome {
    ChurnOutcome {
        attempted: 0,
        served: 0,
        refused: 0,
        failed: 0,
        completed: 0,
        errors: 0,
        elapsed: Duration::ZERO,
        first_reply: LatencyHistogram::new(),
        requests: LatencyHistogram::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::InterArrival;
    use crate::mix::{MixRatios, RequestStream};
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_server::{GridState, InMemoryTransport};
    use nws_sim::HostProfile;
    use std::sync::{Arc, Mutex};

    fn warm_state() -> Arc<Mutex<GridState>> {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Thing2],
            13,
            GridMonitorConfig::default(),
        );
        grid.run_steps(40);
        Arc::new(Mutex::new(GridState::new(grid)))
    }

    #[test]
    fn every_connection_arrival_is_accounted_for() {
        let state = warm_state();
        let hosts = vec!["thing1".to_string(), "thing2".to_string()];
        let requests = RequestStream::new(29, &hosts, MixRatios::default(), 8, 3).take(64);
        let schedule = ArrivalSchedule::generate(InterArrival::poisson(2000.0), 5, 50);
        let out = churn(
            &|_i| ChurnConnect::Serve(InMemoryTransport::new(Arc::clone(&state))),
            3,
            &schedule,
            &requests,
            4,
        );
        assert_eq!(out.attempted, 50);
        assert_eq!(out.served, 50);
        assert_eq!(out.refused + out.failed, 0);
        assert_eq!(out.completed, 200, "4 requests per connection");
        assert_eq!(out.first_reply.count(), 50);
        assert_eq!(out.requests.count(), 200);
        assert!(out.achieved_cps() > 0.0);
    }

    #[test]
    fn failures_and_refusals_split_correctly() {
        let state = warm_state();
        let hosts = vec!["thing1".to_string()];
        let requests = RequestStream::new(29, &hosts, MixRatios::default(), 8, 3).take(16);
        let schedule = ArrivalSchedule::generate(InterArrival::poisson(5000.0), 6, 30);
        // Even connections fail at the socket; odd ones serve.
        let out = churn(
            &|i| {
                if i % 2 == 0 {
                    ChurnConnect::Failed
                } else {
                    ChurnConnect::Serve(InMemoryTransport::new(Arc::clone(&state)))
                }
            },
            2,
            &schedule,
            &requests,
            2,
        );
        assert_eq!(out.attempted, 30);
        assert_eq!(out.failed, 15);
        assert_eq!(out.served, 15);
        assert_eq!(out.completed, 30);
    }
}
