//! Property tests for the arrival-time samplers.
//!
//! The committed load artifacts depend on two properties: a schedule
//! is a pure function of its seed (bit-identical no matter how many
//! threads the harness runs with), and the samplers actually draw from
//! the distributions they claim (mean and tail within tolerance of the
//! analytic values), so the offered rates in `BENCH_serve.json` mean
//! what they say.

use nws_loadgen::{ArrivalSchedule, InterArrival};
use proptest::prelude::*;

/// Gaps reconstructed from the cumulative timeline.
fn gaps(s: &ArrivalSchedule) -> Vec<f64> {
    let mut prev = 0.0;
    s.offsets()
        .iter()
        .map(|&t| {
            let g = t - prev;
            prev = t;
            g
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn schedules_are_bit_identical_across_thread_counts(
        seed in any::<u64>(),
        rate_ix in 0usize..4,
        heavy in any::<bool>(),
    ) {
        let rate = [100.0, 1000.0, 8000.0, 64000.0][rate_ix];
        let dist = if heavy {
            InterArrival::heavy_tail(rate, 1.5)
        } else {
            InterArrival::poisson(rate)
        };
        // Generate under different configured thread counts: the
        // schedule must not observe parallelism at all.
        nws_runtime::set_threads(Some(1));
        let a = ArrivalSchedule::generate(dist, seed, 600);
        nws_runtime::set_threads(Some(4));
        let b = ArrivalSchedule::generate(dist, seed, 600);
        nws_runtime::set_threads(None);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.offsets(), b.offsets());
    }

    #[test]
    fn exponential_gaps_match_the_analytic_mean(
        seed in any::<u64>(),
        rate_ix in 0usize..3,
    ) {
        let rate = [50.0, 500.0, 5000.0][rate_ix];
        let dist = InterArrival::poisson(rate);
        let s = ArrivalSchedule::generate(dist, seed, 20_000);
        let mean = s.duration() / s.len() as f64;
        let want = dist.analytic_mean();
        // 20k exponential draws: the sample mean has σ ≈ mean/√n, so
        // ±10% is a > 14σ band — failures mean a broken sampler, not
        // bad luck.
        prop_assert!(
            (mean - want).abs() / want < 0.10,
            "mean {} vs analytic {}", mean, want
        );
    }

    #[test]
    fn pareto_gaps_match_mean_and_tail(
        seed in any::<u64>(),
        shape_ix in 0usize..3,
    ) {
        let shape = [1.3, 1.5, 1.8][shape_ix];
        let rate = 1000.0;
        let dist = InterArrival::heavy_tail(rate, shape);
        let s = ArrivalSchedule::generate(dist, seed, 40_000);
        let gs = gaps(&s);
        // Heavy tails converge slowly; the capped analytic mean keeps
        // this honest while the band stays wide.
        let mean = gs.iter().sum::<f64>() / gs.len() as f64;
        let want = dist.analytic_mean();
        prop_assert!(
            (mean - want).abs() / want < 0.25,
            "mean {} vs analytic {}", mean, want
        );
        // Tail law: P(X > x) = (scale/x)^shape. Check one decade above
        // the scale, where a 40k-draw empirical survival is stable.
        let InterArrival::Pareto { scale, .. } = dist else { unreachable!() };
        let x = scale * 10.0;
        let survival = gs.iter().filter(|&&g| g > x).count() as f64 / gs.len() as f64;
        let want_survival = 0.1f64.powf(shape);
        prop_assert!(
            (survival - want_survival).abs() / want_survival < 0.30,
            "P(X > {}) = {} vs analytic {}", x, survival, want_survival
        );
    }

    #[test]
    fn timelines_are_strictly_increasing(
        seed in any::<u64>(),
        heavy in any::<bool>(),
    ) {
        let dist = if heavy {
            InterArrival::heavy_tail(2000.0, 1.5)
        } else {
            InterArrival::poisson(2000.0)
        };
        let s = ArrivalSchedule::generate(dist, seed, 2000);
        for g in gaps(&s) {
            prop_assert!(g > 0.0, "non-positive gap {}", g);
        }
        prop_assert_eq!(s.len(), 2000);
        prop_assert!(s.offered_rps() > 0.0);
    }
}
