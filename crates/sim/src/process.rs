//! Simulated processes and their scheduling state.

use crate::Seconds;
use std::sync::Arc;

/// Process identifier, unique within one simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Specification for spawning a process.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Display name (for traces and debugging). Shared and immutable so
    /// workloads that spawn the same kind of job every few seconds can
    /// intern the name once and spawn allocation-free.
    pub name: Arc<str>,
    /// `nice` value in `0..=19`. 0 is full priority, 19 is the classic
    /// background-soaker priority that full-priority work always preempts.
    pub nice: u8,
    /// Fraction of consumed CPU charged as *system* time (syscalls, faults);
    /// the remainder is charged as *user* time. Must be in `[0, 1]`.
    pub sys_fraction: f64,
    /// If set, the kernel terminates the process after it has consumed this
    /// much CPU time (seconds). Used by batch jobs and probe/test processes.
    pub cpu_limit: Option<Seconds>,
    /// Whether the process starts runnable.
    pub runnable: bool,
}

impl ProcessSpec {
    /// A full-priority, always-runnable, CPU-bound process — the shape of
    /// the NWS probe and the paper's test process.
    pub fn cpu_bound(name: impl Into<Arc<str>>) -> Self {
        Self {
            name: name.into(),
            nice: 0,
            sys_fraction: 0.0,
            cpu_limit: None,
            runnable: true,
        }
    }

    /// Sets the nice value (clamped to `0..=19`).
    pub fn with_nice(mut self, nice: u8) -> Self {
        self.nice = nice.min(19);
        self
    }

    /// Sets the system-time fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `f` is in `[0, 1]`.
    pub fn with_sys_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "sys fraction must be in [0,1]");
        self.sys_fraction = f;
        self
    }

    /// Sets a CPU-time limit after which the kernel reaps the process.
    pub fn with_cpu_limit(mut self, limit: Seconds) -> Self {
        assert!(limit > 0.0, "cpu limit must be positive");
        self.cpu_limit = Some(limit);
        self
    }

    /// Starts the process in the sleeping state.
    pub fn sleeping(mut self) -> Self {
        self.runnable = false;
        self
    }
}

/// Kernel-side process record.
#[derive(Debug, Clone)]
pub(crate) struct Process {
    pub(crate) pid: Pid,
    pub(crate) name: Arc<str>,
    pub(crate) nice: u8,
    pub(crate) sys_fraction: f64,
    pub(crate) cpu_limit: Option<Seconds>,
    pub(crate) runnable: bool,
    /// 4.3BSD `p_cpu`: recent CPU consumption estimate, incremented while
    /// running and decayed once per second as a function of load average.
    pub(crate) p_cpu: f64,
    /// Total CPU time consumed (seconds).
    pub(crate) cpu_time: Seconds,
    /// Tick index at which the process last ran (round-robin tiebreak).
    pub(crate) last_run_tick: u64,
    /// Simulation time at which the process was spawned.
    pub(crate) spawned_at: Seconds,
}

impl Process {
    /// The 4.3BSD user priority: `PUSER + p_cpu/4 + 2·nice`.
    /// Smaller is better (runs first).
    pub(crate) fn priority(&self) -> f64 {
        crate::PUSER + self.p_cpu / 4.0 + 2.0 * self.nice as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_defaults() {
        let spec = ProcessSpec::cpu_bound("probe");
        assert_eq!(spec.nice, 0);
        assert_eq!(spec.sys_fraction, 0.0);
        assert!(spec.runnable);
        assert!(spec.cpu_limit.is_none());
    }

    #[test]
    fn nice_is_clamped() {
        assert_eq!(ProcessSpec::cpu_bound("x").with_nice(40).nice, 19);
        assert_eq!(ProcessSpec::cpu_bound("x").with_nice(19).nice, 19);
    }

    #[test]
    fn priority_ordering() {
        let fresh = Process {
            pid: Pid(1),
            name: "fresh".into(),
            nice: 0,
            sys_fraction: 0.0,
            cpu_limit: None,
            runnable: true,
            p_cpu: 0.0,
            cpu_time: 0.0,
            last_run_tick: 0,
            spawned_at: 0.0,
        };
        let mut tired = fresh.clone();
        tired.p_cpu = 200.0;
        let mut nice = fresh.clone();
        nice.nice = 19;
        // Fresh full-priority beats a long-running job and a nice job.
        assert!(fresh.priority() < tired.priority());
        assert!(fresh.priority() < nice.priority());
        // A decayed full-priority job still beats an idle nice +19 job
        // until p_cpu exceeds 152 (50 + p/4 vs 50 + 38).
        let mut slightly_tired = fresh.clone();
        slightly_tired.p_cpu = 100.0;
        assert!(slightly_tired.priority() < nice.priority());
    }

    #[test]
    #[should_panic(expected = "sys fraction")]
    fn bad_sys_fraction_panics() {
        ProcessSpec::cpu_bound("x").with_sys_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "cpu limit")]
    fn bad_cpu_limit_panics() {
        ProcessSpec::cpu_bound("x").with_cpu_limit(0.0);
    }
}
