//! The simulated kernel: scheduler, accounting, and load bookkeeping.
//!
//! One [`Kernel`] models one single-CPU host. Time advances in fixed
//! [`TICK`]-length quanta. Each tick the kernel:
//!
//! 1. samples the run queue into the load averages (every 5 s),
//! 2. decays every process's `p_cpu` (every 1 s) by the 4.3BSD law
//!    `p_cpu ← p_cpu · (2·load)/(2·load + 1) + nice`,
//! 3. optionally consumes the quantum with kernel interrupt work
//!    (network gateway behaviour — charged as system time), and
//! 4. runs the runnable process with the *numerically smallest* priority
//!    `PUSER + p_cpu/4 + 2·nice`, breaking ties round-robin.
//!
//! This is the mechanism behind both priority pathologies in the paper:
//! a `nice +19` soaker sits in the run queue but always loses to
//! full-priority work (conundrum), and a long-running job accumulates
//! `p_cpu` so any fresh short process preempts it (kongo).

use crate::loadavg::LoadAverage;
use crate::process::{Pid, Process, ProcessSpec};
use crate::{Seconds, PCPU_PER_TICK, STARVATION_TICKS, TICK, TICKS_PER_SECOND};
use nws_stats::Rng;
use std::sync::Arc;

/// Cumulative CPU-time accounting, the counters `vmstat` reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accounting {
    /// Seconds of CPU spent in user mode.
    pub user: Seconds,
    /// Seconds of CPU spent in system mode (syscalls + interrupts).
    pub sys: Seconds,
    /// Seconds of CPU spent idle.
    pub idle: Seconds,
}

impl Accounting {
    /// Total accounted time.
    pub fn total(&self) -> Seconds {
        self.user + self.sys + self.idle
    }

    /// Element-wise difference `self − earlier`; used by sensors to obtain
    /// occupancy fractions over their sampling interval.
    pub fn since(&self, earlier: &Accounting) -> Accounting {
        Accounting {
            user: self.user - earlier.user,
            sys: self.sys - earlier.sys,
            idle: self.idle - earlier.idle,
        }
    }
}

/// A `ps`-style view of one live process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessView {
    /// The process id.
    pub pid: Pid,
    /// Display name from the spawn spec.
    pub name: Arc<str>,
    /// The nice value.
    pub nice: u8,
    /// Whether the process is currently runnable.
    pub runnable: bool,
    /// Recent-CPU estimate (the scheduler's `p_cpu`).
    pub p_cpu: f64,
    /// The dispatch priority derived from it (smaller runs first).
    pub priority: f64,
    /// Total CPU time consumed (seconds).
    pub cpu_time: Seconds,
    /// Wall-clock age (seconds).
    pub age: Seconds,
}

/// Final statistics for a process that exited or was killed.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessStats {
    /// The process id.
    pub pid: Pid,
    /// Display name from the spawn spec.
    pub name: Arc<str>,
    /// Total CPU time consumed (seconds).
    pub cpu_time: Seconds,
    /// Wall-clock lifetime (seconds).
    pub wall_time: Seconds,
    /// The nice value the process ran with.
    pub nice: u8,
}

impl ProcessStats {
    /// CPU occupancy over the process lifetime: `cpu_time / wall_time`.
    ///
    /// This is exactly what the paper's probe and test processes report
    /// (`getrusage` CPU time over elapsed wall-clock time).
    pub fn occupancy(&self) -> f64 {
        if self.wall_time <= 0.0 {
            0.0
        } else {
            (self.cpu_time / self.wall_time).clamp(0.0, 1.0)
        }
    }
}

/// A simulated Unix kernel (single- or multi-processor).
#[derive(Debug)]
pub struct Kernel {
    tick_count: u64,
    next_pid: u64,
    procs: Vec<Process>,
    loadavg: LoadAverage,
    accounting: Accounting,
    /// Per-tick probability that kernel interrupt work consumes the quantum.
    interrupt_prob: f64,
    rng: Rng,
    completed: Vec<ProcessStats>,
    /// Number of CPUs. The paper studies uniprocessors; SMP support is its
    /// stated future work ("we wish to expand the types of resources we
    /// consider to shared-memory multiprocessors").
    n_cpus: usize,
    /// Scratch buffer for per-tick dispatch (avoids re-allocating).
    dispatch: Vec<usize>,
    /// Scratch buffer for per-tick reaping (avoids re-allocating).
    finished: Vec<usize>,
}

impl Kernel {
    /// Creates an idle single-CPU kernel. `seed` drives only
    /// kernel-internal randomness (interrupt arrivals).
    pub fn new(seed: u64) -> Self {
        Self::with_cpus(seed, 1)
    }

    /// Creates an idle kernel with `n_cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n_cpus == 0`.
    pub fn with_cpus(seed: u64, n_cpus: usize) -> Self {
        assert!(n_cpus > 0, "a host needs at least one CPU");
        Self {
            tick_count: 0,
            next_pid: 1,
            procs: Vec::new(),
            loadavg: LoadAverage::new(),
            accounting: Accounting::default(),
            interrupt_prob: 0.0,
            rng: Rng::new(seed),
            completed: Vec::new(),
            n_cpus,
            dispatch: Vec::new(),
            finished: Vec::new(),
        }
    }

    /// Number of processors.
    pub fn n_cpus(&self) -> usize {
        self.n_cpus
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> Seconds {
        self.tick_count as Seconds * TICK
    }

    /// Number of elapsed ticks.
    pub fn tick_count(&self) -> u64 {
        self.tick_count
    }

    /// Spawns a process and returns its pid.
    pub fn spawn(&mut self, spec: ProcessSpec) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.push(Process {
            pid,
            name: spec.name,
            nice: spec.nice.min(19),
            sys_fraction: spec.sys_fraction,
            cpu_limit: spec.cpu_limit,
            runnable: spec.runnable,
            p_cpu: 0.0,
            cpu_time: 0.0,
            last_run_tick: self.tick_count,
            spawned_at: self.now(),
        });
        pid
    }

    /// Kills a process, returning its final statistics if it was alive.
    pub fn kill(&mut self, pid: Pid) -> Option<ProcessStats> {
        let idx = self.procs.iter().position(|p| p.pid == pid)?;
        let p = self.procs.swap_remove(idx);
        Some(self.stats_of(&p))
    }

    fn stats_of(&self, p: &Process) -> ProcessStats {
        ProcessStats {
            pid: p.pid,
            name: Arc::clone(&p.name),
            cpu_time: p.cpu_time,
            wall_time: self.now() - p.spawned_at,
            nice: p.nice,
        }
    }

    /// Marks a process runnable (`true`) or sleeping (`false`).
    /// Returns `false` if the pid is not alive.
    pub fn set_runnable(&mut self, pid: Pid, runnable: bool) -> bool {
        match self.procs.iter_mut().find(|p| p.pid == pid) {
            Some(p) => {
                p.runnable = runnable;
                true
            }
            None => false,
        }
    }

    /// True if the process exists (has neither exited nor been killed).
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs.iter().any(|p| p.pid == pid)
    }

    /// CPU time consumed so far by a live process.
    pub fn cpu_time(&self, pid: Pid) -> Option<Seconds> {
        self.procs.iter().find(|p| p.pid == pid).map(|p| p.cpu_time)
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Instantaneous run-queue length (runnable processes, all priorities —
    /// Unix counts `nice` jobs too, which is central to the conundrum
    /// pathology).
    pub fn runnable_count(&self) -> usize {
        self.procs.iter().filter(|p| p.runnable).count()
    }

    /// The kernel's load averages.
    pub fn load_average(&self) -> &LoadAverage {
        &self.loadavg
    }

    /// Cumulative user/sys/idle accounting.
    pub fn accounting(&self) -> Accounting {
        self.accounting
    }

    /// Sets the per-tick probability that interrupt handling consumes the
    /// quantum (system time not attributable to any process). Models the
    /// network-gateway behaviour discussed under Eq. 2 in the paper.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1)`.
    pub fn set_interrupt_probability(&mut self, p: f64) {
        assert!((0.0..1.0).contains(&p), "interrupt probability in [0,1)");
        self.interrupt_prob = p;
    }

    /// Drains the list of processes that hit their CPU limit and exited.
    pub fn drain_completed(&mut self) -> Vec<ProcessStats> {
        std::mem::take(&mut self.completed)
    }

    /// Removes and returns the completion record of one specific process,
    /// leaving other completions for their owners.
    pub fn remove_completed(&mut self, pid: Pid) -> Option<ProcessStats> {
        let idx = self.completed.iter().position(|s| s.pid == pid)?;
        Some(self.completed.swap_remove(idx))
    }

    /// A `ps`-style listing of every live process, ordered by pid.
    pub fn process_table(&self) -> Vec<ProcessView> {
        let now = self.now();
        let mut table: Vec<ProcessView> = self
            .procs
            .iter()
            .map(|p| ProcessView {
                pid: p.pid,
                name: Arc::clone(&p.name),
                nice: p.nice,
                runnable: p.runnable,
                p_cpu: p.p_cpu,
                priority: p.priority(),
                cpu_time: p.cpu_time,
                age: now - p.spawned_at,
            })
            .collect();
        table.sort_by_key(|v| v.pid);
        table
    }

    /// Advances the simulation by exactly one quantum.
    pub fn tick(&mut self) {
        // 5-second kernel load sampling, offset by 2.5 s from whole-second
        // boundaries so that sensor-driven activity that is phase-locked to
        // 10-second measurement slots (the NWS probe, test processes) is
        // sampled in proportion to its true occupancy rather than aliased.
        if self.tick_count % (TICKS_PER_SECOND * 5) == TICKS_PER_SECOND * 5 / 2 {
            let n = self.runnable_count();
            self.loadavg.sample(n);
        }
        // Once-per-second p_cpu decay (the digital filter of 4.3BSD).
        if self.tick_count.is_multiple_of(TICKS_PER_SECOND) {
            let load = self.loadavg.one_minute();
            let decay = (2.0 * load) / (2.0 * load + 1.0);
            for p in &mut self.procs {
                p.p_cpu = p.p_cpu * decay + p.nice as f64;
            }
        }
        // Interrupt work may consume one CPU's quantum.
        let mut cpus_free = self.n_cpus;
        if self.interrupt_prob > 0.0 && self.rng.chance(self.interrupt_prob) {
            self.accounting.sys += TICK;
            cpus_free -= 1;
        }
        // Build this tick's dispatch set: anti-starvation first, then by
        // priority. A runnable process that has not run for
        // STARVATION_TICKS is dispatched regardless of priority (the
        // Solaris TS `ts_maxwait` kicker; 4.3BSD achieves the same through
        // event-priority boosts). This is why a `nice +19` soaker still
        // obtains a sliver of CPU under full-priority load — and why the
        // paper's test process observes ~85-90% (not 100%) availability on
        // conundrum.
        let now_tick = self.tick_count;
        let mut dispatch = std::mem::take(&mut self.dispatch);
        dispatch.clear();
        dispatch.extend(
            self.procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.runnable)
                .map(|(i, _)| i),
        );
        dispatch.sort_by(|&a, &b| {
            let pa = &self.procs[a];
            let pb = &self.procs[b];
            let sa = now_tick - pa.last_run_tick >= STARVATION_TICKS;
            let sb = now_tick - pb.last_run_tick >= STARVATION_TICKS;
            // Starved first (longest wait first), then smallest priority,
            // round-robin tiebreak via least-recently-run.
            sb.cmp(&sa).then_with(|| {
                pa.priority()
                    .total_cmp(&pb.priority())
                    .then(pa.last_run_tick.cmp(&pb.last_run_tick))
            })
        });
        dispatch.truncate(cpus_free);
        let ran = dispatch.len();
        let mut finished = std::mem::take(&mut self.finished);
        finished.clear();
        for &idx in &dispatch {
            let p = &mut self.procs[idx];
            p.cpu_time += TICK;
            p.p_cpu += PCPU_PER_TICK;
            p.last_run_tick = self.tick_count;
            self.accounting.user += TICK * (1.0 - p.sys_fraction);
            self.accounting.sys += TICK * p.sys_fraction;
            if matches!(p.cpu_limit, Some(limit) if p.cpu_time >= limit - 1e-9) {
                finished.push(idx);
            }
        }
        self.accounting.idle += TICK * (cpus_free - ran) as f64;
        // Reap finished processes (highest index first: swap_remove-safe).
        finished.sort_unstable_by(|a, b| b.cmp(a));
        for &idx in &finished {
            let proc_rec = self.procs.swap_remove(idx);
            let stats = self.stats_of_after_tick(&proc_rec);
            self.completed.push(stats);
        }
        self.finished = finished;
        self.dispatch = dispatch;
        self.tick_count += 1;
    }

    /// Stats for a process reaped inside the current tick (the quantum it
    /// just consumed counts toward its wall time).
    fn stats_of_after_tick(&self, p: &Process) -> ProcessStats {
        ProcessStats {
            pid: p.pid,
            name: Arc::clone(&p.name),
            cpu_time: p.cpu_time,
            wall_time: (self.tick_count + 1) as Seconds * TICK - p.spawned_at,
            nice: p.nice,
        }
    }

    /// Advances by `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Reboots the kernel: every process is lost, accounting counters and
    /// load averages restart from zero, interrupt sources are quiesced.
    ///
    /// The clock (`tick_count`) and the pid counter survive — simulation
    /// time is monotonic across the whole grid, and pids are never reused
    /// so stale [`Pid`]s held by workloads simply read as dead.
    pub fn reboot(&mut self) {
        self.procs.clear();
        self.completed.clear();
        self.loadavg = LoadAverage::new();
        self.accounting = Accounting::default();
        self.interrupt_prob = 0.0;
    }

    /// Jumps the clock forward by `n` ticks without running the scheduler
    /// or accumulating accounting — the host is powered off and nothing
    /// happens. Used to model the dark span of an outage.
    pub fn skip_ticks(&mut self, n: u64) {
        self.tick_count += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks(seconds: f64) -> u64 {
        (seconds / TICK).round() as u64
    }

    #[test]
    fn idle_kernel_accumulates_idle_time() {
        let mut k = Kernel::new(1);
        k.run_ticks(ticks(10.0));
        let a = k.accounting();
        assert!((a.idle - 10.0).abs() < 1e-9);
        assert_eq!(a.user, 0.0);
        assert!((k.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_cpu_bound_process_gets_all_cpu() {
        let mut k = Kernel::new(1);
        let pid = k.spawn(ProcessSpec::cpu_bound("hog"));
        k.run_ticks(ticks(10.0));
        assert!((k.cpu_time(pid).unwrap() - 10.0).abs() < 1e-9);
        assert!((k.accounting().user - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_equal_processes_share_fairly() {
        let mut k = Kernel::new(1);
        let a = k.spawn(ProcessSpec::cpu_bound("a"));
        let b = k.spawn(ProcessSpec::cpu_bound("b"));
        k.run_ticks(ticks(60.0));
        let ta = k.cpu_time(a).unwrap();
        let tb = k.cpu_time(b).unwrap();
        assert!((ta + tb - 60.0).abs() < 1e-6);
        assert!((ta - tb).abs() < 2.0, "ta={ta}, tb={tb}");
    }

    #[test]
    fn nice_process_yields_to_full_priority() {
        let mut k = Kernel::new(1);
        let soaker = k.spawn(ProcessSpec::cpu_bound("soaker").with_nice(19));
        // Let the soaker run (and accumulate load) for a while.
        k.run_ticks(ticks(120.0));
        let before = k.cpu_time(soaker).unwrap();
        // A full-priority job arrives: it gets nearly all CPU; the soaker
        // keeps only its anti-starvation sliver (~1 tick per second).
        let fg = k.spawn(ProcessSpec::cpu_bound("fg"));
        k.run_ticks(ticks(10.0));
        let fg_time = k.cpu_time(fg).unwrap();
        let soaker_gain = k.cpu_time(soaker).unwrap() - before;
        assert!(fg_time > 8.5, "fg only got {fg_time}s of 10");
        assert!(soaker_gain < 1.5, "soaker stole {soaker_gain}s");
        assert!(
            soaker_gain > 0.3,
            "anti-starvation aging should grant the soaker a sliver, got {soaker_gain}s"
        );
    }

    #[test]
    fn long_running_job_is_preempted_by_fresh_process() {
        // The kongo mechanism: the resident hog's p_cpu is high, so a fresh
        // short probe wins the CPU almost exclusively.
        let mut k = Kernel::new(1);
        let hog = k.spawn(ProcessSpec::cpu_bound("resident"));
        k.run_ticks(ticks(600.0));
        let hog_before = k.cpu_time(hog).unwrap();
        let probe = k.spawn(ProcessSpec::cpu_bound("probe").with_cpu_limit(1.5));
        let start = k.now();
        // Run until the probe exits.
        while k.is_alive(probe) && k.now() - start < 10.0 {
            k.tick();
        }
        let elapsed = k.now() - start;
        // The fresh probe runs at ~full speed: 1.5s of CPU in ~1.5-2s wall.
        assert!(elapsed < 2.5, "probe took {elapsed}s wall for 1.5s CPU");
        let hog_gain = k.cpu_time(hog).unwrap() - hog_before;
        assert!(hog_gain <= elapsed - 1.5 + 0.2, "hog gained {hog_gain}");
    }

    #[test]
    fn ten_second_test_process_shares_with_resident_job() {
        // …but a 10s test process cannot stay ahead: its own p_cpu catches
        // up and it ends up sharing. Occupancy lands strictly between the
        // probe's (~1.0) and the fair share (~0.5).
        let mut k = Kernel::new(1);
        let _hog = k.spawn(ProcessSpec::cpu_bound("resident"));
        k.run_ticks(ticks(600.0));
        let test = k.spawn(ProcessSpec::cpu_bound("test").with_cpu_limit(10.0));
        let start = k.now();
        while k.is_alive(test) && k.now() - start < 60.0 {
            k.tick();
        }
        let stats = k
            .drain_completed()
            .into_iter()
            .find(|s| &*s.name == "test")
            .expect("test process completed");
        let occ = stats.cpu_time / (k.now() - start);
        assert!(occ > 0.52 && occ < 0.95, "test occupancy = {occ}");
    }

    #[test]
    fn load_average_tracks_run_queue() {
        let mut k = Kernel::new(1);
        let _a = k.spawn(ProcessSpec::cpu_bound("a"));
        let _b = k.spawn(ProcessSpec::cpu_bound("b"));
        k.run_ticks(ticks(900.0));
        assert!((k.load_average().one_minute() - 2.0).abs() < 0.05);
    }

    #[test]
    fn cpu_limit_reaps_process_and_reports_stats() {
        let mut k = Kernel::new(1);
        let pid = k.spawn(ProcessSpec::cpu_bound("batch").with_cpu_limit(2.0));
        k.run_ticks(ticks(5.0));
        assert!(!k.is_alive(pid));
        let done = k.drain_completed();
        assert_eq!(done.len(), 1);
        assert!((done[0].cpu_time - 2.0).abs() < TICK);
        assert!((done[0].occupancy() - 1.0).abs() < 0.06);
        // Remaining time was idle.
        assert!((k.accounting().idle - 3.0).abs() < 0.2);
    }

    #[test]
    fn sys_fraction_accounting() {
        let mut k = Kernel::new(1);
        let _p = k.spawn(ProcessSpec::cpu_bound("syscalls").with_sys_fraction(0.25));
        k.run_ticks(ticks(40.0));
        let a = k.accounting();
        assert!((a.user - 30.0).abs() < 1e-6);
        assert!((a.sys - 10.0).abs() < 1e-6);
    }

    #[test]
    fn interrupt_load_is_system_time_nobody_owns() {
        let mut k = Kernel::new(7);
        k.set_interrupt_probability(0.5);
        let pid = k.spawn(ProcessSpec::cpu_bound("victim"));
        k.run_ticks(ticks(100.0));
        let a = k.accounting();
        // About half the quanta were stolen by interrupts.
        assert!((a.sys / 100.0 - 0.5).abs() < 0.1, "sys = {}", a.sys);
        // The victim got the rest.
        assert!((k.cpu_time(pid).unwrap() - a.user).abs() < 1e-6);
    }

    #[test]
    fn sleeping_processes_do_not_run_or_count() {
        let mut k = Kernel::new(1);
        let pid = k.spawn(ProcessSpec::cpu_bound("sleeper").sleeping());
        k.run_ticks(ticks(10.0));
        assert_eq!(k.cpu_time(pid), Some(0.0));
        assert_eq!(k.runnable_count(), 0);
        k.set_runnable(pid, true);
        assert_eq!(k.runnable_count(), 1);
        k.run_ticks(ticks(1.0));
        assert!(k.cpu_time(pid).unwrap() > 0.9);
    }

    #[test]
    fn kill_returns_stats_once() {
        let mut k = Kernel::new(1);
        let pid = k.spawn(ProcessSpec::cpu_bound("x"));
        k.run_ticks(ticks(3.0));
        let stats = k.kill(pid).unwrap();
        assert!((stats.cpu_time - 3.0).abs() < 1e-9);
        assert!((stats.wall_time - 3.0).abs() < 1e-9);
        assert!(k.kill(pid).is_none());
        assert!(!k.is_alive(pid));
    }

    #[test]
    fn accounting_totals_equal_elapsed_time() {
        let mut k = Kernel::new(3);
        k.set_interrupt_probability(0.1);
        let _a = k.spawn(ProcessSpec::cpu_bound("a").with_sys_fraction(0.2));
        let b = k.spawn(ProcessSpec::cpu_bound("b").sleeping());
        k.run_ticks(ticks(30.0));
        k.set_runnable(b, true);
        k.run_ticks(ticks(30.0));
        let a = k.accounting();
        assert!((a.total() - 60.0).abs() < 1e-6, "total = {}", a.total());
    }

    #[test]
    fn smp_runs_processes_in_parallel() {
        let mut k = Kernel::with_cpus(1, 4);
        assert_eq!(k.n_cpus(), 4);
        let pids: Vec<_> = (0..3)
            .map(|i| k.spawn(ProcessSpec::cpu_bound(format!("p{i}"))))
            .collect();
        k.run_ticks(ticks(10.0));
        // Three CPU-bound processes on four CPUs: everyone runs full speed.
        for pid in &pids {
            assert!((k.cpu_time(*pid).unwrap() - 10.0).abs() < 1e-9);
        }
        let a = k.accounting();
        assert!((a.user - 30.0).abs() < 1e-6);
        assert!((a.idle - 10.0).abs() < 1e-6); // the fourth CPU idled
        assert!((a.total() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn smp_oversubscription_shares_fairly() {
        let mut k = Kernel::with_cpus(1, 2);
        let pids: Vec<_> = (0..4)
            .map(|i| k.spawn(ProcessSpec::cpu_bound(format!("p{i}"))))
            .collect();
        k.run_ticks(ticks(300.0));
        // 4 processes on 2 CPUs: each gets ~half of the 300 s.
        for pid in &pids {
            let t = k.cpu_time(*pid).unwrap();
            assert!((t - 150.0).abs() < 10.0, "cpu_time = {t}");
        }
        // Load average counts the whole run queue, not per-CPU.
        assert!((k.load_average().one_minute() - 4.0).abs() < 0.5);
    }

    #[test]
    fn smp_accounting_totals_scale_with_cpus() {
        let mut k = Kernel::with_cpus(5, 3);
        k.set_interrupt_probability(0.2);
        let _p = k.spawn(ProcessSpec::cpu_bound("x"));
        k.run_ticks(ticks(20.0));
        let a = k.accounting();
        assert!((a.total() - 60.0).abs() < 1e-6, "total = {}", a.total());
    }

    #[test]
    fn smp_fresh_process_on_a_busy_box_finds_a_free_cpu() {
        let mut k = Kernel::with_cpus(7, 2);
        let _resident = k.spawn(ProcessSpec::cpu_bound("resident"));
        k.run_ticks(ticks(300.0));
        let test = k.spawn(ProcessSpec::cpu_bound("test"));
        k.run_ticks(ticks(10.0));
        // One resident job, two CPUs: the newcomer runs unimpeded.
        assert!((k.cpu_time(test).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_panics() {
        Kernel::with_cpus(1, 0);
    }

    #[test]
    fn process_table_reflects_scheduler_state() {
        let mut k = Kernel::new(1);
        let hog = k.spawn(ProcessSpec::cpu_bound("hog"));
        let idle = k.spawn(ProcessSpec::cpu_bound("idle").sleeping().with_nice(19));
        k.run_ticks(ticks(30.0));
        let table = k.process_table();
        assert_eq!(table.len(), 2);
        let hog_row = table.iter().find(|v| v.pid == hog).expect("listed");
        let idle_row = table.iter().find(|v| v.pid == idle).expect("listed");
        assert!(hog_row.runnable && !idle_row.runnable);
        assert!((hog_row.cpu_time - 30.0).abs() < 1e-9);
        assert_eq!(idle_row.cpu_time, 0.0);
        // The running hog's accumulated p_cpu puts its priority above the
        // sleeping process's nice-laden but idle one? Both visible anyway:
        assert!(hog_row.p_cpu > 0.0);
        assert!(hog_row.priority > crate::PUSER);
        assert!((hog_row.age - 30.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_clamps_degenerate_wall_time() {
        let s = ProcessStats {
            pid: Pid(1),
            name: "z".into(),
            cpu_time: 1.0,
            wall_time: 0.0,
            nice: 0,
        };
        assert_eq!(s.occupancy(), 0.0);
    }
}
