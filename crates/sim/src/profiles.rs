//! Workload profiles for the six UCSD hosts of the paper.
//!
//! "The hosts thing1, thing2, and conundrum are interactive workstations
//! used for research by graduate students, while beowulf, gremlin, and
//! kongo are general departmental servers available to faculty and
//! students." Each profile below synthesizes the load pattern the paper
//! attributes to its host; the two priority pathologies (conundrum's
//! `nice +19` soaker, kongo's long-running full-priority job) are modeled
//! mechanistically so the sensor errors *emerge* from scheduler behaviour.

use crate::host::Host;
use crate::workload::{
    BatchArrivals, BatchConfig, Diurnal, GatewayInterrupts, InteractiveSessions, LongRunningHog,
    NiceSoaker, SessionConfig,
};
use nws_stats::Pareto;

/// The six hosts of Tables 1–6, in the paper's row order.
pub const UCSD_HOST_NAMES: [&str; 6] = [
    "thing2",
    "thing1",
    "conundrum",
    "beowulf",
    "gremlin",
    "kongo",
];

/// A named host workload profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostProfile {
    /// Busy interactive graduate-student workstation.
    Thing2,
    /// Moderately loaded interactive workstation.
    Thing1,
    /// Workstation with a `nice +19` background cycle-soaker.
    Conundrum,
    /// Departmental compute server: batch jobs + gateway interrupt load.
    Beowulf,
    /// Lightly loaded departmental server.
    Gremlin,
    /// Server running a long-lived full-priority CPU-bound job.
    Kongo,
}

impl HostProfile {
    /// The profile's canonical host name.
    pub fn name(&self) -> &'static str {
        match self {
            HostProfile::Thing2 => "thing2",
            HostProfile::Thing1 => "thing1",
            HostProfile::Conundrum => "conundrum",
            HostProfile::Beowulf => "beowulf",
            HostProfile::Gremlin => "gremlin",
            HostProfile::Kongo => "kongo",
        }
    }

    /// Looks a profile up by host name (case-sensitive).
    pub fn by_name(name: &str) -> Option<HostProfile> {
        Some(match name {
            "thing2" => HostProfile::Thing2,
            "thing1" => HostProfile::Thing1,
            "conundrum" => HostProfile::Conundrum,
            "beowulf" => HostProfile::Beowulf,
            "gremlin" => HostProfile::Gremlin,
            "kongo" => HostProfile::Kongo,
            _ => return None,
        })
    }

    /// All six profiles in the paper's row order.
    pub fn all() -> [HostProfile; 6] {
        [
            HostProfile::Thing2,
            HostProfile::Thing1,
            HostProfile::Conundrum,
            HostProfile::Beowulf,
            HostProfile::Gremlin,
            HostProfile::Kongo,
        ]
    }

    /// Builds the host with its workload attached. `seed` controls every
    /// stochastic choice; the same `(profile, seed)` pair reproduces the
    /// same trace bit-for-bit.
    pub fn build(&self, seed: u64) -> Host {
        let mut host = Host::new(self.name(), seed);
        // Interactive load is modeled as sessions whose active phases last
        // minutes (so the 1-minute load average is a meaningful predictor)
        // but whose CPU consumption inside a phase is interleaved with I/O
        // at the sub-second scale (duty ~0.3, 0.4 s micro-slices) — real
        // editors, compiles and simulations, not synthetic spin loops.
        let session = |arrival_mean: f64, bursts: f64, max: usize, duty: f64| SessionConfig {
            arrival_mean,
            // Tail index α = 1.8: a superposition of these on/off phases has
            // implied Hurst (3 − α)/2 = 0.6; load-average smoothing and the
            // small-sample bias of R/S land the measured estimates near the
            // paper's 0.7.
            burst: Pareto::new(1.8, 120.0).with_cap(7200.0), // mean ≈ 4.5 min
            think: Pareto::new(1.8, 240.0).with_cap(10800.0), // mean ≈ 9 min
            bursts_per_session: bursts,
            sys_fraction: 0.15,
            max_concurrent: max,
            duty,
            micro_on_mean: 1.0,
            // Grad-student diurnal rhythm: the paper's traces run noon to
            // noon with visible day/night structure (Figure 1).
            diurnal: Some(Diurnal::working_day(0.5)),
        };
        // Background daemon churn common to every Unix host: frequent,
        // tiny, full-priority jobs (cron, mail delivery, shell commands).
        // This fast, memoryless component is what keeps the measured Hurst
        // parameter in the paper's 0.7–0.8 band instead of saturating — the
        // availability series mixes slow session persistence with fast
        // daemon noise, exactly the "short-term self-similarity" structure
        // the paper cites from Gribble et al.
        {
            let rng = host.fork_rng("daemons");
            host.add_workload(Box::new(BatchArrivals::new(
                format!("{}-daemons", self.name()),
                BatchConfig {
                    arrival_mean: 120.0,
                    demand: Pareto::new(1.5, 0.4).with_cap(5.0),
                    nice: 0,
                    sys_fraction: 0.4,
                    max_concurrent: 3,
                    duty: 1.0,
                    micro_on_mean: 0.4,
                },
                rng,
            )));
        }
        match self {
            HostProfile::Thing2 => {
                // Busy workstation: many concurrent sessions.
                let rng = host.fork_rng("sessions");
                host.add_workload(Box::new(InteractiveSessions::new(
                    "thing2-users",
                    session(600.0, 8.0, 12, 0.32),
                    rng,
                )));
            }
            HostProfile::Thing1 => {
                // Moderate workstation.
                let rng = host.fork_rng("sessions");
                host.add_workload(Box::new(InteractiveSessions::new(
                    "thing1-users",
                    session(1450.0, 8.0, 8, 0.25),
                    rng,
                )));
            }
            HostProfile::Conundrum => {
                // The nice +19 soaker, plus sparse real use.
                let rng = host.fork_rng("soaker");
                host.add_workload(Box::new(NiceSoaker::new("conundrum-bg", 600.0, 0.0, rng)));
                let rng = host.fork_rng("sessions");
                host.add_workload(Box::new(InteractiveSessions::new(
                    "conundrum-users",
                    session(10800.0, 8.0, 3, 0.25),
                    rng,
                )));
            }
            HostProfile::Beowulf => {
                // Compute server: batch jobs, moderate sessions, NFS/gateway
                // interrupt load.
                let rng = host.fork_rng("batch");
                host.add_workload(Box::new(BatchArrivals::new(
                    "beowulf-batch",
                    BatchConfig {
                        arrival_mean: 1200.0,
                        demand: Pareto::new(1.3, 60.0).with_cap(2400.0),
                        nice: 0,
                        sys_fraction: 0.08,
                        max_concurrent: 3,
                        duty: 0.4,
                        micro_on_mean: 0.5,
                    },
                    rng,
                )));
                let rng = host.fork_rng("sessions");
                host.add_workload(Box::new(InteractiveSessions::new(
                    "beowulf-users",
                    session(2600.0, 8.0, 6, 0.25),
                    rng,
                )));
                let rng = host.fork_rng("gateway");
                host.add_workload(Box::new(GatewayInterrupts::new(
                    "beowulf-gw",
                    0.01,
                    0.06,
                    300.0,
                    rng,
                )));
            }
            HostProfile::Gremlin => {
                // Lightly loaded server.
                let rng = host.fork_rng("sessions");
                host.add_workload(Box::new(InteractiveSessions::new(
                    "gremlin-users",
                    session(5200.0, 8.0, 5, 0.2),
                    rng,
                )));
                let rng = host.fork_rng("batch");
                host.add_workload(Box::new(BatchArrivals::new(
                    "gremlin-batch",
                    BatchConfig {
                        arrival_mean: 5400.0,
                        demand: Pareto::new(1.4, 30.0).with_cap(900.0),
                        nice: 0,
                        sys_fraction: 0.05,
                        max_concurrent: 2,
                        duty: 0.4,
                        micro_on_mean: 0.5,
                    },
                    rng,
                )));
            }
            HostProfile::Kongo => {
                // The resident long-running full-priority job, plus sparse
                // interactive use.
                host.add_workload(Box::new(LongRunningHog::new("kongo-res", 0.0, 0.05)));
                let rng = host.fork_rng("sessions");
                host.add_workload(Box::new(InteractiveSessions::new(
                    "kongo-users",
                    session(3000.0, 8.0, 3, 0.25),
                    rng,
                )));
            }
        }
        host
    }
}

/// Builds all six UCSD hosts with per-host seeds derived from `base_seed`.
pub fn ucsd_hosts(base_seed: u64) -> Vec<Host> {
    HostProfile::all()
        .iter()
        .map(|p| {
            // Per-host seed: FNV-1a of the name, xor'd with the base.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in p.name().as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            p.build(h ^ base_seed)
        })
        .collect()
}

/// A synthetic fleet host: a statistical stand-in for one monitored
/// machine, cheap enough to instantiate by the hundred thousand.
///
/// The full kernel simulation behind [`HostProfile::build`] costs ~100
/// scheduler ticks per measurement slot — ideal for fidelity at six
/// hosts, hopeless for a 10⁵-host sweep. Each synthetic host instead
/// draws CPU availability from an AR(1) process with occasional regime
/// shifts, anchored at one of six long-run levels spanning the UCSD
/// machines (busy workstation ≈ 0.35 through idle server ≈ 0.9). State
/// is a few words, stepping is a handful of arithmetic ops, and the
/// trajectory is a pure function of `(index, base_seed)` — the
/// determinism contract the event engine needs.
#[derive(Debug, Clone)]
pub struct SyntheticHost {
    /// xorshift64* RNG state (never zero).
    rng: u64,
    /// Long-run availability level of the current regime.
    level: f64,
    /// Current availability value.
    value: f64,
}

/// Long-run availability anchors, one per UCSD profile archetype,
/// in [`HostProfile::all`] order.
const SYNTHETIC_LEVELS: [f64; 6] = [0.35, 0.55, 0.45, 0.6, 0.9, 0.5];

impl SyntheticHost {
    /// AR(1) pull toward the regime level per 10-second slot.
    const PHI: f64 = 0.9;
    /// Innovation scale.
    const SIGMA: f64 = 0.05;
    /// Expected slots between regime shifts (~1 h at the paper cadence).
    const SHIFT_EVERY: f64 = 360.0;

    /// The host at `index` in the roster seeded by `base_seed`.
    pub fn new(index: u64, base_seed: u64) -> Self {
        // FNV-1a over the index bytes, xor'd with the base seed, so
        // every host walks an independent trajectory.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in index.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let rng = (h ^ base_seed).max(1);
        let level = SYNTHETIC_LEVELS[(index % 6) as usize];
        Self {
            rng,
            level,
            value: level,
        }
    }

    /// Next raw RNG draw (xorshift64*).
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Advances one measurement slot and returns the availability in
    /// `[0, 1]`.
    pub fn step(&mut self) -> f64 {
        if self.next_f64() < 1.0 / Self::SHIFT_EVERY {
            // Regime shift: re-anchor near the profile level.
            self.level = (SYNTHETIC_LEVELS[(self.next_u64() % 6) as usize]
                + 0.2 * (self.next_f64() - 0.5))
                .clamp(0.05, 0.98);
        }
        let noise = 2.0 * (self.next_f64() - 0.5);
        self.value = (self.level + Self::PHI * (self.value - self.level) + Self::SIGMA * noise)
            .clamp(0.0, 1.0);
        self.value
    }
}

/// The display name of roster slot `index` (`fleet-000042`-style;
/// generated on demand so a 10⁵-host roster carries no name storage).
pub fn synthetic_host_name(index: usize) -> String {
    format!("fleet-{index:06}")
}

/// A synthetic roster of `n` hosts cycling the six profile archetypes.
pub fn synthetic_roster(n: usize, base_seed: u64) -> Vec<SyntheticHost> {
    (0..n as u64)
        .map(|i| SyntheticHost::new(i, base_seed))
        .collect()
}

/// Records one availability trace per UCSD profile host: each host is
/// built from `base_seed`, warmed past its load-average spin-up, sampled
/// at the paper's 10-second cadence for `samples` slots, and each
/// run-queue level is mapped through Eq. 1 — a new process joining `r`
/// runnable competitors receives `1 / (1 + r)` of the CPU.
///
/// The result is the fleet tier's trace-mixture roster: six real
/// workload shapes (interactive sessions, batch hogs, self-similar
/// on/off sources) a fleet of any size can replay.
pub fn ucsd_availability_traces(base_seed: u64, samples: usize) -> Vec<Vec<f64>> {
    ucsd_hosts(base_seed)
        .into_iter()
        .map(|mut host| {
            // Let sessions spawn and the load average settle before
            // recording, as the paper's traces start on warm machines.
            host.advance(600.0);
            crate::trace::record_load_trace(&mut host, 10.0, samples)
                .levels
                .iter()
                .map(|&l| 1.0 / (1.0 + f64::from(l)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_traces_are_deterministic_and_in_range() {
        let a = ucsd_availability_traces(7, 50);
        let b = ucsd_availability_traces(7, 50);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6, "one trace per UCSD profile");
        for trace in &a {
            assert_eq!(trace.len(), 50);
            assert!(trace.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        // The profiles are genuinely different workloads: the busiest
        // and idlest machines must not record the same mean availability.
        let means: Vec<f64> = a
            .iter()
            .map(|t| t.iter().sum::<f64>() / t.len() as f64)
            .collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo > 0.05, "means: {means:?}");
    }

    #[test]
    fn names_round_trip() {
        for p in HostProfile::all() {
            assert_eq!(HostProfile::by_name(p.name()), Some(p));
        }
        assert_eq!(HostProfile::by_name("nonesuch"), None);
    }

    #[test]
    fn row_order_matches_paper() {
        let names: Vec<&str> = HostProfile::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, UCSD_HOST_NAMES.to_vec());
    }

    #[test]
    fn builds_are_deterministic() {
        let mut a = HostProfile::Thing1.build(99);
        let mut b = HostProfile::Thing1.build(99);
        a.advance(1800.0);
        b.advance(1800.0);
        assert_eq!(a.accounting(), b.accounting());
        assert_eq!(a.load_average().one_minute(), b.load_average().one_minute());
    }

    #[test]
    fn seeds_differentiate_traces() {
        let mut a = HostProfile::Thing2.build(1);
        let mut b = HostProfile::Thing2.build(2);
        a.advance(3600.0);
        b.advance(3600.0);
        assert_ne!(a.accounting(), b.accounting());
    }

    #[test]
    fn kongo_is_saturated_conundrum_is_nice_loaded() {
        let probe_mean = |host: &mut crate::host::Host| {
            let mut acc = 0.0;
            for _ in 0..5 {
                acc += host.run_cpu_limited_probe("probe", 1.5, 8.0);
                host.advance(60.0);
            }
            acc / 5.0
        };
        let mut kongo = HostProfile::Kongo.build(7);
        kongo.advance(1800.0);
        assert!(kongo.load_average().one_minute() > 0.9);
        // The probe still sees a mostly-available CPU (priority decay of
        // the resident job); individual probes can be disturbed by daemon
        // churn, so average a handful.
        // Far above the ~0.5 fair share the load average implies (the
        // anti-starvation sliver and session churn cost the probe a bit).
        let occ = probe_mean(&mut kongo);
        assert!(occ > 0.65, "kongo probe = {occ}");

        let mut con = HostProfile::Conundrum.build(7);
        con.advance(1800.0);
        // The soaker is on (probe preempts it) or off (idle): both ways
        // the probe sees freedom.
        let occ = probe_mean(&mut con);
        assert!(occ > 0.7, "conundrum probe = {occ}");
    }

    #[test]
    fn ucsd_hosts_builds_all_six() {
        let hosts = ucsd_hosts(42);
        assert_eq!(hosts.len(), 6);
        let names: Vec<&str> = hosts.iter().map(|h| h.name()).collect();
        assert_eq!(names, UCSD_HOST_NAMES.to_vec());
    }

    #[test]
    fn synthetic_hosts_are_deterministic_and_bounded() {
        let mut a = SyntheticHost::new(17, 4242);
        let mut b = SyntheticHost::new(17, 4242);
        let mut c = SyntheticHost::new(18, 4242);
        let mut diverged = false;
        for _ in 0..2000 {
            let va = a.step();
            assert_eq!(va.to_bits(), b.step().to_bits());
            assert!((0.0..=1.0).contains(&va));
            if va.to_bits() != c.step().to_bits() {
                diverged = true;
            }
        }
        assert!(diverged, "distinct indices must walk distinct trajectories");
    }

    #[test]
    fn synthetic_roster_shapes() {
        let roster = synthetic_roster(13, 7);
        assert_eq!(roster.len(), 13);
        assert_eq!(synthetic_host_name(42), "fleet-000042");
        // Regime anchors cycle the six archetypes: hosts 0 and 6 share a
        // level but not a trajectory.
        let mut h0 = SyntheticHost::new(0, 7);
        let mut h6 = SyntheticHost::new(6, 7);
        assert_ne!(h0.step().to_bits(), h6.step().to_bits());
    }
}
