//! A simulated host: kernel + workload sources + the probe/test API.

use crate::kernel::{Accounting, Kernel, ProcessStats};
use crate::loadavg::LoadAverage;
use crate::process::{Pid, ProcessSpec};
use crate::workload::Workload;
use crate::{Seconds, TICK};
use nws_stats::Rng;

/// One simulated time-shared Unix host under stochastic load.
///
/// A `Host` owns a [`Kernel`] and a set of [`Workload`] sources, advances
/// them together in 100 ms quanta, and offers the two active measurement
/// operations the paper uses:
///
/// - [`Host::run_occupancy_process`] — spawn a full-priority CPU-bound
///   process for a fixed wall-clock duration and report the fraction of the
///   CPU it obtained (the paper's 10 s / 5 min *test process*);
/// - [`Host::run_cpu_limited_probe`] — spin for a fixed amount of *CPU*
///   time and report CPU/wall (the NWS hybrid sensor's 1.5 s *probe*).
///
/// # Examples
///
/// ```
/// use nws_sim::{Host, ProcessSpec};
///
/// let mut host = Host::new("box", 42);
/// host.kernel_mut().spawn(ProcessSpec::cpu_bound("background"));
/// host.advance(600.0);
/// // One resident CPU-bound job: load average reads ~1 and a 10-second
/// // test process obtains roughly its fair-to-favoured share.
/// assert!((host.load_average().one_minute() - 1.0).abs() < 0.1);
/// let occ = host.run_occupancy_process("test", 10.0);
/// assert!(occ > 0.4 && occ < 0.95, "occ = {occ}");
/// ```
#[derive(Debug)]
pub struct Host {
    name: String,
    kernel: Kernel,
    workloads: Vec<Box<dyn Workload>>,
    rng: Rng,
}

impl Host {
    /// Creates an idle host. All randomness (kernel interrupts and any
    /// workloads added later via [`Host::fork_rng`]) derives from `seed`.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Self::with_cpus(name, seed, 1)
    }

    /// Creates an idle host with `n_cpus` processors (the paper's future
    /// work: shared-memory multiprocessors).
    ///
    /// # Panics
    ///
    /// Panics if `n_cpus == 0`.
    pub fn with_cpus(name: impl Into<String>, seed: u64, n_cpus: usize) -> Self {
        let mut rng = Rng::new(seed);
        let kernel_seed = rng.fork("kernel").next_u64();
        Self {
            name: name.into(),
            kernel: Kernel::with_cpus(kernel_seed, n_cpus),
            workloads: Vec::new(),
            rng,
        }
    }

    /// The host's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Derives a deterministic RNG stream for a workload source.
    pub fn fork_rng(&mut self, label: &str) -> Rng {
        self.rng.fork(label)
    }

    /// Attaches a workload source.
    pub fn add_workload(&mut self, workload: Box<dyn Workload>) {
        self.workloads.push(workload);
    }

    /// Current simulation time (seconds).
    pub fn now(&self) -> Seconds {
        self.kernel.now()
    }

    /// Read-only access to the kernel (load averages, accounting, …).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel, for spawning ad-hoc processes.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The kernel's load averages.
    pub fn load_average(&self) -> &LoadAverage {
        self.kernel.load_average()
    }

    /// Cumulative user/sys/idle accounting.
    pub fn accounting(&self) -> Accounting {
        self.kernel.accounting()
    }

    /// Instantaneous run-queue length.
    pub fn runnable_count(&self) -> usize {
        self.kernel.runnable_count()
    }

    /// Advances the simulation by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not a non-negative multiple of the 100 ms quantum
    /// (all the paper's cadences are).
    pub fn advance(&mut self, dt: Seconds) {
        assert!(dt >= 0.0, "cannot advance backwards");
        let ticks = (dt / TICK).round();
        assert!(
            (dt - ticks * TICK).abs() < 1e-6,
            "dt = {dt}s is not a multiple of the {TICK}s quantum"
        );
        for _ in 0..ticks as u64 {
            for w in &mut self.workloads {
                w.on_tick(&mut self.kernel);
            }
            self.kernel.tick();
        }
    }

    /// Advances the simulation to absolute time `t` (no-op if in the past).
    pub fn advance_to(&mut self, t: Seconds) {
        let dt = t - self.now();
        if dt > 0.0 {
            // Round to the tick grid.
            let ticks = (dt / TICK).round();
            self.advance(ticks * TICK);
        }
    }

    /// Runs a full-priority CPU-bound process for `duration` wall-clock
    /// seconds and returns the fraction of the CPU it obtained — the
    /// paper's probe (1.5 s) and test process (10 s / 5 min) primitive.
    ///
    /// The simulation advances by exactly `duration`.
    pub fn run_occupancy_process(
        &mut self,
        name: impl Into<std::sync::Arc<str>>,
        duration: Seconds,
    ) -> f64 {
        assert!(duration > 0.0);
        let pid = self.kernel.spawn(ProcessSpec::cpu_bound(name));
        self.advance(duration);
        let stats = self
            .kernel
            .kill(pid)
            .expect("occupancy process still alive at deadline");
        stats.occupancy()
    }

    /// Runs a full-priority process that spins for `cpu_time` seconds of
    /// CPU and reports `cpu_time / wall_time` — the NWS probe primitive
    /// ("reports the ratio of the CPU time it used to the wall-clock time
    /// that passed"). The wall time stretches under contention, so a busy
    /// host yields a low ratio. `max_wall` bounds the wait; if the budget
    /// is not consumed by then, the ratio over the elapsed wall is
    /// reported.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cpu_time <= max_wall`.
    pub fn run_cpu_limited_probe(
        &mut self,
        name: impl Into<std::sync::Arc<str>>,
        cpu_time: Seconds,
        max_wall: Seconds,
    ) -> f64 {
        assert!(cpu_time > 0.0 && cpu_time <= max_wall, "bad probe budget");
        let pid = self
            .kernel
            .spawn(ProcessSpec::cpu_bound(name).with_cpu_limit(cpu_time));
        let start = self.now();
        while self.kernel.is_alive(pid) && self.now() - start < max_wall - 1e-9 {
            self.advance(TICK);
        }
        let stats = self
            .kernel
            .remove_completed(pid)
            .or_else(|| self.kernel.kill(pid))
            .expect("probe either completed or is still alive");
        stats.occupancy()
    }

    /// Power-cycles the host: the kernel reboots (processes lost,
    /// counters zeroed), the clock jumps to absolute time `t` (the dark
    /// span of the outage — nothing runs, nothing is accounted), and
    /// every workload is told to forget its dead processes so it
    /// re-establishes itself on subsequent ticks.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past or not on the tick grid.
    pub fn power_cycle_until(&mut self, t: Seconds) {
        let dt = t - self.now();
        assert!(dt >= 0.0, "cannot reboot into the past");
        let ticks = (dt / TICK).round();
        assert!(
            (dt - ticks * TICK).abs() < 1e-6,
            "reboot target {t}s is not on the {TICK}s tick grid"
        );
        self.kernel.reboot();
        self.kernel.skip_ticks(ticks as u64);
        for w in &mut self.workloads {
            w.on_reboot();
        }
    }

    /// Spawns an ad-hoc process (passthrough to the kernel).
    pub fn spawn(&mut self, spec: ProcessSpec) -> Pid {
        self.kernel.spawn(spec)
    }

    /// Kills an ad-hoc process (passthrough to the kernel).
    pub fn kill(&mut self, pid: Pid) -> Option<ProcessStats> {
        self.kernel.kill(pid)
    }

    /// Drains the kernel's completed-process list.
    pub fn drain_completed(&mut self) -> Vec<ProcessStats> {
        self.kernel.drain_completed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{LongRunningHog, NiceSoaker};

    #[test]
    fn idle_host_gives_probe_full_cpu() {
        let mut h = Host::new("idle", 1);
        h.advance(60.0);
        let occ = h.run_occupancy_process("probe", 1.5);
        assert!((occ - 1.0).abs() < 0.08, "occ = {occ}");
    }

    #[test]
    fn advance_rejects_subtick_steps() {
        let mut h = Host::new("x", 1);
        h.advance(0.1); // ok
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.advance(0.05);
        }));
        assert!(res.is_err());
    }

    #[test]
    fn advance_to_is_idempotent_for_past_times() {
        let mut h = Host::new("x", 1);
        h.advance_to(10.0);
        let t = h.now();
        h.advance_to(5.0);
        assert_eq!(h.now(), t);
    }

    #[test]
    fn conundrum_mechanism_probe_sees_through_nice_load() {
        let mut h = Host::new("conundrum", 2);
        let rng = h.fork_rng("soaker");
        h.add_workload(Box::new(NiceSoaker::new("bg", 300.0, 0.0, rng)));
        h.advance(600.0);
        // Load average says the machine is busy…
        assert!(h.load_average().one_minute() > 0.9);
        // …but a full-priority probe gets nearly everything.
        let occ = h.run_occupancy_process("probe", 1.5);
        assert!(occ > 0.9, "probe occupancy = {occ}");
    }

    #[test]
    fn kongo_mechanism_probe_overestimates_test_underneath() {
        let mut h = Host::new("kongo", 3);
        h.add_workload(Box::new(LongRunningHog::new("res", 0.0, 0.0)));
        h.advance(900.0);
        let probe = h.run_occupancy_process("probe", 1.5);
        h.advance(60.0);
        let test = h.run_occupancy_process("test", 10.0);
        // The fresh 1.5s probe preempts the priority-decayed hog…
        assert!(probe > 0.85, "probe = {probe}");
        // …while the 10s test process ends up sharing.
        assert!(test < probe - 0.2, "test = {test}, probe = {probe}");
        assert!(test > 0.4, "test = {test}");
    }

    #[test]
    fn occupancy_process_advances_time() {
        let mut h = Host::new("x", 1);
        let t0 = h.now();
        let _ = h.run_occupancy_process("p", 10.0);
        assert!((h.now() - t0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn power_cycle_clears_processes_and_jumps_clock() {
        let mut h = Host::new("x", 1);
        h.kernel_mut().spawn(ProcessSpec::cpu_bound("victim"));
        h.advance(120.0);
        assert_eq!(h.kernel().process_count(), 1);
        h.power_cycle_until(300.0);
        assert_eq!(h.now(), 300.0);
        assert_eq!(h.kernel().process_count(), 0);
        // Fresh-boot counters: no accounting, empty load averages.
        assert_eq!(h.accounting().total(), 0.0);
        assert_eq!(h.load_average().one_minute(), 0.0);
        // The clock stays monotonic and keeps advancing normally.
        h.advance(60.0);
        assert_eq!(h.now(), 360.0);
        assert!((h.accounting().total() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn workloads_reestablish_after_power_cycle() {
        let mut h = Host::new("kongo", 3);
        h.add_workload(Box::new(LongRunningHog::new("res", 0.0, 0.0)));
        h.advance(300.0);
        assert_eq!(h.kernel().process_count(), 1);
        h.power_cycle_until(600.0);
        assert_eq!(h.kernel().process_count(), 0);
        // The hog restarts on the next ticks and owns the machine again.
        h.advance(60.0);
        assert_eq!(h.kernel().process_count(), 1);
        assert!(h.accounting().user > 55.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn power_cycle_rejects_past_target() {
        let mut h = Host::new("x", 1);
        h.advance(100.0);
        h.power_cycle_until(50.0);
    }
}
