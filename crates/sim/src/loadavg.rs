//! Kernel load-average computation.
//!
//! Unix samples the run-queue length every 5 seconds and folds it into
//! exponentially smoothed averages over 1-, 5- and 15-minute horizons:
//!
//! `load ← load·e^(−T/τ) + n·(1 − e^(−T/τ))`
//!
//! with sample period `T = 5 s` and `τ ∈ {60, 300, 900}`. The paper's
//! Eq. 1 sensor reads the 1-minute average; its smoothing lag relative to
//! instantaneous occupancy is one of the measurement-error sources the
//! paper quantifies ("Fearing load average to be insensitive to short-term
//! load variability…").

use crate::{Seconds, LOAD_SAMPLE_PERIOD};

/// The classical 1/5/15-minute exponentially smoothed load averages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadAverage {
    one: f64,
    five: f64,
    fifteen: f64,
    exp_one: f64,
    exp_five: f64,
    exp_fifteen: f64,
}

impl Default for LoadAverage {
    fn default() -> Self {
        Self::new()
    }
}

impl LoadAverage {
    /// Creates a load average starting at zero (an idle, freshly booted
    /// host).
    pub fn new() -> Self {
        let decay = |tau: f64| (-LOAD_SAMPLE_PERIOD / tau).exp();
        Self {
            one: 0.0,
            five: 0.0,
            fifteen: 0.0,
            exp_one: decay(60.0),
            exp_five: decay(300.0),
            exp_fifteen: decay(900.0),
        }
    }

    /// Folds in one 5-second run-queue sample of `n` runnable processes.
    pub fn sample(&mut self, n: usize) {
        let n = n as f64;
        self.one = self.one * self.exp_one + n * (1.0 - self.exp_one);
        self.five = self.five * self.exp_five + n * (1.0 - self.exp_five);
        self.fifteen = self.fifteen * self.exp_fifteen + n * (1.0 - self.exp_fifteen);
    }

    /// The 1-minute load average (what `uptime` reports first and what the
    /// NWS sensor uses).
    pub fn one_minute(&self) -> f64 {
        self.one
    }

    /// The 5-minute load average.
    pub fn five_minute(&self) -> f64 {
        self.five
    }

    /// The 15-minute load average.
    pub fn fifteen_minute(&self) -> f64 {
        self.fifteen
    }

    /// Approximate time constant after which a step change in load is
    /// `frac` absorbed into the 1-minute average. Exposed for tests and
    /// documentation of smoothing lag.
    pub fn one_minute_settle_time(frac: f64) -> Seconds {
        assert!((0.0..1.0).contains(&frac));
        -60.0 * (1.0 - frac).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(la: &mut LoadAverage, n: usize, seconds: f64) {
        let samples = (seconds / LOAD_SAMPLE_PERIOD) as usize;
        for _ in 0..samples {
            la.sample(n);
        }
    }

    #[test]
    fn starts_at_zero() {
        let la = LoadAverage::new();
        assert_eq!(la.one_minute(), 0.0);
        assert_eq!(la.five_minute(), 0.0);
        assert_eq!(la.fifteen_minute(), 0.0);
    }

    #[test]
    fn converges_to_constant_run_queue() {
        let mut la = LoadAverage::new();
        settle(&mut la, 2, 4.0 * 3600.0);
        assert!((la.one_minute() - 2.0).abs() < 1e-6);
        assert!((la.five_minute() - 2.0).abs() < 1e-3);
        assert!((la.fifteen_minute() - 2.0).abs() < 1e-2);
    }

    #[test]
    fn one_minute_reacts_faster_than_fifteen() {
        let mut la = LoadAverage::new();
        settle(&mut la, 1, 60.0);
        assert!(la.one_minute() > la.five_minute());
        assert!(la.five_minute() > la.fifteen_minute());
        // After one minute, ~63% of a step is absorbed into the 1-min avg.
        assert!((la.one_minute() - (1.0 - (-1.0f64).exp())).abs() < 0.02);
    }

    #[test]
    fn smoothing_lag_matches_time_constant() {
        // 95% settle time of the 1-minute average is ~3 minutes.
        let t = LoadAverage::one_minute_settle_time(0.95);
        assert!((t - 180.0).abs() < 1.0, "t = {t}");
        let mut la = LoadAverage::new();
        settle(&mut la, 1, t);
        assert!((la.one_minute() - 0.95).abs() < 0.01);
    }

    #[test]
    fn decays_when_queue_empties() {
        let mut la = LoadAverage::new();
        settle(&mut la, 4, 3600.0);
        settle(&mut la, 0, 60.0);
        assert!(la.one_minute() < 4.0 * 0.4);
        assert!(la.fifteen_minute() > 3.5);
    }
}
