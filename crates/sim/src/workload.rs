//! Stochastic workload generators.
//!
//! The six UCSD hosts in the paper are production machines under live
//! departmental load. These generators synthesize that load mechanistically:
//!
//! - [`InteractiveSessions`] — the workhorse. Poisson arrivals of user
//!   sessions, each alternating **Pareto-distributed CPU bursts** with
//!   Pareto think times. A superposition of heavy-tailed on/off sources has
//!   long-range-dependent aggregate load with `H = (3 − α)/2` (Willinger et
//!   al., the paper's reference \[28\]) — this is where the reproduction's
//!   H ≈ 0.7 availability traces come from.
//! - [`BatchArrivals`] — fire-and-forget CPU-bound jobs with heavy-tailed
//!   service demand (compute servers like *beowulf*).
//! - [`NiceSoaker`] — a `nice +19` background cycle-soaker with a duty
//!   cycle (*conundrum*).
//! - [`LongRunningHog`] — a persistent full-priority CPU-bound job
//!   (*kongo*).
//! - [`GatewayInterrupts`] — kernel interrupt load that consumes quanta as
//!   unattributable system time (the departmental-gateway anecdote under
//!   Eq. 2).
//! - [`FgnLoad`] — a non-mechanistic alternative that replays fractional
//!   Gaussian noise as a target run-queue level; used to validate the
//!   forecasters on textbook long-range-dependent input.

use crate::kernel::Kernel;
use crate::process::{Pid, ProcessSpec};
use crate::Seconds;
use nws_stats::{DaviesHarte, Distribution, Exponential, Pareto, Rng};
use std::sync::Arc;

/// A source of load on a simulated host, polled once per scheduling tick.
///
/// `Send` is a supertrait so whole hosts (which own boxed workloads) can be
/// moved onto worker threads by the parallel experiment drivers.
pub trait Workload: std::fmt::Debug + Send {
    /// Display name (for traces and debugging).
    fn name(&self) -> &str;

    /// Called once per tick, before the kernel dispatches. The workload may
    /// spawn, kill, or (un)block its processes.
    fn on_tick(&mut self, kernel: &mut Kernel);

    /// Called after the host's kernel reboots: every process the workload
    /// spawned is gone, so it must drop its stale [`Pid`]s and
    /// re-establish itself on subsequent ticks. The default is a no-op
    /// for stateless sources.
    fn on_reboot(&mut self) {}
}

// ---------------------------------------------------------------------------
// Interactive sessions
// ---------------------------------------------------------------------------

/// Sinusoidal day/night modulation of arrival rates.
///
/// Real departmental load has diurnal structure (the paper's Figure 1
/// traces run noon → noon with visible day/night phases). Arrival
/// *thinning*: an arrival drawn from the base Poisson process is kept with
/// probability `(1 + amplitude·sin(2π(t − phase)/period)) / (1 + amplitude)`,
/// which modulates the effective rate without touching the stream of draws
/// (so determinism and Little's-law priming stay valid for the mean rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    /// Cycle length in seconds (86 400 for a day).
    pub period: Seconds,
    /// Modulation depth in `[0, 1]`: 0 = flat, 1 = rate swings between 0
    /// and 2× the mean.
    pub amplitude: f64,
    /// Time of the rate peak within the cycle (seconds).
    pub peak_at: Seconds,
}

impl Diurnal {
    /// A standard working-day pattern: 24 h period, peak mid-afternoon.
    pub fn working_day(amplitude: f64) -> Self {
        assert!((0.0..=1.0).contains(&amplitude), "amplitude in [0, 1]");
        Self {
            period: 86_400.0,
            amplitude,
            peak_at: 15.0 * 3600.0, // 3 pm
        }
    }

    /// Acceptance probability for an arrival at time `t` (thinning).
    pub fn keep_probability(&self, t: Seconds) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (t - self.peak_at) / self.period;
        (1.0 + self.amplitude * phase.cos()) / (1.0 + self.amplitude)
    }
}

/// Configuration for [`InteractiveSessions`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Mean seconds between session arrivals (Poisson process).
    pub arrival_mean: Seconds,
    /// CPU burst length distribution (seconds). Heavy-tailed for
    /// self-similar aggregate load.
    pub burst: Pareto,
    /// Think time distribution (seconds).
    pub think: Pareto,
    /// Mean number of bursts per session (geometric).
    pub bursts_per_session: f64,
    /// Fraction of burst CPU charged as system time.
    pub sys_fraction: f64,
    /// Hard cap on concurrently active sessions.
    pub max_concurrent: usize,
    /// Fraction of an active burst actually spent on-CPU. Real interactive
    /// CPU consumption is interleaved with I/O, page waits, and user
    /// round-trips at the sub-second scale, so session processes keep a low
    /// `p_cpu` (their priority decays back toward fresh during every
    /// micro-sleep). That is precisely why a fresh full-priority probe
    /// *shares* with them instead of preempting them outright — the kongo
    /// pathology requires a truly CPU-bound resident (duty 1.0, no
    /// micro-sleeps).
    pub duty: f64,
    /// Mean length (seconds) of one on-CPU micro-slice inside a burst. The
    /// matching micro-sleep mean is derived from `duty`.
    pub micro_on_mean: f64,
    /// Optional day/night arrival modulation.
    pub diurnal: Option<Diurnal>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            arrival_mean: 400.0,
            // α = 1.6 → implied Hurst (3 − 1.6)/2 = 0.7.
            burst: Pareto::new(1.6, 1.0).with_cap(900.0),
            think: Pareto::new(1.5, 5.0).with_cap(3600.0),
            bursts_per_session: 20.0,
            sys_fraction: 0.15,
            max_concurrent: 12,
            duty: 0.6,
            micro_on_mean: 0.6,
            diurnal: None,
        }
    }
}

#[derive(Debug)]
struct Session {
    pid: Pid,
    /// Simulation time of the next burst/think toggle.
    next_toggle: Seconds,
    /// True while in a CPU burst.
    bursting: bool,
    /// Bursts remaining before the session ends.
    bursts_left: u32,
    /// True while in the on-CPU half of the current micro-cycle.
    micro_on: bool,
    /// Simulation time of the next micro-cycle flip.
    micro_next: Seconds,
}

/// Poisson arrivals of interactive user sessions with Pareto on/off cycles.
#[derive(Debug)]
pub struct InteractiveSessions {
    name: String,
    /// Interned spawn name (`{name}-session`) so steady-state arrivals
    /// allocate nothing.
    session_name: Arc<str>,
    cfg: SessionConfig,
    rng: Rng,
    next_arrival: Seconds,
    sessions: Vec<Session>,
    /// Sessions to spawn on the first tick so the host starts in steady
    /// state rather than empty (session lifetimes are hours; without
    /// priming, a day-long trace would begin with an unrepresentative
    /// cold-start ramp).
    pending_initial: usize,
    primed: bool,
}

impl InteractiveSessions {
    /// Creates the workload. `rng` should be a stream forked for this
    /// source.
    pub fn new(name: impl Into<String>, cfg: SessionConfig, mut rng: Rng) -> Self {
        let first = Exponential::with_mean(cfg.arrival_mean).sample(&mut rng);
        // Little's law: steady-state session count = arrival rate × mean
        // session lifetime.
        let burst_mean = cfg.burst.mean().unwrap_or(0.0);
        let think_mean = cfg.think.mean().unwrap_or(0.0);
        let lifetime = cfg.bursts_per_session * (burst_mean + think_mean);
        let expected = (lifetime / cfg.arrival_mean).round() as usize;
        let name = name.into();
        Self {
            session_name: format!("{name}-session").into(),
            name,
            pending_initial: expected.min(cfg.max_concurrent),
            primed: false,
            cfg,
            rng,
            next_arrival: first,
            sessions: Vec::new(),
        }
    }

    /// Number of currently active sessions (bursting or thinking).
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    fn draw_bursts(&mut self) -> u32 {
        // Geometric with the configured mean, at least 1.
        let p = 1.0 / self.cfg.bursts_per_session.max(1.0);
        let u = self.rng.next_f64_open();
        ((u.ln() / (1.0 - p).ln()).ceil() as u32).max(1)
    }
}

impl Workload for InteractiveSessions {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_tick(&mut self, kernel: &mut Kernel) {
        let now = kernel.now();
        // Steady-state priming: spawn the expected session population with
        // randomized phase on the very first tick.
        if !self.primed {
            self.primed = true;
            let burst_mean = self.cfg.burst.mean().unwrap_or(1.0);
            let think_mean = self.cfg.think.mean().unwrap_or(1.0);
            let burst_frac = burst_mean / (burst_mean + think_mean).max(1e-9);
            for _ in 0..self.pending_initial {
                let bursts = self.draw_bursts();
                let bursting = self.rng.chance(burst_frac);
                let pid = kernel.spawn(
                    ProcessSpec::cpu_bound(Arc::clone(&self.session_name))
                        .with_sys_fraction(self.cfg.sys_fraction),
                );
                // Residual phase time: uniform fraction of a fresh draw.
                let phase = if bursting {
                    self.cfg.burst.sample(&mut self.rng)
                } else {
                    self.cfg.think.sample(&mut self.rng)
                } * self.rng.next_f64();
                kernel.set_runnable(pid, bursting);
                self.sessions.push(Session {
                    pid,
                    next_toggle: now + phase.max(crate::TICK),
                    bursting,
                    bursts_left: bursts.max(2),
                    micro_on: bursting,
                    micro_next: now,
                });
            }
        }
        // Session arrivals (with optional diurnal thinning).
        while self.next_arrival <= now {
            self.next_arrival +=
                Exponential::with_mean(self.cfg.arrival_mean).sample(&mut self.rng);
            if let Some(d) = self.cfg.diurnal {
                if !self.rng.chance(d.keep_probability(now)) {
                    continue; // thinned away: off-peak hours
                }
            }
            if self.sessions.len() >= self.cfg.max_concurrent {
                continue; // drop the arrival: the lab is full
            }
            let bursts = self.draw_bursts();
            let pid = kernel.spawn(
                ProcessSpec::cpu_bound(Arc::clone(&self.session_name))
                    .with_sys_fraction(self.cfg.sys_fraction),
            );
            let burst_len = self.cfg.burst.sample(&mut self.rng);
            self.sessions.push(Session {
                pid,
                next_toggle: now + burst_len,
                bursting: true,
                bursts_left: bursts,
                micro_on: true,
                micro_next: now,
            });
        }
        // On/off toggles and session departures.
        let mut i = 0;
        while i < self.sessions.len() {
            let due = self.sessions[i].next_toggle <= now;
            if !due {
                i += 1;
                continue;
            }
            let s = &mut self.sessions[i];
            if s.bursting {
                s.bursts_left = s.bursts_left.saturating_sub(1);
                if s.bursts_left == 0 {
                    kernel.kill(s.pid);
                    self.sessions.swap_remove(i);
                    continue;
                }
                kernel.set_runnable(s.pid, false);
                s.bursting = false;
                s.next_toggle = now + self.cfg.think.sample(&mut self.rng);
            } else {
                kernel.set_runnable(s.pid, true);
                s.bursting = true;
                s.next_toggle = now + self.cfg.burst.sample(&mut self.rng);
            }
            i += 1;
        }
        // Sub-second I/O interleaving: inside a burst the process alternates
        // on-CPU micro-slices with micro-sleeps so that its duty cycle is
        // `duty` and its `p_cpu` decays between slices.
        if self.cfg.duty < 1.0 {
            let on_mean = self.cfg.micro_on_mean.max(crate::TICK);
            let off_mean = (on_mean * (1.0 - self.cfg.duty) / self.cfg.duty).max(crate::TICK);
            for s in &mut self.sessions {
                if !s.bursting {
                    continue;
                }
                if now >= s.micro_next {
                    s.micro_on = !s.micro_on;
                    kernel.set_runnable(s.pid, s.micro_on);
                    let mean = if s.micro_on { on_mean } else { off_mean };
                    s.micro_next = now + Exponential::with_mean(mean).sample(&mut self.rng);
                }
            }
        }
    }

    fn on_reboot(&mut self) {
        // All session processes died with the kernel; users log back in
        // through the ordinary arrival process (no re-priming — a freshly
        // booted host genuinely starts empty).
        self.sessions.clear();
    }
}

// ---------------------------------------------------------------------------
// Batch arrivals
// ---------------------------------------------------------------------------

/// Configuration for [`BatchArrivals`].
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Mean seconds between job arrivals.
    pub arrival_mean: Seconds,
    /// CPU demand distribution (seconds of CPU per job).
    pub demand: Pareto,
    /// Nice value for the jobs.
    pub nice: u8,
    /// Fraction of CPU charged as system time.
    pub sys_fraction: f64,
    /// Hard cap on jobs in the system.
    pub max_concurrent: usize,
    /// On-CPU duty cycle (I/O interleaving; see [`SessionConfig::duty`]).
    /// Compute jobs are more CPU-bound than interactive sessions but still
    /// fault and read inputs.
    pub duty: f64,
    /// Mean on-CPU micro-slice length (seconds).
    pub micro_on_mean: f64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            arrival_mean: 900.0,
            demand: Pareto::new(1.3, 20.0).with_cap(3600.0),
            nice: 0,
            sys_fraction: 0.05,
            max_concurrent: 6,
            duty: 0.8,
            micro_on_mean: 1.0,
        }
    }
}

#[derive(Debug)]
struct BatchJob {
    pid: Pid,
    micro_on: bool,
    micro_next: Seconds,
}

/// Poisson arrivals of CPU-bound batch jobs; the kernel reaps each job when
/// its (heavy-tailed) CPU demand is met.
#[derive(Debug)]
pub struct BatchArrivals {
    name: String,
    /// Interned spawn name (`{name}-job`) so steady-state arrivals
    /// allocate nothing.
    job_name: Arc<str>,
    cfg: BatchConfig,
    rng: Rng,
    next_arrival: Seconds,
    jobs: Vec<BatchJob>,
    completed_jobs: u64,
    completed_cpu: Seconds,
}

impl BatchArrivals {
    /// Creates the workload.
    pub fn new(name: impl Into<String>, cfg: BatchConfig, mut rng: Rng) -> Self {
        let first = Exponential::with_mean(cfg.arrival_mean).sample(&mut rng);
        let name = name.into();
        Self {
            job_name: format!("{name}-job").into(),
            name,
            cfg,
            rng,
            next_arrival: first,
            jobs: Vec::new(),
            completed_jobs: 0,
            completed_cpu: 0.0,
        }
    }

    /// Jobs reaped so far (their completion records are consumed by the
    /// workload itself — fire-and-forget jobs have no other collector).
    pub fn completed_jobs(&self) -> u64 {
        self.completed_jobs
    }

    /// Total CPU time consumed by reaped jobs.
    pub fn completed_cpu(&self) -> Seconds {
        self.completed_cpu
    }
}

impl Workload for BatchArrivals {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_tick(&mut self, kernel: &mut Kernel) {
        let now = kernel.now();
        // Prune finished jobs (the kernel reaps at the CPU limit) and
        // consume their completion records: fire-and-forget jobs have no
        // other collector, and without this the kernel's completed list
        // grows without bound over a long monitoring run.
        for j in &self.jobs {
            if !kernel.is_alive(j.pid) {
                if let Some(stats) = kernel.remove_completed(j.pid) {
                    self.completed_jobs += 1;
                    self.completed_cpu += stats.cpu_time;
                }
            }
        }
        self.jobs.retain(|j| kernel.is_alive(j.pid));
        // I/O interleaving for running jobs (micro on/off cycles).
        if self.cfg.duty < 1.0 {
            let on_mean = self.cfg.micro_on_mean.max(crate::TICK);
            let off_mean = (on_mean * (1.0 - self.cfg.duty) / self.cfg.duty).max(crate::TICK);
            for j in &mut self.jobs {
                if now >= j.micro_next {
                    j.micro_on = !j.micro_on;
                    kernel.set_runnable(j.pid, j.micro_on);
                    let mean = if j.micro_on { on_mean } else { off_mean };
                    j.micro_next = now + Exponential::with_mean(mean).sample(&mut self.rng);
                }
            }
        }
        while self.next_arrival <= now {
            self.next_arrival +=
                Exponential::with_mean(self.cfg.arrival_mean).sample(&mut self.rng);
            if self.jobs.len() >= self.cfg.max_concurrent {
                continue;
            }
            let demand = self.cfg.demand.sample(&mut self.rng).max(crate::TICK);
            let pid = kernel.spawn(
                ProcessSpec::cpu_bound(Arc::clone(&self.job_name))
                    .with_nice(self.cfg.nice)
                    .with_sys_fraction(self.cfg.sys_fraction)
                    .with_cpu_limit(demand),
            );
            self.jobs.push(BatchJob {
                pid,
                micro_on: true,
                micro_next: now,
            });
        }
    }

    fn on_reboot(&mut self) {
        // In-flight jobs are lost; new arrivals repopulate the queue.
        self.jobs.clear();
    }
}

// ---------------------------------------------------------------------------
// Nice soaker (conundrum)
// ---------------------------------------------------------------------------

/// A `nice +19` background cycle-soaker with an on/off duty cycle.
///
/// "On conundrum, a background process was running with Unix nice priority
/// of 19 in an attempt to use otherwise unused CPU cycles" — it inflates
/// load average and vmstat occupancy but is invisible to any full-priority
/// probe or test process, which preempt it instantly.
#[derive(Debug)]
pub struct NiceSoaker {
    name: String,
    rng: Rng,
    on_mean: Seconds,
    off_mean: Seconds,
    pid: Option<Pid>,
    on: bool,
    next_toggle: Seconds,
}

impl NiceSoaker {
    /// Creates a soaker that is on for ~`on_mean` seconds then pauses for
    /// ~`off_mean` seconds (both exponential). Use `off_mean = 0` for an
    /// always-on soaker.
    pub fn new(name: impl Into<String>, on_mean: Seconds, off_mean: Seconds, rng: Rng) -> Self {
        assert!(on_mean > 0.0, "on_mean must be positive");
        assert!(off_mean >= 0.0, "off_mean must be non-negative");
        Self {
            name: name.into(),
            rng,
            on_mean,
            off_mean,
            pid: None,
            on: false,
            next_toggle: 0.0,
        }
    }
}

impl Workload for NiceSoaker {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_tick(&mut self, kernel: &mut Kernel) {
        let now = kernel.now();
        let pid = *self.pid.get_or_insert_with(|| {
            kernel.spawn(
                ProcessSpec::cpu_bound(format!("{}-soaker", self.name))
                    .with_nice(19)
                    .sleeping(),
            )
        });
        if now >= self.next_toggle {
            if self.on && self.off_mean > 0.0 {
                self.on = false;
                kernel.set_runnable(pid, false);
                self.next_toggle =
                    now + Exponential::with_mean(self.off_mean).sample(&mut self.rng);
            } else {
                self.on = true;
                kernel.set_runnable(pid, true);
                self.next_toggle = now + Exponential::with_mean(self.on_mean).sample(&mut self.rng);
            }
        }
    }

    fn on_reboot(&mut self) {
        // The soaker respawns (sleeping) on the next tick and resumes its
        // duty cycle from the off state.
        self.pid = None;
        self.on = false;
    }
}

// ---------------------------------------------------------------------------
// Long-running hog (kongo)
// ---------------------------------------------------------------------------

/// A persistent, full-priority, CPU-bound job.
///
/// "During the monitor period, a long-running, full-priority process was
/// executing on kongo." Its accumulated `p_cpu` means any *fresh* short
/// process (like the 1.5 s NWS probe) preempts it cleanly, while a
/// 10-second test process ends up time-sharing — the mechanism behind the
/// hybrid sensor's 41 % error on kongo.
#[derive(Debug)]
pub struct LongRunningHog {
    name: String,
    start_at: Seconds,
    sys_fraction: f64,
    pid: Option<Pid>,
}

impl LongRunningHog {
    /// Creates a hog that starts running at `start_at` seconds and never
    /// stops.
    pub fn new(name: impl Into<String>, start_at: Seconds, sys_fraction: f64) -> Self {
        Self {
            name: name.into(),
            start_at,
            sys_fraction,
            pid: None,
        }
    }
}

impl Workload for LongRunningHog {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_tick(&mut self, kernel: &mut Kernel) {
        if self.pid.is_none() && kernel.now() >= self.start_at {
            self.pid = Some(
                kernel.spawn(
                    ProcessSpec::cpu_bound(format!("{}-hog", self.name))
                        .with_sys_fraction(self.sys_fraction),
                ),
            );
        }
    }

    fn on_reboot(&mut self) {
        // The hog is restarted (cron / user re-launch) on the next tick.
        self.pid = None;
    }
}

// ---------------------------------------------------------------------------
// Gateway interrupts
// ---------------------------------------------------------------------------

/// Kernel interrupt load: a slowly varying per-tick probability that the
/// quantum is consumed by unattributable system time.
///
/// Models the paper's gateway anecdote: "if a machine is used as a network
/// gateway … user-level processes may be denied CPU time as the kernel
/// services network-level packet interrupts."
#[derive(Debug)]
pub struct GatewayInterrupts {
    name: String,
    rng: Rng,
    lo: f64,
    hi: f64,
    redraw_every: Seconds,
    next_redraw: Seconds,
}

impl GatewayInterrupts {
    /// Creates interrupt load whose intensity is redrawn uniformly from
    /// `[lo, hi)` every `redraw_every` seconds.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64, redraw_every: Seconds, rng: Rng) -> Self {
        assert!((0.0..1.0).contains(&lo) && lo < hi && hi < 1.0, "bad range");
        assert!(redraw_every > 0.0);
        Self {
            name: name.into(),
            rng,
            lo,
            hi,
            redraw_every,
            next_redraw: 0.0,
        }
    }
}

impl Workload for GatewayInterrupts {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_tick(&mut self, kernel: &mut Kernel) {
        if kernel.now() >= self.next_redraw {
            let p = self.rng.range_f64(self.lo, self.hi);
            kernel.set_interrupt_probability(p);
            self.next_redraw = kernel.now() + self.redraw_every;
        }
    }

    fn on_reboot(&mut self) {
        // The reboot quiesced the kernel's interrupt probability; force a
        // redraw on the next tick so gateway duty resumes immediately.
        self.next_redraw = 0.0;
    }
}

// ---------------------------------------------------------------------------
// fGn-driven load
// ---------------------------------------------------------------------------

/// Replays a fractional-Gaussian-noise trace as a target run-queue level.
///
/// Maintains a pool of dummy CPU-bound processes and, every `interval`
/// seconds, makes `round(level)` of them runnable, where `level` follows a
/// pre-generated fGn path with the requested Hurst parameter, mean, and
/// standard deviation (clamped to `[0, pool]`). This gives the sensors and
/// forecasters textbook long-range-dependent input with *known* H.
#[derive(Debug)]
pub struct FgnLoad {
    name: String,
    /// Target levels, one per interval, precomputed.
    levels: Vec<usize>,
    interval: Seconds,
    pool: Vec<Pid>,
    pool_size: usize,
    next_update: Seconds,
    cursor: usize,
}

impl FgnLoad {
    /// Pre-generates `steps` intervals of fGn-driven load.
    ///
    /// # Panics
    ///
    /// Panics on invalid Hurst/shape parameters (via the generator).
    pub fn new(
        name: impl Into<String>,
        hurst: f64,
        mean_load: f64,
        std_load: f64,
        interval: Seconds,
        steps: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(interval > 0.0 && steps > 0);
        let gen = DaviesHarte::new(hurst).expect("valid Hurst parameter");
        let noise = gen.sample(steps, rng).expect("nonzero steps");
        let pool_size = ((mean_load + 4.0 * std_load).ceil() as usize).max(1);
        let levels = noise
            .into_iter()
            .map(|z| {
                let level = mean_load + std_load * z;
                level.round().clamp(0.0, pool_size as f64) as usize
            })
            .collect();
        Self {
            name: name.into(),
            levels,
            interval,
            pool: Vec::new(),
            pool_size,
            next_update: 0.0,
            cursor: 0,
        }
    }
}

impl Workload for FgnLoad {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_tick(&mut self, kernel: &mut Kernel) {
        if self.pool.is_empty() {
            for i in 0..self.pool_size {
                self.pool.push(
                    kernel
                        .spawn(ProcessSpec::cpu_bound(format!("{}-fgn{i}", self.name)).sleeping()),
                );
            }
        }
        let now = kernel.now();
        if now >= self.next_update {
            let level = self
                .levels
                .get(self.cursor.min(self.levels.len() - 1))
                .copied()
                .unwrap_or(0);
            self.cursor = (self.cursor + 1).min(self.levels.len());
            for (i, &pid) in self.pool.iter().enumerate() {
                kernel.set_runnable(pid, i < level);
            }
            self.next_update = now + self.interval;
        }
    }

    fn on_reboot(&mut self) {
        // The dummy pool respawns on the next tick; the fGn trace keeps
        // its cursor (the level schedule is wall-clock, not per-boot).
        self.pool.clear();
        self.next_update = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TICK;

    fn run(workloads: &mut [Box<dyn Workload>], kernel: &mut Kernel, seconds: f64) {
        let ticks = (seconds / TICK).round() as u64;
        for _ in 0..ticks {
            for w in workloads.iter_mut() {
                w.on_tick(kernel);
            }
            kernel.tick();
        }
    }

    #[test]
    fn interactive_sessions_generate_load() {
        let mut k = Kernel::new(1);
        let cfg = SessionConfig {
            arrival_mean: 60.0,
            ..SessionConfig::default()
        };
        let mut ws: Vec<Box<dyn Workload>> =
            vec![Box::new(InteractiveSessions::new("ix", cfg, Rng::new(11)))];
        run(&mut ws, &mut k, 1800.0);
        let a = k.accounting();
        // Some CPU was consumed, some idleness remains.
        assert!(a.user + a.sys > 30.0, "used = {}", a.user + a.sys);
        assert!(a.idle > 30.0, "idle = {}", a.idle);
    }

    #[test]
    fn sessions_respect_concurrency_cap() {
        let mut k = Kernel::new(1);
        let cfg = SessionConfig {
            arrival_mean: 1.0, // flood
            max_concurrent: 3,
            ..SessionConfig::default()
        };
        let mut w = InteractiveSessions::new("ix", cfg, Rng::new(13));
        for _ in 0..((600.0 / TICK) as u64) {
            w.on_tick(&mut k);
            k.tick();
        }
        assert!(w.active_sessions() <= 3);
        assert!(k.process_count() <= 3);
    }

    #[test]
    fn sessions_eventually_depart() {
        let mut k = Kernel::new(1);
        let cfg = SessionConfig {
            arrival_mean: 1e12, // no further arrivals after warm start
            bursts_per_session: 2.0,
            ..SessionConfig::default()
        };
        let mut w = InteractiveSessions::new("ix", cfg, Rng::new(17));
        // Force one arrival by setting next_arrival to 0 via a fresh struct:
        w.next_arrival = 0.0;
        for _ in 0..((7200.0 / TICK) as u64) {
            w.on_tick(&mut k);
            k.tick();
            if w.active_sessions() == 0 && k.now() > 10.0 {
                break;
            }
        }
        assert_eq!(w.active_sessions(), 0, "session never departed");
        assert_eq!(k.process_count(), 0);
    }

    #[test]
    fn batch_jobs_complete() {
        let mut k = Kernel::new(1);
        let cfg = BatchConfig {
            arrival_mean: 120.0,
            demand: Pareto::new(1.5, 5.0).with_cap(60.0),
            ..BatchConfig::default()
        };
        let mut w = BatchArrivals::new("batch", cfg, Rng::new(19));
        for _ in 0..((3600.0 / TICK) as u64) {
            w.on_tick(&mut k);
            k.tick();
        }
        // One extra tick so the workload consumes any record reaped on
        // the final kernel tick.
        w.on_tick(&mut k);
        assert!(w.completed_jobs() > 0, "no batch job completed in an hour");
        // Pareto demand has scale 5.0, so every job consumed at least that.
        assert!(w.completed_cpu() >= w.completed_jobs() as f64 * (5.0 - TICK));
        // The workload consumed every record: nothing left behind to leak.
        assert!(k.drain_completed().is_empty());
    }

    #[test]
    fn nice_soaker_keeps_load_but_yields() {
        let mut k = Kernel::new(1);
        let mut ws: Vec<Box<dyn Workload>> =
            vec![Box::new(NiceSoaker::new("bg", 100.0, 0.0, Rng::new(23)))];
        run(&mut ws, &mut k, 600.0);
        // Always-on soaker drives load average to ~1.
        assert!((k.load_average().one_minute() - 1.0).abs() < 0.1);
        // Full-priority work preempts it (modulo the anti-starvation
        // sliver the kernel grants the soaker).
        let fg = k.spawn(ProcessSpec::cpu_bound("fg"));
        run(&mut ws, &mut k, 10.0);
        assert!(k.cpu_time(fg).unwrap() > 8.5);
    }

    #[test]
    fn soaker_duty_cycle_reduces_mean_load() {
        let mut k = Kernel::new(5);
        let mut ws: Vec<Box<dyn Workload>> =
            vec![Box::new(NiceSoaker::new("bg", 200.0, 100.0, Rng::new(29)))];
        run(&mut ws, &mut k, 4.0 * 3600.0);
        let a = k.accounting();
        let busy = (a.user + a.sys) / a.total();
        assert!(busy > 0.4 && busy < 0.9, "busy = {busy}");
    }

    #[test]
    fn hog_starts_at_configured_time() {
        let mut k = Kernel::new(1);
        let mut ws: Vec<Box<dyn Workload>> = vec![Box::new(LongRunningHog::new("res", 50.0, 0.0))];
        run(&mut ws, &mut k, 49.0);
        assert_eq!(k.process_count(), 0);
        run(&mut ws, &mut k, 100.0);
        assert_eq!(k.process_count(), 1);
        // Hog owns the machine.
        let a = k.accounting();
        assert!(a.user > 95.0, "user = {}", a.user);
    }

    #[test]
    fn gateway_interrupts_consume_sys_time() {
        let mut k = Kernel::new(1);
        let mut ws: Vec<Box<dyn Workload>> = vec![Box::new(GatewayInterrupts::new(
            "gw",
            0.2,
            0.4,
            60.0,
            Rng::new(31),
        ))];
        run(&mut ws, &mut k, 600.0);
        let a = k.accounting();
        let sys_frac = a.sys / a.total();
        assert!((0.1..0.5).contains(&sys_frac), "sys = {sys_frac}");
    }

    #[test]
    fn diurnal_keep_probability_shape() {
        let d = Diurnal::working_day(1.0);
        // Peak at 3pm: probability 1; trough at 3am: probability ~0.
        assert!((d.keep_probability(15.0 * 3600.0) - 1.0).abs() < 1e-9);
        assert!(d.keep_probability(3.0 * 3600.0) < 0.01);
        // Flat modulation keeps everything.
        let flat = Diurnal::working_day(0.0);
        for h in 0..24 {
            assert!((flat.keep_probability(h as f64 * 3600.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diurnal_sessions_are_busier_at_peak() {
        // Two identical hosts, one sampled across day vs night windows.
        let cfg = SessionConfig {
            arrival_mean: 120.0,
            bursts_per_session: 3.0,
            burst: Pareto::new(1.8, 60.0).with_cap(600.0),
            think: Pareto::new(1.8, 60.0).with_cap(600.0),
            max_concurrent: 30,
            diurnal: Some(Diurnal::working_day(0.9)),
            ..SessionConfig::default()
        };
        let mut k = Kernel::new(1);
        let mut w = InteractiveSessions::new("ix", cfg, Rng::new(11));
        // Advance to 3 pm and count accumulated busy time over 2 h.
        let advance_to = |k: &mut Kernel, w: &mut InteractiveSessions, t: f64| {
            while k.now() < t {
                w.on_tick(k);
                k.tick();
            }
        };
        advance_to(&mut k, &mut w, 14.0 * 3600.0);
        let a0 = k.accounting();
        advance_to(&mut k, &mut w, 16.0 * 3600.0);
        let day_busy = k.accounting().since(&a0);
        advance_to(&mut k, &mut w, 26.0 * 3600.0); // 2 am next day
        let a1 = k.accounting();
        advance_to(&mut k, &mut w, 28.0 * 3600.0); // 4 am
        let night_busy = k.accounting().since(&a1);
        let day = day_busy.user + day_busy.sys;
        let night = night_busy.user + night_busy.sys;
        assert!(
            day > night * 1.5,
            "day busy {day:.0}s should dominate night busy {night:.0}s"
        );
    }

    #[test]
    fn fgn_load_tracks_target_mean() {
        let mut rng = Rng::new(37);
        let mut k = Kernel::new(1);
        let mut ws: Vec<Box<dyn Workload>> = vec![Box::new(FgnLoad::new(
            "fgn", 0.75, 1.5, 0.5, 10.0, 720, &mut rng,
        ))];
        run(&mut ws, &mut k, 7200.0);
        let load = k.load_average().fifteen_minute();
        assert!((load - 1.5).abs() < 0.6, "load = {load}");
    }

    #[test]
    fn fgn_load_holds_last_level_when_exhausted() {
        let mut rng = Rng::new(39);
        let mut k = Kernel::new(1);
        let mut w = FgnLoad::new("fgn", 0.7, 2.0, 0.1, 1.0, 3, &mut rng);
        for _ in 0..((10.0 / TICK) as u64) {
            w.on_tick(&mut k);
            k.tick();
        }
        // No panic, and the pool still enforces a bounded run queue.
        assert!(k.runnable_count() <= 4);
    }
}
