//! A discrete-time, time-shared Unix host simulator.
//!
//! The paper measures CPU availability on six production Unix machines at
//! UCSD in August 1998. We do not have those machines, so this crate builds
//! the closest mechanistic substitute: a simulator of a single-CPU Unix host
//! running a **4.3BSD-style decay-priority scheduler**, the scheduler family
//! all of the paper's observations are about.
//!
//! The fidelity requirements come straight from Section 2 of the paper:
//!
//! - **Load average** must be an exponentially smoothed 5-second sampling of
//!   run-queue length (so the `uptime` sensor sees the same smoothing lag a
//!   real kernel imposes).
//! - **`nice` processes** must occupy the run queue (inflating load average
//!   and vmstat occupancy) while being instantly preempted by full-priority
//!   work — this produces the *conundrum* pathology, where load average and
//!   vmstat report ~33 % error but the probe-based hybrid sensor is right.
//! - **Long-running full-priority processes** must suffer priority decay
//!   (`p_cpu` accumulation), so that a short, fresh probe preempts them and
//!   overestimates availability while a 10-second test process ends up
//!   time-sharing — the *kongo* pathology, where the hybrid errs by ~41 %.
//! - **user/sys/idle accounting** must be tick-accurate so the `vmstat`
//!   sensor (Eq. 2) sees realistic occupancy fractions, including kernel
//!   interrupt (system) time that is not attributable to any process.
//!
//! The simulation advances in fixed 100 ms scheduling quanta ([`TICK`]).
//! Workload generators ([`workload`]) spawn and control processes; the six
//! UCSD host profiles are in [`profiles`].

pub mod host;
pub mod kernel;
pub mod loadavg;
pub mod process;
pub mod profiles;
pub mod trace;
pub mod workload;

pub use host::Host;
pub use kernel::{Accounting, Kernel, ProcessStats, ProcessView};
pub use loadavg::LoadAverage;
pub use process::{Pid, ProcessSpec};
pub use profiles::{
    synthetic_host_name, synthetic_roster, ucsd_availability_traces, ucsd_hosts, HostProfile,
    SyntheticHost, UCSD_HOST_NAMES,
};
pub use trace::{record_load_trace, LoadTrace, TraceReplay};
pub use workload::{
    BatchArrivals, Diurnal, FgnLoad, GatewayInterrupts, InteractiveSessions, LongRunningHog,
    NiceSoaker, Workload,
};

/// Seconds (simulation time).
pub type Seconds = f64;

/// One scheduling quantum: 100 ms, the classical Unix time slice.
pub const TICK: Seconds = 0.1;

/// Ticks per second.
pub const TICKS_PER_SECOND: u64 = 10;

/// `p_cpu` increment per tick of CPU consumed.
///
/// 4.3BSD increments `p_cpu` once per 10 ms clock interrupt; one 100 ms
/// quantum therefore adds 10.
pub const PCPU_PER_TICK: f64 = 10.0;

/// The base user-mode priority (`PUSER` in 4.3BSD).
pub const PUSER: f64 = 50.0;

/// Kernel load-average sampling period (seconds), as in 4.3BSD.
pub const LOAD_SAMPLE_PERIOD: Seconds = 5.0;

/// Anti-starvation limit in ticks: a runnable process that has waited this
/// long runs regardless of priority (Solaris TS `ts_maxwait`-style aging).
/// At 10 ticks (one second) a fully starved `nice +19` process obtains
/// roughly a 9 % CPU share under saturating full-priority load.
pub const STARVATION_TICKS: u64 = 10;
