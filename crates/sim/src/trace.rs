//! Load-trace recording and replay.
//!
//! The original NWS analyses (and the Dinda & O'Halloran study the paper
//! builds on) are *trace-driven*: host load is recorded once and replayed
//! through different sensors/forecasters. This module provides both halves:
//!
//! - [`record_load_trace`] samples a host's instantaneous run-queue length
//!   on a fixed interval into a [`LoadTrace`];
//! - [`TraceReplay`] is a [`Workload`] that reproduces a recorded trace on
//!   a fresh host by adjusting a pool of CPU-bound processes to match the
//!   recorded run-queue level at each sample;
//! - traces persist as `time,level` CSV via [`LoadTrace::save`] /
//!   [`LoadTrace::load`], so externally recorded data (e.g. from the
//!   `/proc` sensors) can drive the simulator too.
//!
//! Replay reproduces the *run-queue process*, not the exact per-process
//! interleaving: load averages, availability sensors, and forecasting
//! behaviour match the source host; individual pid histories do not.

use crate::host::Host;
use crate::kernel::Kernel;
use crate::process::{Pid, ProcessSpec};
use crate::workload::Workload;
use crate::Seconds;
use nws_timeseries::csv::{parse_series, series_to_csv, CsvError};
use nws_timeseries::Series;
use std::path::Path;

/// A recorded run-queue trace: `level[i]` is the runnable-process count at
/// `start + i * interval`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTrace {
    /// Recording start time (seconds on the source host's clock).
    pub start: Seconds,
    /// Sampling interval (seconds).
    pub interval: Seconds,
    /// Sampled run-queue levels.
    pub levels: Vec<u32>,
}

impl LoadTrace {
    /// Trace length in samples.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Recording span in seconds.
    pub fn span(&self) -> Seconds {
        self.levels.len() as f64 * self.interval
    }

    /// Mean run-queue level.
    pub fn mean_level(&self) -> f64 {
        if self.levels.is_empty() {
            0.0
        } else {
            self.levels.iter().map(|&l| f64::from(l)).sum::<f64>() / self.levels.len() as f64
        }
    }

    /// Converts to a [`Series`] for analysis (ACF, Hurst, forecasting).
    pub fn to_series(&self, name: impl Into<String>) -> Series {
        Series::from_values(
            name,
            self.start,
            self.interval,
            self.levels.iter().map(|&l| f64::from(l)),
        )
        .expect("regular grid is strictly increasing")
    }

    /// Saves the trace as `time,level` CSV.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CsvError> {
        nws_timeseries::csv::write_series(&self.to_series("run-queue"), path)
    }

    /// Renders the trace as CSV text.
    pub fn to_csv(&self) -> String {
        series_to_csv(&self.to_series("run-queue"))
    }

    /// Loads a trace from `time,level` CSV written by [`LoadTrace::save`]
    /// (or by any external recorder with a regular sampling grid).
    ///
    /// # Errors
    ///
    /// Fails on unreadable/garbled CSV, an irregular grid, or negative
    /// levels.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CsvError> {
        Self::from_csv(&std::fs::read_to_string(path)?)
    }

    /// Parses a trace from CSV text (see [`LoadTrace::load`]).
    pub fn from_csv(text: &str) -> Result<Self, CsvError> {
        let series = parse_series(text)?;
        if series.len() < 2 {
            return Err(CsvError::Parse {
                line: 1,
                message: "a load trace needs at least two samples".into(),
            });
        }
        let times = series.times();
        let interval = times[1] - times[0];
        for w in times.windows(2) {
            if ((w[1] - w[0]) - interval).abs() > 1e-6 {
                return Err(CsvError::Parse {
                    line: 1,
                    message: format!("irregular sampling grid: {} vs {interval}", w[1] - w[0]),
                });
            }
        }
        let levels = series
            .values()
            .iter()
            .map(|&v| {
                if v < -1e-9 || v > u32::MAX as f64 {
                    Err(CsvError::Parse {
                        line: 1,
                        message: format!("bad run-queue level {v}"),
                    })
                } else {
                    Ok(v.round() as u32)
                }
            })
            .collect::<Result<_, _>>()?;
        Ok(Self {
            start: times[0],
            interval,
            levels,
        })
    }
}

/// Records `samples` run-queue samples from a live host, advancing it by
/// `interval` between samples.
pub fn record_load_trace(host: &mut Host, interval: Seconds, samples: usize) -> LoadTrace {
    assert!(interval > 0.0, "interval must be positive");
    let start = host.now();
    let mut levels = Vec::with_capacity(samples);
    for _ in 0..samples {
        levels.push(host.runnable_count() as u32);
        host.advance(interval);
    }
    LoadTrace {
        start,
        interval,
        levels,
    }
}

/// Replays a [`LoadTrace`] as a workload: at each sample instant, exactly
/// `level` pool processes are runnable.
#[derive(Debug)]
pub struct TraceReplay {
    name: String,
    trace: LoadTrace,
    pool: Vec<Pid>,
    cursor: usize,
    next_update: Seconds,
    /// What to do past the end of the trace: hold the last level (`true`)
    /// or go idle (`false`).
    hold_last: bool,
}

impl TraceReplay {
    /// Creates a replay starting at simulation time zero.
    pub fn new(name: impl Into<String>, trace: LoadTrace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        Self {
            name: name.into(),
            trace,
            pool: Vec::new(),
            cursor: 0,
            next_update: 0.0,
            hold_last: false,
        }
    }

    /// Holds the final level forever instead of going idle at trace end.
    pub fn hold_last_level(mut self) -> Self {
        self.hold_last = true;
        self
    }
}

impl Workload for TraceReplay {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_tick(&mut self, kernel: &mut Kernel) {
        if self.pool.is_empty() {
            let max_level = self.trace.levels.iter().copied().max().unwrap_or(0);
            for i in 0..max_level {
                self.pool.push(
                    kernel.spawn(
                        ProcessSpec::cpu_bound(format!("{}-replay{i}", self.name)).sleeping(),
                    ),
                );
            }
        }
        let now = kernel.now();
        if now < self.next_update {
            return;
        }
        let level = if self.cursor < self.trace.levels.len() {
            let l = self.trace.levels[self.cursor];
            self.cursor += 1;
            l
        } else if self.hold_last {
            *self.trace.levels.last().expect("non-empty trace")
        } else {
            0
        };
        for (i, &pid) in self.pool.iter().enumerate() {
            kernel.set_runnable(pid, (i as u32) < level);
        }
        self.next_update = now + self.trace.interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::HostProfile;

    fn sample_trace() -> LoadTrace {
        LoadTrace {
            start: 0.0,
            interval: 5.0,
            levels: vec![0, 1, 2, 2, 1, 0, 3, 3, 3, 0],
        }
    }

    #[test]
    fn trace_basics() {
        let t = sample_trace();
        assert_eq!(t.len(), 10);
        assert_eq!(t.span(), 50.0);
        assert!((t.mean_level() - 1.5).abs() < 1e-12);
        let s = t.to_series("q");
        assert_eq!(s.len(), 10);
        assert_eq!(s.values()[6], 3.0);
    }

    #[test]
    fn csv_round_trip() {
        let t = sample_trace();
        let text = t.to_csv();
        let back = LoadTrace::from_csv(&text).expect("parses");
        assert_eq!(back, t);
    }

    #[test]
    fn from_csv_rejects_bad_grids_and_levels() {
        assert!(LoadTrace::from_csv("time,v\n0,1\n").is_err()); // 1 sample
        assert!(LoadTrace::from_csv("time,v\n0,1\n5,1\n12,1\n").is_err()); // irregular
        assert!(LoadTrace::from_csv("time,v\n0,-3\n5,1\n").is_err()); // negative
    }

    #[test]
    fn record_from_live_host() {
        let mut host = HostProfile::Thing2.build(5);
        host.advance(1800.0);
        let trace = record_load_trace(&mut host, 5.0, 120);
        assert_eq!(trace.len(), 120);
        assert!(trace.mean_level() > 0.05, "thing2 should show load");
        assert!(trace.levels.iter().all(|&l| l < 50));
    }

    #[test]
    fn replay_reproduces_mean_load() {
        // Record from a profile host, replay onto a clean one, compare
        // the resulting load averages.
        let mut source = HostProfile::Thing2.build(5);
        source.advance(1800.0);
        let trace = record_load_trace(&mut source, 5.0, 720); // 1 hour
        let mean_level = trace.mean_level();

        let mut sink = Host::new("replay-box", 1);
        sink.add_workload(Box::new(TraceReplay::new("t2", trace)));
        sink.advance(3600.0);
        let replayed = sink.load_average().fifteen_minute();
        assert!(
            (replayed - mean_level).abs() < 0.35 * mean_level.max(0.5),
            "replayed load {replayed} vs recorded mean {mean_level}"
        );
    }

    #[test]
    fn replay_goes_idle_or_holds_at_end() {
        let trace = LoadTrace {
            start: 0.0,
            interval: 1.0,
            levels: vec![2, 2, 2],
        };
        let mut idle_host = Host::new("idle-end", 1);
        idle_host.add_workload(Box::new(TraceReplay::new("t", trace.clone())));
        idle_host.advance(30.0);
        assert_eq!(idle_host.runnable_count(), 0);

        let mut hold_host = Host::new("hold-end", 1);
        hold_host.add_workload(Box::new(TraceReplay::new("t", trace).hold_last_level()));
        hold_host.advance(30.0);
        assert_eq!(hold_host.runnable_count(), 2);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn replaying_empty_trace_panics() {
        TraceReplay::new(
            "t",
            LoadTrace {
                start: 0.0,
                interval: 1.0,
                levels: vec![],
            },
        );
    }
}
