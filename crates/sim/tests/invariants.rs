//! Property-based invariants of the host simulator.

use nws_sim::{Host, HostProfile, Kernel, ProcessSpec};
use proptest::prelude::*;

/// A tiny random workload script interpreted against a kernel.
#[derive(Debug, Clone)]
enum Op {
    Spawn {
        nice: u8,
        sys_frac: u8,
        limit: Option<u8>,
    },
    KillOldest,
    Sleep {
        idx: u8,
    },
    Wake {
        idx: u8,
    },
    Run {
        seconds: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..20, 0u8..10, proptest::option::of(1u8..30)).prop_map(|(nice, sys_frac, limit)| {
            Op::Spawn {
                nice,
                sys_frac,
                limit,
            }
        }),
        Just(Op::KillOldest),
        (0u8..8).prop_map(|idx| Op::Sleep { idx }),
        (0u8..8).prop_map(|idx| Op::Wake { idx }),
        (1u8..30).prop_map(|seconds| Op::Run { seconds }),
    ]
}

fn run_script(kernel: &mut Kernel, script: &[Op]) {
    let mut pids = Vec::new();
    for op in script {
        match op {
            Op::Spawn {
                nice,
                sys_frac,
                limit,
            } => {
                let mut spec = ProcessSpec::cpu_bound("scripted")
                    .with_nice(*nice)
                    .with_sys_fraction(f64::from(*sys_frac) / 10.0);
                if let Some(l) = limit {
                    spec = spec.with_cpu_limit(f64::from(*l));
                }
                pids.push(kernel.spawn(spec));
            }
            Op::KillOldest => {
                if !pids.is_empty() {
                    let pid = pids.remove(0);
                    let _ = kernel.kill(pid);
                }
            }
            Op::Sleep { idx } => {
                if let Some(&pid) = pids.get(*idx as usize) {
                    kernel.set_runnable(pid, false);
                }
            }
            Op::Wake { idx } => {
                if let Some(&pid) = pids.get(*idx as usize) {
                    kernel.set_runnable(pid, true);
                }
            }
            Op::Run { seconds } => {
                kernel.run_ticks(u64::from(*seconds) * 10);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_always_totals_elapsed_cpu_time(
        script in proptest::collection::vec(op_strategy(), 1..40),
        n_cpus in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut k = Kernel::with_cpus(seed, n_cpus);
        run_script(&mut k, &script);
        let elapsed = k.now();
        let a = k.accounting();
        let expected = elapsed * n_cpus as f64;
        prop_assert!((a.total() - expected).abs() < 1e-6,
            "total {} != {} (elapsed {elapsed} x {n_cpus})", a.total(), expected);
        prop_assert!(a.user >= -1e-12 && a.sys >= -1e-12 && a.idle >= -1e-12);
    }

    #[test]
    fn run_queue_never_exceeds_live_processes(
        script in proptest::collection::vec(op_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        let mut k = Kernel::new(seed);
        run_script(&mut k, &script);
        prop_assert!(k.runnable_count() <= k.process_count());
        // Load averages are bounded by the all-time max run queue, which is
        // bounded by the number of spawns.
        prop_assert!(k.load_average().one_minute() >= 0.0);
        prop_assert!(k.load_average().one_minute() <= script.len() as f64);
    }

    #[test]
    fn cpu_time_is_conserved(
        script in proptest::collection::vec(op_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        // Sum of CPU time over live + completed processes never exceeds
        // the busy time the kernel accounted.
        let mut k = Kernel::new(seed);
        run_script(&mut k, &script);
        let a = k.accounting();
        let live: f64 = (1..=200)
            .filter_map(|i| k.cpu_time(nws_sim::Pid(i)))
            .sum();
        let done: f64 = k.drain_completed().iter().map(|s| s.cpu_time).sum();
        // Killed processes' time stays inside user+sys accounting even
        // though we no longer see the processes, so <= is the invariant.
        prop_assert!(live + done <= a.user + a.sys + 1e-6,
            "live {live} + done {done} > busy {}", a.user + a.sys);
    }

    #[test]
    fn scripts_replay_deterministically(
        script in proptest::collection::vec(op_strategy(), 1..25),
        seed in any::<u64>(),
    ) {
        let run = |s: &[Op]| {
            let mut k = Kernel::new(seed);
            run_script(&mut k, s);
            (k.now(), k.accounting(), k.runnable_count())
        };
        prop_assert_eq!(run(&script), run(&script));
    }

    #[test]
    fn profile_hosts_never_produce_negative_or_nan_state(
        seed in any::<u64>(),
        minutes in 1u64..30,
    ) {
        let mut host: Host = HostProfile::Thing2.build(seed);
        host.advance(minutes as f64 * 60.0);
        let a = host.accounting();
        prop_assert!(a.user.is_finite() && a.sys.is_finite() && a.idle.is_finite());
        prop_assert!(a.user >= 0.0 && a.sys >= 0.0 && a.idle >= 0.0);
        let l = host.load_average();
        prop_assert!(l.one_minute() >= 0.0 && l.one_minute() < 50.0);
        prop_assert!(l.fifteen_minute() >= 0.0);
    }
}
