//! Little-endian primitive encoding: the [`Writer`]/[`Reader`] pair every
//! message type is built from.
//!
//! Integers are little-endian; `f64` travels as its IEEE-754 bit pattern
//! (so NaN payloads and signed zeros round-trip exactly); strings and
//! sequences are `u32` length prefixes followed by their elements, with
//! the length checked against a caller-supplied bound *before* anything
//! is allocated.

use crate::WireError;

/// Longest string field the protocol accepts (host names, predictor
/// names, error messages).
pub const MAX_STRING: usize = 1024;

/// An append-only payload builder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing buffer, appending to whatever it already holds —
    /// the reusable-scratch path: take a caller's buffer, extend it, hand
    /// it back via [`Writer::finish`] without any fresh allocation.
    pub fn with_buf(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a boolean as a single 0/1 byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        debug_assert!(s.len() <= MAX_STRING, "string exceeds protocol bound");
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an optional `f64` as a presence byte plus the value.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.put_bool(false),
            Some(x) => {
                self.put_bool(true);
                self.put_f64(x);
            }
        }
    }

    /// Appends a length-prefixed opaque byte string (WAL chunks).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }
}

/// A bounds-checked payload cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::TrailingBytes`] unless the payload was
    /// consumed exactly.
    pub fn expect_end(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a 0/1 boolean byte, rejecting anything else.
    pub fn take_bool(&mut self) -> Result<bool, WireError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    /// Reads a length-prefixed sequence count, enforcing `max` before any
    /// allocation happens.
    pub fn take_len(&mut self, what: &'static str, max: usize) -> Result<usize, WireError> {
        let len = self.take_u32()? as usize;
        if len > max {
            return Err(WireError::LengthOutOfBounds { what, len, max });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, WireError> {
        let len = self.take_len("string", MAX_STRING)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads an optional `f64` written by [`Writer::put_opt_f64`].
    pub fn take_opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        if self.take_bool()? {
            Ok(Some(self.take_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed opaque byte string, enforcing `max`
    /// before any allocation happens.
    pub fn take_bytes(&mut self, what: &'static str, max: usize) -> Result<Vec<u8>, WireError> {
        let len = self.take_len(what, max)?;
        Ok(self.take(len)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("kongo");
        w.put_opt_f64(None);
        w.put_opt_f64(Some(0.25));
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_str().unwrap(), "kongo");
        assert_eq!(r.take_opt_f64().unwrap(), None);
        assert_eq!(r.take_opt_f64().unwrap(), Some(0.25));
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(matches!(r.take_u64(), Err(WireError::Truncated)));
        }
    }

    #[test]
    fn bad_bool_and_bad_utf8_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.take_bool(), Err(WireError::BadBool(2))));
        let mut w = Writer::new();
        w.put_u32(2);
        let mut bytes = w.finish();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.take_str(), Err(WireError::BadUtf8)));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX); // claims a 4 GiB string
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.take_str(),
            Err(WireError::LengthOutOfBounds { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        r.take_u8().unwrap();
        assert!(matches!(r.expect_end(), Err(WireError::TrailingBytes(1))));
    }
}
