//! The NWS wire protocol: a dependency-free, length-prefixed binary
//! codec for forecast-serving traffic.
//!
//! The real Network Weather Service runs as a distributed system —
//! sensors, persistent-state memories, and forecasters are separate
//! processes that clients query over TCP. This crate defines the
//! request/response vocabulary of that query path for the reproduction:
//!
//! - [`Request`] — `Forecast(host)`, `Snapshot`, `BestHost`,
//!   `SeriesTail(host, n)`, `Stats`, and a bounded `Batch` for
//!   pipelined round trips;
//! - [`Response`] — the matching replies plus a typed [`ErrorReply`]
//!   frame.
//!
//! Everything is hand-rolled over explicit little-endian primitives
//! (no serde, no external crates) so the byte layout is fully specified
//! here and stable across platforms:
//!
//! ```text
//! frame  := magic:u16 ("NW") | version:u8 | kind:u8 | len:u32 | payload
//! ```
//!
//! Decoding is strict: unknown tags, non-UTF-8 strings, out-of-bounds
//! lengths, truncated payloads, and trailing bytes are all rejected with
//! a typed [`WireError`] — never a panic — and a frame longer than
//! [`MAX_FRAME`] is refused before its payload is read, so a malicious
//! peer cannot make the server allocate unboundedly.

mod codec;
mod frame;
mod message;

pub use codec::{Reader, Writer, MAX_STRING};
pub use frame::{
    append_request_frame, append_response_frame, begin_response_frame, encode_request_frame,
    encode_response_frame, end_response_frame, parse_frame_header, read_frame, read_request,
    read_response, write_request, write_response, FrameKind, HEADER_LEN,
};
pub use message::{
    ErrorCode, ErrorReply, ForecastReply, HorizonReply, HostRow, Request, Response, SeriesPoint,
    SeriesTailReply, SnapshotReply, StatsReply, WalChunkReply, MAX_BATCH, MAX_HORIZON, MAX_HOSTS,
    MAX_POINTS, MAX_WAL_CHUNK,
};

/// Frame magic: `"NW"` in big-endian byte order on the wire.
pub const MAGIC: u16 = 0x4E57;

/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;

/// Maximum payload length a frame may carry (1 MiB). Frames declaring
/// more are rejected before the payload is read.
pub const MAX_FRAME: usize = 1 << 20;

/// Everything that can go wrong encoding, decoding, or framing a
/// message. Decoding is total: malformed input yields one of these,
/// never a panic.
#[derive(Debug)]
pub enum WireError {
    /// An underlying I/O failure (reading or writing a frame).
    Io(std::io::Error),
    /// The frame header did not start with [`MAGIC`].
    BadMagic(u16),
    /// The frame header carried an unsupported version.
    BadVersion(u8),
    /// The frame header's kind byte was neither request nor response.
    BadKind(u8),
    /// The declared payload length exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The enforced bound.
        max: usize,
    },
    /// The payload ended before the value being decoded did.
    Truncated,
    /// Decoding finished with bytes left over.
    TrailingBytes(usize),
    /// An enum tag had no defined meaning.
    UnknownTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// A length prefix exceeded its documented bound.
    LengthOutOfBounds {
        /// What was being decoded.
        what: &'static str,
        /// The declared length.
        len: usize,
        /// The enforced bound.
        max: usize,
    },
    /// A `Batch` contained another `Batch`.
    NestedBatch,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte bound"
                )
            }
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadBool(b) => write!(f, "boolean byte {b} is neither 0 nor 1"),
            WireError::LengthOutOfBounds { what, len, max } => {
                write!(f, "{what} length {len} exceeds the bound of {max}")
            }
            WireError::NestedBatch => write!(f, "batches cannot nest"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        // A clean EOF mid-frame is a truncation, not a transport fault.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}
