//! The protocol vocabulary: [`Request`], [`Response`], and the reply
//! structures they carry, each with a hand-rolled `encode`/`decode` pair.

use crate::codec::{Reader, Writer};
use crate::WireError;

/// Most requests a single `Batch` may carry.
pub const MAX_BATCH: usize = 64;

/// Most host rows a snapshot reply may carry.
pub const MAX_HOSTS: usize = 4096;

/// Most points a series-tail reply may carry (a day of 10-second
/// measurements is 8 640).
pub const MAX_POINTS: usize = 65_536;

/// Most WAL bytes one replication chunk may carry (64 KiB — well under
/// [`crate::MAX_FRAME`], so a chunk frame always fits).
pub const MAX_WAL_CHUNK: usize = 64 * 1024;

/// Most steps a horizon forecast may carry (128 ten-second slots is
/// already a 21-minute lookahead — far beyond where iterated forecasts
/// have flattened to the mean).
pub const MAX_HORIZON: usize = 128;

/// A query a client sends to the forecast server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The standing CPU-availability forecast for one host.
    Forecast {
        /// Host name as registered with the grid's name service.
        host: String,
    },
    /// A point-in-time view of every monitored host.
    Snapshot,
    /// The host a scheduler should place the next task on.
    BestHost,
    /// The most recent `n` hybrid-availability measurements of one host.
    SeriesTail {
        /// Host name.
        host: String,
        /// Maximum number of points wanted (server caps at
        /// [`MAX_POINTS`]).
        n: u32,
    },
    /// Server-side counters: requests served, cache behaviour, uptime.
    Stats,
    /// Several requests answered in one round trip, in order. Nested
    /// batches are rejected at decode time.
    Batch(Vec<Request>),
    /// A multi-step forecast: the next `k` ten-second slots of one
    /// host's CPU availability, from the currently selected panel
    /// predictor.
    ForecastHorizon {
        /// Host name as registered with the grid's name service.
        host: String,
        /// Steps wanted (server caps at [`MAX_HORIZON`]; zero is a
        /// [`ErrorCode::BadRequest`]).
        k: u32,
    },
    /// The replication pull: "stream me the primary's WAL from this
    /// byte offset". The server replies with a [`Response::WalChunk`]
    /// of at most `max` bytes, ending on a record boundary.
    WalSince {
        /// Byte offset into the primary's WAL (the replica's applied
        /// high-water mark).
        offset: u64,
        /// Most chunk bytes wanted (server clamps to
        /// [`MAX_WAL_CHUNK`]).
        max: u32,
    },
}

impl Request {
    /// Encodes the request payload (header-less; see
    /// [`crate::write_request`] for framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.finish()
    }

    /// Appends the encoded payload to `out` — the zero-fresh-allocation
    /// path for callers reusing one scratch buffer across exchanges.
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        let mut w = Writer::with_buf(std::mem::take(out));
        self.encode_into(&mut w);
        *out = w.finish();
    }

    fn encode_into(&self, w: &mut Writer) {
        match self {
            Request::Forecast { host } => {
                w.put_u8(0);
                w.put_str(host);
            }
            Request::Snapshot => w.put_u8(1),
            Request::BestHost => w.put_u8(2),
            Request::SeriesTail { host, n } => {
                w.put_u8(3);
                w.put_str(host);
                w.put_u32(*n);
            }
            Request::Stats => w.put_u8(4),
            Request::Batch(items) => {
                debug_assert!(items.len() <= MAX_BATCH, "batch exceeds protocol bound");
                w.put_u8(5);
                w.put_u32(items.len() as u32);
                for item in items {
                    debug_assert!(!matches!(item, Request::Batch(_)), "batches cannot nest");
                    item.encode_into(w);
                }
            }
            Request::WalSince { offset, max } => {
                w.put_u8(6);
                w.put_u64(*offset);
                w.put_u32(*max);
            }
            Request::ForecastHorizon { host, k } => {
                w.put_u8(7);
                w.put_str(host);
                w.put_u32(*k);
            }
        }
    }

    /// Decodes a request payload, consuming it exactly.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let req = Self::decode_from(&mut r, true)?;
        r.expect_end()?;
        Ok(req)
    }

    fn decode_from(r: &mut Reader<'_>, allow_batch: bool) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(Request::Forecast {
                host: r.take_str()?,
            }),
            1 => Ok(Request::Snapshot),
            2 => Ok(Request::BestHost),
            3 => Ok(Request::SeriesTail {
                host: r.take_str()?,
                n: r.take_u32()?,
            }),
            4 => Ok(Request::Stats),
            5 => {
                if !allow_batch {
                    return Err(WireError::NestedBatch);
                }
                let len = r.take_len("batch", MAX_BATCH)?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(Self::decode_from(r, false)?);
                }
                Ok(Request::Batch(items))
            }
            6 => Ok(Request::WalSince {
                offset: r.take_u64()?,
                max: r.take_u32()?,
            }),
            7 => Ok(Request::ForecastHorizon {
                host: r.take_str()?,
                k: r.take_u32()?,
            }),
            tag => Err(WireError::UnknownTag {
                what: "request",
                tag,
            }),
        }
    }
}

/// Why a request could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The named host is not registered with the grid.
    UnknownHost,
    /// The host is registered but its forecaster has absorbed no
    /// measurements yet.
    ColdForecast,
    /// The request was structurally valid but unserviceable (e.g. an
    /// oversized batch the server refuses to expand).
    BadRequest,
    /// The server is at its connection or load cap; try a replica or
    /// come back later. Unlike `BadRequest`, the request itself was
    /// fine — retrying elsewhere is the right move.
    Overloaded,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::UnknownHost => 0,
            ErrorCode::ColdForecast => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Overloaded => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(ErrorCode::UnknownHost),
            1 => Ok(ErrorCode::ColdForecast),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::Overloaded),
            tag => Err(WireError::UnknownTag {
                what: "error code",
                tag,
            }),
        }
    }
}

/// A typed error frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReply {
    /// Machine-readable cause.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// The standing forecast for one host, NWS-extract style.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastReply {
    /// Host name.
    pub host: String,
    /// Point forecast of CPU availability in `[0, 1]`.
    pub value: f64,
    /// Name of the panel predictor that issued it.
    pub method: String,
    /// Calibrated prediction interval `(lo, hi)`, absent until enough
    /// forecast errors have been scored.
    pub interval: Option<(f64, f64)>,
    /// Measurements the forecaster has consumed.
    pub observations: u64,
    /// Seconds since the forecaster last absorbed a real measurement.
    pub staleness: f64,
    /// Confidence in `[0, 1]`, degrading as recent slots resolve to gaps.
    pub confidence: f64,
}

impl ForecastReply {
    /// Appends the reply body (no response tag) to `w`. Public so a
    /// server can encode a cached reply straight out of a borrow — the
    /// same bytes `Response::Forecast` would produce after its tag.
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_str(&self.host);
        w.put_f64(self.value);
        w.put_str(&self.method);
        match self.interval {
            None => w.put_bool(false),
            Some((lo, hi)) => {
                w.put_bool(true);
                w.put_f64(lo);
                w.put_f64(hi);
            }
        }
        w.put_u64(self.observations);
        w.put_f64(self.staleness);
        w.put_f64(self.confidence);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            host: r.take_str()?,
            value: r.take_f64()?,
            method: r.take_str()?,
            interval: if r.take_bool()? {
                Some((r.take_f64()?, r.take_f64()?))
            } else {
                None
            },
            observations: r.take_u64()?,
            staleness: r.take_f64()?,
            confidence: r.take_f64()?,
        })
    }
}

/// One host's row in a snapshot reply.
#[derive(Debug, Clone, PartialEq)]
pub struct HostRow {
    /// Host name.
    pub host: String,
    /// Latest hybrid availability measurement, if any.
    pub latest: Option<f64>,
    /// Standing forecast value, if the forecaster is warm.
    pub forecast: Option<f64>,
    /// The host is excluded from placement decisions (stale or missing
    /// forecast).
    pub degraded: bool,
}

impl HostRow {
    /// Appends the row body to `w`. Public so snapshot and best-host
    /// replies can be encoded row by row from cache borrows.
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_str(&self.host);
        w.put_opt_f64(self.latest);
        w.put_opt_f64(self.forecast);
        w.put_bool(self.degraded);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            host: r.take_str()?,
            latest: r.take_opt_f64()?,
            forecast: r.take_opt_f64()?,
            degraded: r.take_bool()?,
        })
    }
}

/// A point-in-time view of the whole grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotReply {
    /// Simulation time of the snapshot, in seconds.
    pub time: f64,
    /// One row per host, in registration order.
    pub hosts: Vec<HostRow>,
}

/// One timestamped measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Measurement time in seconds.
    pub time: f64,
    /// Measured value.
    pub value: f64,
}

/// The tail of one host's hybrid-availability series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesTailReply {
    /// Host name.
    pub host: String,
    /// Up to `n` most recent measurements, oldest first.
    pub points: Vec<SeriesPoint>,
}

/// Server-side counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Requests dispatched (batch items counted individually).
    pub requests: u64,
    /// Answers served from the forecast/snapshot cache.
    pub cache_hits: u64,
    /// Answers computed afresh.
    pub cache_misses: u64,
    /// Cache entries discarded because new measurements arrived.
    pub invalidations: u64,
    /// Measurement slots the grid behind the server has taken.
    pub slots: u64,
    /// Monitored hosts.
    pub hosts: u32,
}

/// One replication chunk of the primary's WAL.
///
/// `bytes` always ends on a record boundary, so the replica can apply
/// the chunk wholesale without buffering partial frames. A replica is
/// fully caught up exactly when `offset + bytes.len() == total`; at
/// that point its memory's global revision must equal `revision` (the
/// byte-identity the replication tests pin).
#[derive(Debug, Clone, PartialEq)]
pub struct WalChunkReply {
    /// Byte offset this chunk starts at (echoes the request).
    pub offset: u64,
    /// Total WAL length on the primary when the chunk was cut.
    pub total: u64,
    /// The primary memory's global revision when the chunk was cut.
    pub revision: u64,
    /// The primary's simulation clock when the chunk was cut — what a
    /// replica serves as "now" so staleness judgements match the
    /// primary's.
    pub now: f64,
    /// Raw WAL record frames.
    pub bytes: Vec<u8>,
}

/// A multi-step forecast for one host.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonReply {
    /// Host name.
    pub host: String,
    /// Name of the panel predictor that issued the horizon.
    pub method: String,
    /// Forecast availability per future slot: `steps[0]` is the next
    /// measurement (the one-step forecast), `steps[i]` the slot `i + 1`
    /// ahead.
    pub steps: Vec<f64>,
}

impl HorizonReply {
    /// Appends the reply body (no response tag) to `w`. Public so the
    /// zero-copy dispatch path can encode it straight out of a borrow.
    pub fn encode_into(&self, w: &mut Writer) {
        debug_assert!(
            self.steps.len() <= MAX_HORIZON,
            "horizon exceeds protocol bound"
        );
        w.put_str(&self.host);
        w.put_str(&self.method);
        w.put_u32(self.steps.len() as u32);
        for v in &self.steps {
            w.put_f64(*v);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let host = r.take_str()?;
        let method = r.take_str()?;
        let len = r.take_len("horizon", MAX_HORIZON)?;
        let mut steps = Vec::with_capacity(len);
        for _ in 0..len {
            steps.push(r.take_f64()?);
        }
        Ok(Self {
            host,
            method,
            steps,
        })
    }
}

/// A reply the forecast server sends back.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Forecast`].
    Forecast(ForecastReply),
    /// Answer to [`Request::Snapshot`].
    Snapshot(SnapshotReply),
    /// Answer to [`Request::BestHost`]: `None` when every host is
    /// degraded.
    BestHost(Option<HostRow>),
    /// Answer to [`Request::SeriesTail`].
    SeriesTail(SeriesTailReply),
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Answers to a [`Request::Batch`], in request order.
    Batch(Vec<Response>),
    /// The request could not be answered.
    Error(ErrorReply),
    /// Answer to [`Request::WalSince`].
    WalChunk(WalChunkReply),
    /// Answer to [`Request::ForecastHorizon`].
    ForecastHorizon(HorizonReply),
}

impl Response {
    /// Encodes the response payload (header-less; see
    /// [`crate::write_response`] for framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.finish()
    }

    /// Appends the encoded payload to `out` — the zero-fresh-allocation
    /// path for servers reusing one scratch buffer per connection.
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        let mut w = Writer::with_buf(std::mem::take(out));
        self.encode_into(&mut w);
        *out = w.finish();
    }

    /// Appends the encoded payload through an existing [`Writer`] —
    /// the building block the zero-copy dispatch path composes with
    /// hand-encoded fast paths (both must produce identical bytes).
    pub fn encode_into(&self, w: &mut Writer) {
        match self {
            Response::Forecast(reply) => {
                w.put_u8(0);
                reply.encode_into(w);
            }
            Response::Snapshot(reply) => {
                w.put_u8(1);
                w.put_f64(reply.time);
                w.put_u32(reply.hosts.len() as u32);
                for row in &reply.hosts {
                    row.encode_into(w);
                }
            }
            Response::BestHost(row) => {
                w.put_u8(2);
                match row {
                    None => w.put_bool(false),
                    Some(row) => {
                        w.put_bool(true);
                        row.encode_into(w);
                    }
                }
            }
            Response::SeriesTail(reply) => {
                w.put_u8(3);
                w.put_str(&reply.host);
                w.put_u32(reply.points.len() as u32);
                for p in &reply.points {
                    w.put_f64(p.time);
                    w.put_f64(p.value);
                }
            }
            Response::Stats(s) => {
                w.put_u8(4);
                w.put_u64(s.requests);
                w.put_u64(s.cache_hits);
                w.put_u64(s.cache_misses);
                w.put_u64(s.invalidations);
                w.put_u64(s.slots);
                w.put_u32(s.hosts);
            }
            Response::Batch(items) => {
                debug_assert!(items.len() <= MAX_BATCH, "batch exceeds protocol bound");
                w.put_u8(5);
                w.put_u32(items.len() as u32);
                for item in items {
                    debug_assert!(!matches!(item, Response::Batch(_)), "batches cannot nest");
                    item.encode_into(w);
                }
            }
            Response::Error(e) => {
                w.put_u8(6);
                w.put_u8(e.code.tag());
                w.put_str(&e.message);
            }
            Response::WalChunk(c) => {
                debug_assert!(
                    c.bytes.len() <= MAX_WAL_CHUNK,
                    "chunk exceeds protocol bound"
                );
                w.put_u8(7);
                w.put_u64(c.offset);
                w.put_u64(c.total);
                w.put_u64(c.revision);
                w.put_f64(c.now);
                w.put_bytes(&c.bytes);
            }
            Response::ForecastHorizon(reply) => {
                w.put_u8(8);
                reply.encode_into(w);
            }
        }
    }

    /// Decodes a response payload, consuming it exactly.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let resp = Self::decode_from(&mut r, true)?;
        r.expect_end()?;
        Ok(resp)
    }

    fn decode_from(r: &mut Reader<'_>, allow_batch: bool) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(Response::Forecast(ForecastReply::decode_from(r)?)),
            1 => {
                let time = r.take_f64()?;
                let len = r.take_len("snapshot hosts", MAX_HOSTS)?;
                let mut hosts = Vec::with_capacity(len);
                for _ in 0..len {
                    hosts.push(HostRow::decode_from(r)?);
                }
                Ok(Response::Snapshot(SnapshotReply { time, hosts }))
            }
            2 => Ok(Response::BestHost(if r.take_bool()? {
                Some(HostRow::decode_from(r)?)
            } else {
                None
            })),
            3 => {
                let host = r.take_str()?;
                let len = r.take_len("series tail", MAX_POINTS)?;
                let mut points = Vec::with_capacity(len);
                for _ in 0..len {
                    points.push(SeriesPoint {
                        time: r.take_f64()?,
                        value: r.take_f64()?,
                    });
                }
                Ok(Response::SeriesTail(SeriesTailReply { host, points }))
            }
            4 => Ok(Response::Stats(StatsReply {
                requests: r.take_u64()?,
                cache_hits: r.take_u64()?,
                cache_misses: r.take_u64()?,
                invalidations: r.take_u64()?,
                slots: r.take_u64()?,
                hosts: r.take_u32()?,
            })),
            5 => {
                if !allow_batch {
                    return Err(WireError::NestedBatch);
                }
                let len = r.take_len("batch", MAX_BATCH)?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(Self::decode_from(r, false)?);
                }
                Ok(Response::Batch(items))
            }
            6 => Ok(Response::Error(ErrorReply {
                code: ErrorCode::from_tag(r.take_u8()?)?,
                message: r.take_str()?,
            })),
            7 => Ok(Response::WalChunk(WalChunkReply {
                offset: r.take_u64()?,
                total: r.take_u64()?,
                revision: r.take_u64()?,
                now: r.take_f64()?,
                bytes: r.take_bytes("wal chunk", MAX_WAL_CHUNK)?,
            })),
            8 => Ok(Response::ForecastHorizon(HorizonReply::decode_from(r)?)),
            tag => Err(WireError::UnknownTag {
                what: "response",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forecast_reply() -> ForecastReply {
        ForecastReply {
            host: "thing1".into(),
            value: 0.73,
            method: "adaptive-median".into(),
            interval: Some((0.61, 0.84)),
            observations: 8640,
            staleness: 10.0,
            confidence: 0.97,
        }
    }

    #[test]
    fn every_request_variant_round_trips() {
        let requests = vec![
            Request::Forecast {
                host: "kongo".into(),
            },
            Request::Snapshot,
            Request::BestHost,
            Request::SeriesTail {
                host: "thing2".into(),
                n: 64,
            },
            Request::Stats,
            Request::Batch(vec![
                Request::Snapshot,
                Request::Forecast {
                    host: "gremlin".into(),
                },
                Request::Stats,
            ]),
            Request::WalSince {
                offset: 123_456,
                max: 65_536,
            },
            Request::ForecastHorizon {
                host: "thing1".into(),
                k: 32,
            },
        ];
        for req in requests {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        let row = HostRow {
            host: "conundrum".into(),
            latest: Some(0.4),
            forecast: None,
            degraded: true,
        };
        let responses = vec![
            Response::Forecast(forecast_reply()),
            Response::Snapshot(SnapshotReply {
                time: 1200.0,
                hosts: vec![
                    row.clone(),
                    HostRow {
                        host: "kongo".into(),
                        latest: None,
                        forecast: Some(0.9),
                        degraded: false,
                    },
                ],
            }),
            Response::BestHost(Some(row)),
            Response::BestHost(None),
            Response::SeriesTail(SeriesTailReply {
                host: "thing1".into(),
                points: vec![
                    SeriesPoint {
                        time: 10.0,
                        value: 0.5,
                    },
                    SeriesPoint {
                        time: 20.0,
                        value: 0.625,
                    },
                ],
            }),
            Response::Stats(StatsReply {
                requests: 100,
                cache_hits: 60,
                cache_misses: 40,
                invalidations: 12,
                slots: 360,
                hosts: 6,
            }),
            Response::Batch(vec![
                Response::BestHost(None),
                Response::Stats(StatsReply::default()),
            ]),
            Response::Error(ErrorReply {
                code: ErrorCode::UnknownHost,
                message: "no such host: zardoz".into(),
            }),
            Response::Error(ErrorReply {
                code: ErrorCode::Overloaded,
                message: "server at connection capacity".into(),
            }),
            Response::WalChunk(WalChunkReply {
                offset: 72,
                total: 1440,
                revision: 99,
                now: 120.0,
                bytes: vec![0xAB; 33],
            }),
            Response::WalChunk(WalChunkReply {
                offset: 0,
                total: 0,
                revision: 0,
                now: 0.0,
                bytes: Vec::new(),
            }),
            Response::ForecastHorizon(HorizonReply {
                host: "kongo".into(),
                method: "arma(2,1)".into(),
                steps: vec![0.8, 0.76, 0.73, 0.71],
            }),
            Response::ForecastHorizon(HorizonReply {
                host: "gremlin".into(),
                method: "last-value".into(),
                steps: Vec::new(),
            }),
        ];
        for resp in responses {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn nested_batches_rejected() {
        // Hand-build batch-in-batch bytes: outer batch of one, inner tag 5.
        let mut w = Writer::new();
        w.put_u8(5);
        w.put_u32(1);
        w.put_u8(5);
        w.put_u32(0);
        let bytes = w.finish();
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::NestedBatch)
        ));
        assert!(matches!(
            Response::decode(&bytes),
            Err(WireError::NestedBatch)
        ));
    }

    #[test]
    fn oversized_batch_rejected() {
        let mut w = Writer::new();
        w.put_u8(5);
        w.put_u32(MAX_BATCH as u32 + 1);
        let bytes = w.finish();
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::LengthOutOfBounds { .. })
        ));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            Request::decode(&[99]),
            Err(WireError::UnknownTag {
                what: "request",
                tag: 99
            })
        ));
        assert!(matches!(
            Response::decode(&[77]),
            Err(WireError::UnknownTag {
                what: "response",
                tag: 77
            })
        ));
        assert!(matches!(
            Response::decode(&[6, 9, 0, 0, 0, 0]),
            Err(WireError::UnknownTag {
                what: "error code",
                tag: 9
            })
        ));
    }

    #[test]
    fn oversized_wal_chunk_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(0);
        w.put_f64(0.0);
        w.put_u32(MAX_WAL_CHUNK as u32 + 1); // claims more than the bound
        let bytes = w.finish();
        assert!(matches!(
            Response::decode(&bytes),
            Err(WireError::LengthOutOfBounds {
                what: "wal chunk",
                ..
            })
        ));
    }

    #[test]
    fn oversized_horizon_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u8(8);
        w.put_str("thing1");
        w.put_str("last-value");
        w.put_u32(MAX_HORIZON as u32 + 1); // claims more than the bound
        let bytes = w.finish();
        assert!(matches!(
            Response::decode(&bytes),
            Err(WireError::LengthOutOfBounds {
                what: "horizon",
                ..
            })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Snapshot.encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn empty_payload_rejected() {
        assert!(matches!(Request::decode(&[]), Err(WireError::Truncated)));
        assert!(matches!(Response::decode(&[]), Err(WireError::Truncated)));
    }

    #[test]
    fn nan_and_negative_zero_survive_the_wire_bit_for_bit() {
        let mut reply = forecast_reply();
        reply.value = f64::NAN;
        reply.staleness = -0.0;
        let resp = Response::Forecast(reply);
        let decoded = Response::decode(&resp.encode()).unwrap();
        match decoded {
            Response::Forecast(r) => {
                assert!(r.value.is_nan());
                assert_eq!(r.staleness.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
