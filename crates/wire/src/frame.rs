//! Frame layer: the versioned 8-byte header and length-prefixed payload
//! that carry encoded messages over a byte stream.
//!
//! ```text
//! offset  0        2         3      4         8
//!         magic:u16 version:u8 kind:u8 len:u32le payload[len]
//! ```
//!
//! The magic is written big-endian so a hex dump starts with the ASCII
//! bytes `NW`. [`read_frame`] refuses frames whose declared payload
//! exceeds [`MAX_FRAME`](crate::MAX_FRAME) *before* reading the payload,
//! so a hostile peer cannot force an unbounded allocation.

use crate::message::{Request, Response};
use crate::{WireError, MAGIC, MAX_FRAME, VERSION};
use std::io::{Read, Write};

/// Header length in bytes.
pub const HEADER_LEN: usize = 8;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A client-to-server [`Request`].
    Request,
    /// A server-to-client [`Response`].
    Response,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(FrameKind::Request),
            1 => Ok(FrameKind::Response),
            other => Err(WireError::BadKind(other)),
        }
    }
}

/// Stamps the 8-byte header into `buf[..HEADER_LEN]`, treating the rest
/// of the buffer as the already-encoded payload.
fn finish_header(buf: &mut [u8], kind: FrameKind) {
    let len = buf.len() - HEADER_LEN;
    debug_assert!(len <= MAX_FRAME, "payload exceeds MAX_FRAME");
    buf[..2].copy_from_slice(&MAGIC.to_be_bytes());
    buf[2] = VERSION;
    buf[3] = kind.tag();
    buf[4..HEADER_LEN].copy_from_slice(&(len as u32).to_le_bytes());
}

/// Encodes one request as a complete frame (header + payload) into
/// `buf`, clearing it first. Reusing one buffer across exchanges keeps
/// the encode path allocation-free once the buffer has warmed up.
pub fn encode_request_frame(buf: &mut Vec<u8>, req: &Request) {
    buf.clear();
    buf.resize(HEADER_LEN, 0);
    req.encode_to(buf);
    finish_header(buf, FrameKind::Request);
}

/// Encodes one response as a complete frame (header + payload) into
/// `buf`, clearing it first. The per-connection scratch the server
/// writes every reply through.
pub fn encode_response_frame(buf: &mut Vec<u8>, resp: &Response) {
    buf.clear();
    buf.resize(HEADER_LEN, 0);
    resp.encode_to(buf);
    finish_header(buf, FrameKind::Response);
}

/// Reads one frame, validating magic, version, kind, and the payload
/// bound before the payload itself is read.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic = u16::from_be_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[2] != VERSION {
        return Err(WireError::BadVersion(header[2]));
    }
    let kind = FrameKind::from_tag(header[3])?;
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((kind, payload))
}

/// Frames and writes one request. Allocates a fresh frame buffer per
/// call; loops should hold a scratch `Vec` and use
/// [`encode_request_frame`] instead.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    let mut buf = Vec::new();
    encode_request_frame(&mut buf, req);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Frames and writes one response. Allocates a fresh frame buffer per
/// call; loops should hold a scratch `Vec` and use
/// [`encode_response_frame`] instead.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), WireError> {
    let mut buf = Vec::new();
    encode_response_frame(&mut buf, resp);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame and decodes it as a request, rejecting response
/// frames.
pub fn read_request(r: &mut impl Read) -> Result<Request, WireError> {
    match read_frame(r)? {
        (FrameKind::Request, payload) => Request::decode(&payload),
        (FrameKind::Response, _) => Err(WireError::BadKind(FrameKind::Response.tag())),
    }
}

/// Reads one frame and decodes it as a response, rejecting request
/// frames. Returns the raw payload too, so callers can compare replies
/// byte for byte across transports.
pub fn read_response(r: &mut impl Read) -> Result<(Response, Vec<u8>), WireError> {
    match read_frame(r)? {
        (FrameKind::Response, payload) => {
            let resp = Response::decode(&payload)?;
            Ok((resp, payload))
        }
        (FrameKind::Request, _) => Err(WireError::BadKind(FrameKind::Request.tag())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ErrorCode, ErrorReply};
    use std::io::Cursor;

    #[test]
    fn request_frames_round_trip() {
        let req = Request::SeriesTail {
            host: "gremlin".into(),
            n: 32,
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        assert_eq!(&buf[..2], b"NW");
        assert_eq!(read_request(&mut Cursor::new(&buf)).unwrap(), req);
    }

    #[test]
    fn response_frames_round_trip_with_payload() {
        let resp = Response::BestHost(None);
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let (decoded, payload) = read_response(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(decoded, resp);
        assert_eq!(payload, resp.encode());
    }

    #[test]
    fn scratch_encoders_match_streaming_writers_byte_for_byte() {
        let req = Request::Batch(vec![Request::Snapshot, Request::Stats]);
        let resp = Response::Error(ErrorReply {
            code: ErrorCode::BadRequest,
            message: "nope".into(),
        });
        let mut streamed = Vec::new();
        write_request(&mut streamed, &req).unwrap();
        // Pre-dirty the scratch: encode must clear leftovers from the
        // previous (larger) frame before reuse.
        let mut scratch = vec![0xAA; 512];
        encode_request_frame(&mut scratch, &req);
        assert_eq!(scratch, streamed);
        let mut streamed = Vec::new();
        write_response(&mut streamed, &resp).unwrap();
        encode_response_frame(&mut scratch, &resp);
        assert_eq!(scratch, streamed);
        assert_eq!(read_response(&mut scratch.as_slice()).unwrap().0, resp);
    }

    #[test]
    fn bad_magic_version_kind_rejected() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Stats).unwrap();
        let mut bad = buf.clone();
        bad[0] = 0x00;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad)),
            Err(WireError::BadMagic(_))
        ));
        let mut bad = buf.clone();
        bad[2] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad)),
            Err(WireError::BadVersion(9))
        ));
        let mut bad = buf.clone();
        bad[3] = 7;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad)),
            Err(WireError::BadKind(7))
        ));
    }

    #[test]
    fn oversized_frame_rejected_before_payload_read() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Stats).unwrap();
        buf[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        // Only the header is present; the bound must trip before the
        // (absent) 4 GiB payload is waited for.
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf[..HEADER_LEN])),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_frames_rejected() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::Forecast {
                host: "kongo".into(),
            },
        )
        .unwrap();
        for cut in 0..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut]));
            assert!(
                matches!(err, Err(WireError::Truncated)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::BestHost(None)).unwrap();
        assert!(matches!(
            read_request(&mut Cursor::new(&buf)),
            Err(WireError::BadKind(1))
        ));
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Stats).unwrap();
        assert!(matches!(
            read_response(&mut Cursor::new(&buf)),
            Err(WireError::BadKind(0))
        ));
    }
}
