//! Frame layer: the versioned 8-byte header and length-prefixed payload
//! that carry encoded messages over a byte stream.
//!
//! ```text
//! offset  0        2         3      4         8
//!         magic:u16 version:u8 kind:u8 len:u32le payload[len]
//! ```
//!
//! The magic is written big-endian so a hex dump starts with the ASCII
//! bytes `NW`. [`read_frame`] refuses frames whose declared payload
//! exceeds [`MAX_FRAME`](crate::MAX_FRAME) *before* reading the payload,
//! so a hostile peer cannot force an unbounded allocation.

use crate::message::{Request, Response};
use crate::{WireError, MAGIC, MAX_FRAME, VERSION};
use std::io::{Read, Write};

/// Header length in bytes.
pub const HEADER_LEN: usize = 8;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A client-to-server [`Request`].
    Request,
    /// A server-to-client [`Response`].
    Response,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(FrameKind::Request),
            1 => Ok(FrameKind::Response),
            other => Err(WireError::BadKind(other)),
        }
    }
}

/// Stamps the 8-byte header into `buf[start..start + HEADER_LEN]`,
/// treating everything after it as the already-encoded payload.
fn finish_header_at(buf: &mut [u8], start: usize, kind: FrameKind) {
    let len = buf.len() - start - HEADER_LEN;
    debug_assert!(len <= MAX_FRAME, "payload exceeds MAX_FRAME");
    let header = &mut buf[start..start + HEADER_LEN];
    header[..2].copy_from_slice(&MAGIC.to_be_bytes());
    header[2] = VERSION;
    header[3] = kind.tag();
    header[4..].copy_from_slice(&(len as u32).to_le_bytes());
}

/// Validates a frame header and returns what it declares: the kind and
/// the payload length, the latter already checked against
/// [`MAX_FRAME`](crate::MAX_FRAME). This is the incremental-decoding
/// entry point: a reactor that has buffered `HEADER_LEN` bytes can
/// learn exactly how many payload bytes to wait for — with the same
/// validation order and the same typed errors as [`read_frame`], so
/// error frames built from either path carry identical messages.
pub fn parse_frame_header(header: &[u8; HEADER_LEN]) -> Result<(FrameKind, usize), WireError> {
    let magic = u16::from_be_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[2] != VERSION {
        return Err(WireError::BadVersion(header[2]));
    }
    let kind = FrameKind::from_tag(header[3])?;
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    Ok((kind, len))
}

/// Reserves header space for a response frame at the end of `buf` and
/// returns the frame's start offset, to be passed to
/// [`end_response_frame`] once the payload has been appended. Lets a
/// dispatcher encode a reply payload *directly* into a connection's
/// write queue — straight from borrowed state, no intermediate
/// per-reply `Vec` — and stamp the header afterwards, when the length
/// is known.
pub fn begin_response_frame(buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.resize(start + HEADER_LEN, 0);
    start
}

/// Stamps the header of a frame begun with [`begin_response_frame`],
/// now that the payload (everything appended since) is in place.
pub fn end_response_frame(buf: &mut [u8], start: usize) {
    finish_header_at(buf, start, FrameKind::Response);
}

/// Appends one request as a complete frame (header + payload) to `buf`
/// without clearing it — the pipelining building block: many frames
/// queue back to back in one buffer.
pub fn append_request_frame(buf: &mut Vec<u8>, req: &Request) {
    let start = buf.len();
    buf.resize(start + HEADER_LEN, 0);
    req.encode_to(buf);
    finish_header_at(buf, start, FrameKind::Request);
}

/// Appends one response as a complete frame (header + payload) to
/// `buf` without clearing it, so replies to pipelined requests stack
/// up in a per-connection write queue in request order.
pub fn append_response_frame(buf: &mut Vec<u8>, resp: &Response) {
    let start = buf.len();
    buf.resize(start + HEADER_LEN, 0);
    resp.encode_to(buf);
    finish_header_at(buf, start, FrameKind::Response);
}

/// Encodes one request as a complete frame (header + payload) into
/// `buf`, clearing it first. Reusing one buffer across exchanges keeps
/// the encode path allocation-free once the buffer has warmed up.
pub fn encode_request_frame(buf: &mut Vec<u8>, req: &Request) {
    buf.clear();
    append_request_frame(buf, req);
}

/// Encodes one response as a complete frame (header + payload) into
/// `buf`, clearing it first. The per-connection scratch the server
/// writes every reply through.
pub fn encode_response_frame(buf: &mut Vec<u8>, resp: &Response) {
    buf.clear();
    append_response_frame(buf, resp);
}

/// Reads one frame, validating magic, version, kind, and the payload
/// bound before the payload itself is read.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (kind, len) = parse_frame_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((kind, payload))
}

/// Frames and writes one request. Allocates a fresh frame buffer per
/// call; loops should hold a scratch `Vec` and use
/// [`encode_request_frame`] instead.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    let mut buf = Vec::new();
    encode_request_frame(&mut buf, req);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Frames and writes one response. Allocates a fresh frame buffer per
/// call; loops should hold a scratch `Vec` and use
/// [`encode_response_frame`] instead.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), WireError> {
    let mut buf = Vec::new();
    encode_response_frame(&mut buf, resp);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame and decodes it as a request, rejecting response
/// frames.
pub fn read_request(r: &mut impl Read) -> Result<Request, WireError> {
    match read_frame(r)? {
        (FrameKind::Request, payload) => Request::decode(&payload),
        (FrameKind::Response, _) => Err(WireError::BadKind(FrameKind::Response.tag())),
    }
}

/// Reads one frame and decodes it as a response, rejecting request
/// frames. Returns the raw payload too, so callers can compare replies
/// byte for byte across transports.
pub fn read_response(r: &mut impl Read) -> Result<(Response, Vec<u8>), WireError> {
    match read_frame(r)? {
        (FrameKind::Response, payload) => {
            let resp = Response::decode(&payload)?;
            Ok((resp, payload))
        }
        (FrameKind::Request, _) => Err(WireError::BadKind(FrameKind::Request.tag())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ErrorCode, ErrorReply};
    use std::io::Cursor;

    #[test]
    fn request_frames_round_trip() {
        let req = Request::SeriesTail {
            host: "gremlin".into(),
            n: 32,
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        assert_eq!(&buf[..2], b"NW");
        assert_eq!(read_request(&mut Cursor::new(&buf)).unwrap(), req);
    }

    #[test]
    fn response_frames_round_trip_with_payload() {
        let resp = Response::BestHost(None);
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let (decoded, payload) = read_response(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(decoded, resp);
        assert_eq!(payload, resp.encode());
    }

    #[test]
    fn scratch_encoders_match_streaming_writers_byte_for_byte() {
        let req = Request::Batch(vec![Request::Snapshot, Request::Stats]);
        let resp = Response::Error(ErrorReply {
            code: ErrorCode::BadRequest,
            message: "nope".into(),
        });
        let mut streamed = Vec::new();
        write_request(&mut streamed, &req).unwrap();
        // Pre-dirty the scratch: encode must clear leftovers from the
        // previous (larger) frame before reuse.
        let mut scratch = vec![0xAA; 512];
        encode_request_frame(&mut scratch, &req);
        assert_eq!(scratch, streamed);
        let mut streamed = Vec::new();
        write_response(&mut streamed, &resp).unwrap();
        encode_response_frame(&mut scratch, &resp);
        assert_eq!(scratch, streamed);
        assert_eq!(read_response(&mut scratch.as_slice()).unwrap().0, resp);
    }

    #[test]
    fn parse_frame_header_agrees_with_read_frame() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Snapshot).unwrap();
        let header: [u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().unwrap();
        let (kind, len) = parse_frame_header(&header).unwrap();
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(len, buf.len() - HEADER_LEN);
        // Every corruption read_frame rejects, parse_frame_header
        // rejects identically (same variant, same Display bytes).
        type Corruption = Box<dyn Fn(&mut [u8])>;
        let corruptions: Vec<Corruption> = vec![
            Box::new(|h| h[0] = 0x00),
            Box::new(|h| h[2] = 9),
            Box::new(|h| h[3] = 7),
            Box::new(|h| h[4..8].copy_from_slice(&u32::MAX.to_le_bytes())),
        ];
        for corrupt in corruptions {
            let mut bad = header;
            corrupt(&mut bad);
            let incremental = parse_frame_header(&bad).unwrap_err();
            let mut framed = buf.clone();
            framed[..HEADER_LEN].copy_from_slice(&bad);
            let streaming = read_frame(&mut Cursor::new(&framed)).unwrap_err();
            assert_eq!(incremental.to_string(), streaming.to_string());
        }
    }

    #[test]
    fn append_encoders_stack_frames_and_match_the_clearing_encoders() {
        let reqs = [
            Request::Stats,
            Request::SeriesTail {
                host: "kongo".into(),
                n: 8,
            },
        ];
        let mut stacked = Vec::new();
        let mut singles = Vec::new();
        for req in &reqs {
            append_request_frame(&mut stacked, req);
            let mut one = Vec::new();
            encode_request_frame(&mut one, req);
            singles.extend_from_slice(&one);
        }
        assert_eq!(stacked, singles);
        // Both frames decode back out of the shared buffer in order.
        let mut cursor = Cursor::new(&stacked);
        assert_eq!(read_request(&mut cursor).unwrap(), reqs[0]);
        assert_eq!(read_request(&mut cursor).unwrap(), reqs[1]);
    }

    #[test]
    fn begin_end_response_frame_matches_the_whole_frame_encoder() {
        let resp = Response::BestHost(None);
        let mut manual = vec![0xEE; 3]; // pre-existing queue content
        let start = begin_response_frame(&mut manual);
        resp.encode_to(&mut manual);
        end_response_frame(&mut manual, start);
        let mut whole = Vec::new();
        encode_response_frame(&mut whole, &resp);
        assert_eq!(&manual[..3], &[0xEE; 3]);
        assert_eq!(&manual[3..], &whole[..]);
    }

    #[test]
    fn bad_magic_version_kind_rejected() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Stats).unwrap();
        let mut bad = buf.clone();
        bad[0] = 0x00;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad)),
            Err(WireError::BadMagic(_))
        ));
        let mut bad = buf.clone();
        bad[2] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad)),
            Err(WireError::BadVersion(9))
        ));
        let mut bad = buf.clone();
        bad[3] = 7;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad)),
            Err(WireError::BadKind(7))
        ));
    }

    #[test]
    fn oversized_frame_rejected_before_payload_read() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Stats).unwrap();
        buf[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        // Only the header is present; the bound must trip before the
        // (absent) 4 GiB payload is waited for.
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf[..HEADER_LEN])),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_frames_rejected() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::Forecast {
                host: "kongo".into(),
            },
        )
        .unwrap();
        for cut in 0..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut]));
            assert!(
                matches!(err, Err(WireError::Truncated)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::BestHost(None)).unwrap();
        assert!(matches!(
            read_request(&mut Cursor::new(&buf)),
            Err(WireError::BadKind(1))
        ));
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Stats).unwrap();
        assert!(matches!(
            read_response(&mut Cursor::new(&buf)),
            Err(WireError::BadKind(0))
        ));
    }
}
