//! Property tests for the wire protocol: every request/response variant
//! round-trips bit-exactly, and arbitrary garbage is rejected with a
//! typed error — never a panic.

use nws_wire::{
    read_frame, write_request, write_response, ErrorCode, ErrorReply, ForecastReply, HostRow,
    Request, Response, SeriesPoint, SeriesTailReply, SnapshotReply, StatsReply, MAX_BATCH,
};
use proptest::prelude::*;

/// A generated host name: realistic short ASCII, sometimes empty.
fn host_name() -> impl Strategy<Value = String> {
    (0u64..u64::MAX, 0usize..12).prop_map(|(seed, len)| {
        let mut s = String::new();
        let mut x = seed;
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let c = b'a' + ((x >> 33) % 26) as u8;
            s.push(c as char);
        }
        s
    })
}

/// Any f64 bit pattern, including NaNs, infinities, and signed zeros.
fn any_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn leaf_request() -> BoxedStrategy<Request> {
    prop_oneof![
        host_name().prop_map(|host| Request::Forecast { host }),
        Just(Request::Snapshot),
        Just(Request::BestHost),
        (host_name(), any::<u32>()).prop_map(|(host, n)| Request::SeriesTail { host, n }),
        Just(Request::Stats),
    ]
    .boxed()
}

fn any_request() -> BoxedStrategy<Request> {
    prop_oneof![
        leaf_request(),
        proptest::collection::vec(leaf_request(), 0..MAX_BATCH).prop_map(Request::Batch),
    ]
    .boxed()
}

fn host_row() -> impl Strategy<Value = HostRow> {
    (
        host_name(),
        proptest::option::of(any_f64()),
        proptest::option::of(any_f64()),
        any::<bool>(),
    )
        .prop_map(|(host, latest, forecast, degraded)| HostRow {
            host,
            latest,
            forecast,
            degraded,
        })
}

fn forecast_reply() -> impl Strategy<Value = ForecastReply> {
    (
        host_name(),
        any_f64(),
        host_name(),
        proptest::option::of((any_f64(), any_f64())),
        (any::<u64>(), any_f64(), any_f64()),
    )
        .prop_map(
            |(host, value, method, interval, (observations, staleness, confidence))| {
                ForecastReply {
                    host,
                    value,
                    method,
                    interval,
                    observations,
                    staleness,
                    confidence,
                }
            },
        )
}

fn leaf_response() -> BoxedStrategy<Response> {
    prop_oneof![
        forecast_reply().prop_map(Response::Forecast),
        (any_f64(), proptest::collection::vec(host_row(), 0..8))
            .prop_map(|(time, hosts)| Response::Snapshot(SnapshotReply { time, hosts })),
        proptest::option::of(host_row()).prop_map(Response::BestHost),
        (
            host_name(),
            proptest::collection::vec((any_f64(), any_f64()), 0..32)
        )
            .prop_map(|(host, pts)| {
                Response::SeriesTail(SeriesTailReply {
                    host,
                    points: pts
                        .into_iter()
                        .map(|(time, value)| SeriesPoint { time, value })
                        .collect(),
                })
            }),
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u32>())
        )
            .prop_map(
                |((requests, cache_hits, cache_misses), (invalidations, slots, hosts))| {
                    Response::Stats(StatsReply {
                        requests,
                        cache_hits,
                        cache_misses,
                        invalidations,
                        slots,
                        hosts,
                    })
                }
            ),
        (0u8..3, host_name()).prop_map(|(code, message)| {
            let code = match code {
                0 => ErrorCode::UnknownHost,
                1 => ErrorCode::ColdForecast,
                _ => ErrorCode::BadRequest,
            };
            Response::Error(ErrorReply { code, message })
        }),
    ]
    .boxed()
}

fn any_response() -> BoxedStrategy<Response> {
    prop_oneof![
        leaf_response(),
        proptest::collection::vec(leaf_response(), 0..8).prop_map(Response::Batch),
    ]
    .boxed()
}

/// Bit-level equality for the f64-bearing message types (NaN-safe), via
/// the canonical encoding.
fn same_bytes_request(a: &Request, b: &Request) -> bool {
    a.encode() == b.encode()
}

fn same_bytes_response(a: &Response, b: &Response) -> bool {
    a.encode() == b.encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip(req in any_request()) {
        let decoded = Request::decode(&req.encode()).expect("decode own encoding");
        prop_assert!(same_bytes_request(&decoded, &req), "{req:?} != {decoded:?}");
    }

    #[test]
    fn responses_round_trip(resp in any_response()) {
        let decoded = Response::decode(&resp.encode()).expect("decode own encoding");
        prop_assert!(same_bytes_response(&decoded, &resp), "{resp:?} != {decoded:?}");
    }

    #[test]
    fn framed_requests_round_trip(req in any_request()) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).expect("write to vec");
        let decoded = nws_wire::read_request(&mut std::io::Cursor::new(&buf))
            .expect("read own frame");
        prop_assert!(same_bytes_request(&decoded, &req));
    }

    #[test]
    fn garbage_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Either a clean decode or a typed error; a panic fails the test.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn garbage_frames_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = read_frame(&mut std::io::Cursor::new(&bytes));
    }

    #[test]
    fn truncated_valid_frames_are_rejected(resp in any_response(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).expect("write to vec");
        let cut = ((buf.len() as f64) * frac) as usize;
        if cut < buf.len() {
            let r = read_frame(&mut std::io::Cursor::new(&buf[..cut]));
            prop_assert!(r.is_err(), "cut frame at {cut}/{} must not decode", buf.len());
        }
    }

    #[test]
    fn single_byte_corruption_never_panics(req in any_request(), pos_seed in any::<u64>(), flip in 1u8..=255) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).expect("write to vec");
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= flip;
        // Corruption may still decode to *some* valid message (e.g. a
        // flipped f64 bit); it must never panic or over-read.
        let _ = nws_wire::read_request(&mut std::io::Cursor::new(&buf));
    }
}
