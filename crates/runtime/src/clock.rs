//! Swappable time sources for the event engine.
//!
//! The engine computes every slot's timestamp from the [`Cadence`] — the
//! clock never feeds values into the measurement path, so two runs under
//! different clocks produce bit-identical events. What a clock controls
//! is *pacing*: how much wall time passes between slots.
//!
//! - [`VirtualClock`] jumps instantly — simulation, tests, benchmarks.
//! - [`StepClock`] also never sleeps but moves in fixed quanta, modeling
//!   a discrete scheduler tick; with a quantum dividing the measurement
//!   period it lands on exactly the same slot times as the virtual
//!   clock.
//! - [`WallClock`] sleeps until each slot's real-time due point — live
//!   serving, where sensor ticks must track actual elapsed time.
//!
//! [`Cadence`]: crate::engine::Cadence

use std::time::Instant;

/// A monotonic time source the engine advances slot by slot.
///
/// `advance_to` is called with each slot's nominal timestamp (simulated
/// seconds); `now` reports the clock's current position. Implementations
/// must be monotone: `advance_to` never moves time backwards.
pub trait Clock: Send {
    /// Current position in simulated seconds.
    fn now(&self) -> f64;

    /// Advances to (at least) `t` simulated seconds, sleeping if this
    /// clock paces against wall time.
    fn advance_to(&mut self, t: f64);
}

/// Virtual time: `advance_to` jumps instantly. The default for
/// simulation, tests, and benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A virtual clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> f64 {
        self.now
    }

    fn advance_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// Quantized virtual time: advances in fixed `quantum`-second ticks to
/// the first tick at or past the target, like a discrete scheduler.
/// Never sleeps.
#[derive(Debug, Clone, Copy)]
pub struct StepClock {
    now: f64,
    quantum: f64,
    ticks: u64,
}

impl StepClock {
    /// A step clock starting at t = 0.
    ///
    /// # Panics
    ///
    /// Panics unless `quantum` is positive and finite.
    pub fn new(quantum: f64) -> Self {
        assert!(
            quantum.is_finite() && quantum > 0.0,
            "step quantum must be positive and finite: {quantum}"
        );
        Self {
            now: 0.0,
            quantum,
            ticks: 0,
        }
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

impl Clock for StepClock {
    fn now(&self) -> f64 {
        self.now
    }

    fn advance_to(&mut self, t: f64) {
        while self.now < t {
            self.ticks += 1;
            self.now = self.ticks as f64 * self.quantum;
        }
    }
}

/// Wall-clock pacing: each simulated second maps to `1 / rate` real
/// seconds from the clock's creation, and `advance_to` sleeps until the
/// target's real due point. For live serving loops.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
    /// Simulated seconds per wall-clock second.
    rate: f64,
    now: f64,
}

impl WallClock {
    /// A real-time clock: one simulated second per wall second.
    pub fn new() -> Self {
        Self::with_rate(1.0)
    }

    /// A scaled clock — `rate` simulated seconds per wall second (e.g.
    /// 10.0 runs the 10 s cadence on 1 s wall ticks).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and finite.
    pub fn with_rate(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "wall-clock rate must be positive and finite: {rate}"
        );
        Self {
            origin: Instant::now(),
            rate,
            now: 0.0,
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.now
    }

    fn advance_to(&mut self, t: f64) {
        if t <= self.now {
            return;
        }
        let due = std::time::Duration::from_secs_f64((t / self.rate).max(0.0));
        let elapsed = self.origin.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_jumps_and_is_monotone() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance_to(30.0);
        assert_eq!(c.now(), 30.0);
        c.advance_to(10.0); // never backwards
        assert_eq!(c.now(), 30.0);
    }

    #[test]
    fn step_clock_lands_on_quantum_multiples() {
        let mut c = StepClock::new(10.0);
        c.advance_to(10.0);
        assert_eq!(c.now(), 10.0);
        assert_eq!(c.ticks(), 1);
        c.advance_to(25.0); // rounds up to the next tick
        assert_eq!(c.now(), 30.0);
        assert_eq!(c.ticks(), 3);
        c.advance_to(30.0); // already there
        assert_eq!(c.ticks(), 3);
    }

    #[test]
    fn step_clock_matches_virtual_on_the_slot_grid() {
        let mut s = StepClock::new(10.0);
        let mut v = VirtualClock::new();
        for slot in 1..=50u64 {
            let t = slot as f64 * 10.0;
            s.advance_to(t);
            v.advance_to(t);
            assert_eq!(s.now().to_bits(), v.now().to_bits());
        }
    }

    #[test]
    fn wall_clock_sleeps_to_the_due_point() {
        // 1000 simulated seconds per wall second: 50 sim-seconds is a
        // 50 ms sleep — fast enough for a unit test, long enough to
        // measure.
        let mut c = WallClock::with_rate(1000.0);
        let t0 = Instant::now();
        c.advance_to(50.0);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(45));
        assert_eq!(c.now(), 50.0);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn step_clock_rejects_bad_quantum() {
        let _ = StepClock::new(0.0);
    }
}
