//! Deterministic parallel execution primitives.
//!
//! The experiment stack fans out over independent units of work — hosts,
//! seeds, probe durations, aggregation levels — whose outputs are pure
//! functions of their inputs. [`parallel_map`] exploits that: it runs a
//! closure over a batch of items on a bounded pool of scoped threads and
//! returns the results **in input order**, so the output is bit-identical
//! to a sequential `map` regardless of the thread count or OS scheduling.
//!
//! The layer is dependency-free (plain `std::thread::scope`) and the
//! thread count is resolved, in priority order, from:
//!
//! 1. a programmatic override installed with [`set_threads`] (the
//!    `repro --threads N` flag uses this),
//! 2. the `NWS_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `threads = 1` is a guaranteed sequential fallback: the closure runs on
//! the caller's thread and no worker threads are spawned at all.
//!
//! On top of the parallel map sits the [`engine`] module: the
//! deterministic discrete-event engine the sensing → storage → forecast →
//! serve pipeline runs on, with swappable [`clock`]s (virtual time for
//! simulation and tests, wall time for live serving).

pub mod clock;
pub mod engine;

pub use clock::{Clock, StepClock, VirtualClock, WallClock};
pub use engine::{Cadence, Engine, EngineConfig, Source, Stage};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Programmatic thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide thread-count override taking precedence over
/// `NWS_THREADS` and the detected parallelism. Pass `None` to clear it.
///
/// A count of 0 is treated as `None`.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Resolves the effective worker-thread count.
///
/// Priority: [`set_threads`] override, then the `NWS_THREADS` environment
/// variable (ignored if unparsable or zero), then
/// [`std::thread::available_parallelism`] (1 if unavailable).
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("NWS_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`threads`]`()` scoped worker threads,
/// returning the results in input order.
///
/// Work is handed out through a shared atomic cursor, so threads stay busy
/// even when per-item costs are uneven; each result is written back into
/// the slot matching its input index, which makes the output order — and
/// therefore every downstream artifact — independent of scheduling.
///
/// With an effective thread count of 1 (or at most one item) this runs
/// sequentially on the caller's thread. A panic in `f` propagates to the
/// caller once the scope joins.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(threads(), items, f)
}

/// [`parallel_map`] with an explicit thread count, bypassing the global
/// resolution. Mostly useful for tests pinning both sides of an
/// equivalence check.
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= slots.len() {
                        break;
                    }
                    let item = slots[idx]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let out = f(item);
                    *results[idx].lock().expect("result slot poisoned") = Some(out);
                })
            })
            .collect();
        // Join explicitly so a worker panic resurfaces with its original
        // payload instead of the scope's generic one.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker left result slot empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        for workers in [1, 2, 3, 8, 64] {
            let items: Vec<u64> = (0..97).collect();
            let out = parallel_map_with(workers, items.clone(), |x| x * x);
            let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert_eq!(parallel_map_with(4, empty, |x| x + 1), Vec::<i32>::new());
        assert_eq!(parallel_map_with(4, vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn handles_non_clone_items_and_results() {
        // T and R only need Send; exercise with heap-owning values.
        let items: Vec<String> = (0..20).map(|i| format!("host-{i}")).collect();
        let out = parallel_map_with(4, items, |s| s.into_bytes());
        assert_eq!(out.len(), 20);
        assert_eq!(out[7], b"host-7".to_vec());
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Early items sleep longer, so later items finish first.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map_with(8, items, |i| {
            std::thread::sleep(std::time::Duration::from_millis(16 - i));
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        parallel_map_with(4, vec![0, 1, 2, 3], |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn override_beats_env_and_detection() {
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn sequential_fallback_runs_on_caller_thread() {
        let caller = std::thread::current().id();
        let out = parallel_map_with(1, vec![(), (), ()], |()| std::thread::current().id());
        assert!(out.iter().all(|id| *id == caller));
    }
}
