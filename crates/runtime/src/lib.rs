//! Deterministic parallel execution primitives.
//!
//! The experiment stack fans out over independent units of work — hosts,
//! seeds, probe durations, aggregation levels — whose outputs are pure
//! functions of their inputs. [`parallel_map`] exploits that: it runs a
//! closure over a batch of items on a bounded pool of worker threads and
//! returns the results **in input order**, so the output is bit-identical
//! to a sequential `map` regardless of the thread count or OS scheduling.
//! [`parallel_zip_mut`] and [`parallel_for_each_mut`] are the in-place
//! variants the event engine uses: they mutate caller-owned slices
//! through exclusive per-index access and allocate nothing.
//!
//! The layer is dependency-free. Worker threads are spawned once, on the
//! first parallel dispatch, into a process-wide [`pool`]; subsequent
//! dispatches hand a borrowed job to the resident workers through a
//! condvar handshake, so steady-state fan-outs allocate no thread stacks
//! and no queue nodes. The effective worker count is resolved, in
//! priority order, from:
//!
//! 1. a programmatic override installed with [`set_threads`] (the
//!    `repro --threads N` flag uses this),
//! 2. the `NWS_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Requesting more workers than the machine has cores only adds
//! scheduling overhead — every primitive here is output-invariant in the
//! thread count by construction — so the resolved count is additionally
//! clamped to the detected hardware parallelism at dispatch time.
//! `threads = 1` is a guaranteed sequential fallback: the closure runs on
//! the caller's thread and the pool is never touched.
//!
//! On top of the parallel primitives sits the [`engine`] module: the
//! deterministic discrete-event engine the sensing → storage → forecast →
//! serve pipeline runs on, with swappable [`clock`]s (virtual time for
//! simulation and tests, wall time for live serving).

pub mod clock;
pub mod engine;

pub use clock::{Clock, StepClock, VirtualClock, WallClock};
pub use engine::{Cadence, Engine, EngineConfig, Source, Stage};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Programmatic thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide thread-count override taking precedence over
/// `NWS_THREADS` and the detected parallelism. Pass `None` to clear it.
///
/// A count of 0 is treated as `None`.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Resolves the requested worker-thread count.
///
/// Priority: [`set_threads`] override, then the `NWS_THREADS` environment
/// variable (ignored if unparsable or zero), then
/// [`std::thread::available_parallelism`] (1 if unavailable).
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("NWS_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    hardware_threads()
}

/// Detected hardware parallelism (cached; 1 if detection fails).
pub fn hardware_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached > 0 {
        return cached;
    }
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    CACHED.store(detected, Ordering::Relaxed);
    detected
}

/// Effective worker count for a dispatch over `n` items: the requested
/// count, bounded by the items available and the hardware (see the
/// module docs for why oversubscription is clamped).
fn effective_workers(requested: usize, n: usize) -> usize {
    requested.max(1).min(n).min(hardware_threads())
}

/// Chunk of consecutive indices a worker claims per cursor fetch. Large
/// enough to amortize the atomic, small enough (4 chunks per worker) to
/// rebalance when per-item costs are uneven.
fn chunk_size(n: usize, workers: usize) -> usize {
    (n / (workers * 4)).max(1)
}

/// The resident worker pool: spawned once, reused by every dispatch.
///
/// A dispatch publishes a *borrowed* job (a type-erased `&impl Fn()`)
/// under a mutex, wakes the workers, runs the job on the caller's thread
/// too, and blocks until every worker has bumped the done counter. The
/// caller outliving the handshake is what makes the borrow sound — no
/// boxing, no channels, no per-job allocation.
mod pool {
    use std::panic::AssertUnwindSafe;
    use std::sync::{Condvar, Mutex, Once, OnceLock};

    /// Type-erased pointer to a caller-stack job closure.
    #[derive(Clone, Copy)]
    struct Job {
        data: *const (),
        call: unsafe fn(*const ()),
    }
    // SAFETY: the pointee is `Sync` (enforced by `run`'s bound) and the
    // caller blocks until all workers are done with it.
    unsafe impl Send for Job {}

    struct Shared {
        /// Monotonic job counter; workers run each epoch exactly once.
        epoch: u64,
        /// The job for the current epoch.
        job: Option<Job>,
        /// Workers finished with the current epoch's job.
        done: usize,
        /// First panic payload a worker caught for the current epoch.
        panic: Option<Box<dyn std::any::Any + Send>>,
    }

    pub(crate) struct Pool {
        shared: Mutex<Shared>,
        work_cv: Condvar,
        done_cv: Condvar,
        /// Serializes dispatches; `try_lock` failure means a nested or
        /// concurrent dispatch, which runs inline instead.
        gate: Mutex<()>,
        /// Resident worker threads (callers participate too, so the
        /// pool holds `hardware_threads() - 1` of them).
        workers: usize,
    }

    fn helper_loop(pool: &'static Pool) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut s = pool.shared.lock().expect("pool state poisoned");
                loop {
                    if s.epoch != seen {
                        if let Some(job) = s.job {
                            seen = s.epoch;
                            break job;
                        }
                    }
                    s = pool.work_cv.wait(s).expect("pool state poisoned");
                }
            };
            // SAFETY: the dispatching caller blocks until `done` reaches
            // the worker count, so the pointee is alive for this call.
            let outcome =
                std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data) }));
            let mut s = pool.shared.lock().expect("pool state poisoned");
            if let Err(payload) = outcome {
                s.panic.get_or_insert(payload);
            }
            s.done += 1;
            if s.done >= pool.workers {
                pool.done_cv.notify_one();
            }
        }
    }

    fn get() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        static STARTED: Once = Once::new();
        let pool = POOL.get_or_init(|| Pool {
            shared: Mutex::new(Shared {
                epoch: 0,
                job: None,
                done: 0,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            gate: Mutex::new(()),
            workers: super::hardware_threads().saturating_sub(1),
        });
        STARTED.call_once(|| {
            for _ in 0..pool.workers {
                std::thread::spawn(move || helper_loop(pool));
            }
        });
        pool
    }

    /// Runs `job` on the pool workers and the caller's thread, returning
    /// once every participant has finished. `job` must fully cooperate
    /// through interior synchronization (the dispatchers use an atomic
    /// index cursor), because every resident worker calls it once.
    pub(crate) fn run<F: Fn() + Sync>(job: &F) {
        let pool = get();
        if pool.workers == 0 {
            job();
            return;
        }
        let _gate = match pool.gate.try_lock() {
            Ok(g) => g,
            // Nested or concurrent dispatch: index-claiming jobs drain
            // correctly on one thread, so run inline rather than block.
            Err(_) => {
                job();
                return;
            }
        };
        unsafe fn call_impl<F: Fn()>(data: *const ()) {
            unsafe { (*(data as *const F))() }
        }
        {
            let mut s = pool.shared.lock().expect("pool state poisoned");
            s.epoch += 1;
            s.job = Some(Job {
                data: job as *const F as *const (),
                call: call_impl::<F>,
            });
            s.done = 0;
            s.panic = None;
            pool.work_cv.notify_all();
        }
        // Participate, but trap a local panic until the workers have
        // finished with the borrowed job — unwinding early would free
        // the closure out from under them.
        let caller_panic = std::panic::catch_unwind(AssertUnwindSafe(job)).err();
        let mut s = pool.shared.lock().expect("pool state poisoned");
        while s.done < pool.workers {
            s = pool.done_cv.wait(s).expect("pool state poisoned");
        }
        s.job = None;
        let worker_panic = s.panic.take();
        drop(s);
        if let Some(payload) = caller_panic.or(worker_panic) {
            std::panic::resume_unwind(payload);
        }
    }
}

/// A raw pointer the dispatch closures may share across threads.
///
/// Soundness rests on the index protocol: the atomic cursor hands each
/// index to exactly one worker, so derived `&mut` accesses are disjoint.
struct SyncPtr<T>(*mut T);
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// `Sync` wrapper, not the bare pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Runs `f(i)` for every `i in 0..n`, each index exactly once, fanned
/// over `workers` participants (the caller plus pool workers). Allocates
/// nothing after the pool's one-time spawn.
fn dispatch(workers: usize, n: usize, f: impl Fn(usize) + Sync) {
    debug_assert!(workers >= 2, "sequential callers skip dispatch");
    let chunk = chunk_size(n, workers);
    let cursor = AtomicUsize::new(0);
    let tickets = AtomicUsize::new(0);
    let body = move || {
        // Every resident worker calls the job; only `workers` of them
        // (counting the caller) actually claim indices, preserving the
        // requested concurrency bound.
        if tickets.fetch_add(1, Ordering::Relaxed) >= workers {
            return;
        }
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            for i in start..end {
                f(i);
            }
        }
    };
    pool::run(&body);
}

/// Maps `f` over `items` on up to [`threads`]`()` pool workers,
/// returning the results in input order.
///
/// Work is handed out in chunks through a shared atomic cursor, so
/// threads stay busy even when per-item costs are uneven; each result is
/// written back into the slot matching its input index, which makes the
/// output order — and therefore every downstream artifact — independent
/// of scheduling.
///
/// With an effective worker count of 1 (or at most one item) this runs
/// sequentially on the caller's thread. A panic in `f` propagates to the
/// caller once the dispatch completes.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(threads(), items, f)
}

/// [`parallel_map`] with an explicit thread count, bypassing the global
/// resolution. Mostly useful for tests pinning both sides of an
/// equivalence check.
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = effective_workers(threads, n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let slot_ptr = SyncPtr(slots.as_mut_ptr());
    let result_ptr = SyncPtr(results.as_mut_ptr());
    dispatch(workers, n, |i| {
        // SAFETY: `dispatch` hands out each index exactly once, so the
        // slot and result cells at `i` are exclusively ours; both
        // vectors outlive the dispatch (the caller blocks in it).
        let item = unsafe { (*slot_ptr.get().add(i)).take() }.expect("work item claimed twice");
        let out = f(item);
        unsafe { *result_ptr.get().add(i) = Some(out) };
    });

    results
        .into_iter()
        .map(|slot| slot.expect("worker left result slot empty"))
        .collect()
}

/// Runs `f(index, &mut item)` over a caller-owned slice in place, fanned
/// over up to [`threads`]`()` pool workers. Exclusive access per index is
/// guaranteed by the dispatch protocol; completion order is unspecified,
/// so `f` must not depend on cross-index ordering.
///
/// Allocates nothing: the engine calls this every round with its
/// persistent shard and arena storage.
pub fn parallel_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = effective_workers(threads(), n);
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let ptr = SyncPtr(items.as_mut_ptr());
    dispatch(workers, n, |i| {
        // SAFETY: each index is claimed exactly once (disjoint `&mut`),
        // and the slice outlives the dispatch.
        f(i, unsafe { &mut *ptr.get().add(i) });
    });
}

/// [`parallel_for_each_mut`] over two equal-length slices advanced in
/// lockstep: `f(index, &mut a[index], &mut b[index])`. The engine uses
/// this to pair each shard with its event arena without interleaving
/// their storage.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn parallel_zip_mut<A, B, F>(a: &mut [A], b: &mut [B], f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut A, &mut B) + Sync,
{
    assert_eq!(a.len(), b.len(), "zipped slices must match");
    let n = a.len();
    let workers = effective_workers(threads(), n);
    if workers <= 1 {
        for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            f(i, x, y);
        }
        return;
    }
    let pa = SyncPtr(a.as_mut_ptr());
    let pb = SyncPtr(b.as_mut_ptr());
    dispatch(workers, n, |i| {
        // SAFETY: as in `parallel_for_each_mut`, per-index exclusivity
        // comes from the dispatch protocol; both slices outlive it.
        f(i, unsafe { &mut *pa.get().add(i) }, unsafe {
            &mut *pb.get().add(i)
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        for workers in [1, 2, 3, 8, 64] {
            let items: Vec<u64> = (0..97).collect();
            let out = parallel_map_with(workers, items.clone(), |x| x * x);
            let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert_eq!(parallel_map_with(4, empty, |x| x + 1), Vec::<i32>::new());
        assert_eq!(parallel_map_with(4, vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn handles_non_clone_items_and_results() {
        // T and R only need Send; exercise with heap-owning values.
        let items: Vec<String> = (0..20).map(|i| format!("host-{i}")).collect();
        let out = parallel_map_with(4, items, |s| s.into_bytes());
        assert_eq!(out.len(), 20);
        assert_eq!(out[7], b"host-7".to_vec());
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Early items sleep longer, so later items finish first.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map_with(8, items, |i| {
            std::thread::sleep(std::time::Duration::from_millis(16 - i));
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        parallel_map_with(4, vec![0, 1, 2, 3], |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn override_beats_env_and_detection() {
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn sequential_fallback_runs_on_caller_thread() {
        let caller = std::thread::current().id();
        let out = parallel_map_with(1, vec![(), (), ()], |()| std::thread::current().id());
        assert!(out.iter().all(|id| *id == caller));
    }

    #[test]
    fn for_each_mut_touches_each_index_exactly_once() {
        for threads in [1, 4] {
            set_threads(Some(threads));
            let mut items: Vec<u64> = vec![0; 257];
            parallel_for_each_mut(&mut items, |i, slot| *slot += i as u64 + 1);
            set_threads(None);
            let expect: Vec<u64> = (0..257).map(|i| i + 1).collect();
            assert_eq!(items, expect, "threads={threads}");
        }
    }

    #[test]
    fn zip_mut_pairs_by_index() {
        for threads in [1, 4] {
            set_threads(Some(threads));
            let mut a: Vec<u64> = (0..100).collect();
            let mut b: Vec<u64> = vec![0; 100];
            parallel_zip_mut(&mut a, &mut b, |i, x, y| {
                *x *= 2;
                *y = *x + i as u64;
            });
            set_threads(None);
            for i in 0..100u64 {
                assert_eq!(a[i as usize], i * 2);
                assert_eq!(b[i as usize], i * 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zipped slices must match")]
    fn zip_mut_rejects_mismatched_lengths() {
        let mut a = [1, 2, 3];
        let mut b = [1, 2];
        parallel_zip_mut(&mut a, &mut b, |_, _, _| {});
    }

    #[test]
    fn for_each_mut_handles_empty_slice() {
        let mut items: Vec<u8> = Vec::new();
        parallel_for_each_mut(&mut items, |_, _| unreachable!());
    }

    #[test]
    fn nested_dispatch_falls_back_inline() {
        // A parallel map whose closure itself fans out must not deadlock
        // on the single dispatch gate.
        let items: Vec<u64> = (0..8).collect();
        let out = parallel_map_with(4, items, |i| {
            let mut inner: Vec<u64> = (0..16).collect();
            parallel_for_each_mut(&mut inner, |_, v| *v += i);
            inner.iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..8).map(|i| (0..16).map(|v| v + i).sum()).collect();
        assert_eq!(out, expect);
    }
}
