//! The deterministic discrete-event engine behind the NWS pipeline.
//!
//! One dataflow drives the whole reproduction — periodic sensor readings
//! feed a memory, forecasters, and consumers — and this module is the
//! single place its timing, batching, and ordering live. An [`Engine`]
//! owns a set of per-shard [`Source`]s (one per monitored host or link),
//! a [`Cadence`] defining the slot grid, and a swappable [`Clock`] that
//! paces the run (virtual time for simulation and tests, wall time for
//! live serving). Each measurement slot, every source produces one event;
//! a [`Stage`] commits the events into shared state (memory, forecast
//! service, serving caches).
//!
//! # Event ordering and tie-breaking
//!
//! Events are totally ordered by `(slot, shard index)`: all of slot `s`
//! commits before anything of slot `s + 1`, and within a slot shards
//! commit in registration order. The order is a property of the engine,
//! never of thread scheduling — production may fan out across threads
//! ([`parallel_zip_mut`]), but commits always replay the canonical
//! order, so runs are bit-identical at any thread count.
//!
//! # Bounded batches, pooled buffers
//!
//! Production is buffered at most [`EngineConfig::batch_slots`] slots
//! ahead of the commit stage — the engine's event queues are bounded by
//! `batch_slots × shards` and the commit barrier at the end of each
//! round provides backpressure: no source can run further ahead than one
//! batch window.
//!
//! The buffers themselves are engine-owned, per-shard event arenas,
//! double-buffered as a front/back pair: each round the producers fill
//! the back arenas in place (via [`parallel_zip_mut`]), the banks swap,
//! and the commit loop drains the front slot-major. Arenas are cleared —
//! never dropped — between rounds, so once warmed to `batch_slots`
//! capacity a steady-state round performs no allocation at all.
//!
//! # The determinism contract
//!
//! Batching is transparent (any `batch_slots`, any thread count, same
//! bits) because of a split the traits encode: [`Source::produce`] may
//! touch only shard-local *measurement* state, and while
//! [`Stage::commit`] may mutate shard-local *delivery* state (retry
//! queues, statistics), `produce` must never read what `commit` writes.
//! The grid monitor's hosts honor this: sensing reads the host simulator
//! and fault stream; committing writes the delay lines and fault stats.
//!
//! [`parallel_zip_mut`]: crate::parallel_zip_mut

use crate::clock::{Clock, VirtualClock};

/// The shared tick configuration of the paper's measurement protocol.
///
/// Every layer used to carry its own copy of these constants; the engine
/// owns them now and the sensor/grid/sim layers consume this one struct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cadence {
    /// Seconds between passive measurements (paper: 10 s).
    pub measurement_period: f64,
    /// Seconds between active hybrid probes (paper: 60 s).
    pub probe_period: f64,
    /// Active probe duration (paper: 1.5 s — "the shortest probe
    /// duration that is useful"; overhead 1.5/60 = 2.5%).
    pub probe_duration: f64,
    /// Probe readings the hybrid's bias correction is smoothed over.
    pub bias_window: usize,
}

impl Cadence {
    /// The paper's schedule: 10 s measurements, 60 s probes of 1.5 s,
    /// bias smoothed across a 5-probe window.
    pub const PAPER: Cadence = Cadence {
        measurement_period: 10.0,
        probe_period: 60.0,
        probe_duration: 1.5,
        bias_window: 5,
    };

    /// Measurement slots between probe slots (paper: 6).
    pub fn probe_every(&self) -> u64 {
        (self.probe_period / self.measurement_period)
            .round()
            .max(1.0) as u64
    }

    /// Nominal timestamp of a slot index on this cadence's grid.
    pub fn slot_time(&self, slot: u64) -> f64 {
        slot as f64 * self.measurement_period
    }

    /// EWMA gain spreading a probe-bias correction across
    /// [`Cadence::bias_window`] probes (the paper cadence yields 0.3:
    /// ~83% of a correction's weight lands inside the window).
    pub fn bias_gain(&self) -> f64 {
        1.5 / self.bias_window as f64
    }
}

impl Default for Cadence {
    fn default() -> Self {
        Cadence::PAPER
    }
}

/// A per-shard event producer: one monitored host, one link set — any
/// unit whose measurement state is independent of every other shard's.
///
/// `produce` is called once per slot, in slot order, and must depend
/// only on this shard's own state (see the module-level determinism
/// contract).
pub trait Source: Send {
    /// What one slot of this shard yields.
    type Event: Send;

    /// Advances the shard to `slot` and produces its event.
    fn produce(&mut self, slot: u64) -> Self::Event;
}

/// The ordered commit side of the pipeline: stores, forecasters, sinks.
///
/// `commit` observes the canonical event order — slot-major, shard
/// registration order within a slot — regardless of how production was
/// parallelized. It receives the producing shard mutably so delivery
/// state that lives with the shard (delay lines, per-shard statistics)
/// can be updated at commit time.
pub trait Stage<S: Source> {
    /// Absorbs one shard's event for one slot.
    fn commit(&mut self, shard: usize, source: &mut S, slot: u64, event: &S::Event);
}

/// Engine tuning.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The slot grid.
    pub cadence: Cadence,
    /// Most slots a source may be produced ahead of the commit stage;
    /// bounds the event queues at `batch_slots × shards` events.
    pub batch_slots: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cadence: Cadence::PAPER,
            batch_slots: 64,
        }
    }
}

/// The deterministic event engine: sources + cadence + clock.
pub struct Engine<S: Source> {
    config: EngineConfig,
    clock: Box<dyn Clock>,
    sources: Vec<S>,
    slot: u64,
    /// Front bank of the double-buffered slot ring: the arenas the
    /// commit loop is draining (one arena of up to `batch_slots` events
    /// per shard). Persistent across rounds; cleared, never dropped.
    front: Vec<Vec<S::Event>>,
    /// Back bank: the arenas the producers fill. Swapped with `front`
    /// at the round's produce→commit handoff.
    back: Vec<Vec<S::Event>>,
}

impl<S: Source> Engine<S> {
    /// An engine over the given shards under virtual time.
    pub fn new(sources: Vec<S>, config: EngineConfig) -> Self {
        Self::with_clock(sources, config, Box::new(VirtualClock::new()))
    }

    /// An engine paced by an explicit clock. The clock affects pacing
    /// only, never event contents: any two clocks produce bit-identical
    /// output.
    pub fn with_clock(sources: Vec<S>, config: EngineConfig, clock: Box<dyn Clock>) -> Self {
        assert!(config.batch_slots > 0, "batch window must hold a slot");
        Self {
            config,
            clock,
            sources,
            slot: 0,
            front: Vec::new(),
            back: Vec::new(),
        }
    }

    /// The slot grid.
    pub fn cadence(&self) -> &Cadence {
        &self.config.cadence
    }

    /// Slots completed so far.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The clock's current position (simulated seconds).
    pub fn clock_now(&self) -> f64 {
        self.clock.now()
    }

    /// Registered shards, in commit order.
    pub fn sources(&self) -> &[S] {
        &self.sources
    }

    /// Mutable access to the shards (snapshotting, reconfiguration
    /// between runs).
    pub fn sources_mut(&mut self) -> &mut [S] {
        &mut self.sources
    }

    /// Changes the batch window for subsequent runs.
    pub fn set_batch_slots(&mut self, batch_slots: usize) {
        assert!(batch_slots > 0, "batch window must hold a slot");
        self.config.batch_slots = batch_slots;
    }

    /// Runs `slots` measurement slots through the pipeline, committing
    /// every event in canonical order and advancing the clock to each
    /// slot's due time.
    pub fn run<St: Stage<S>>(&mut self, slots: u64, stage: &mut St) {
        let mut remaining = slots;
        while remaining > 0 {
            let take = remaining.min(self.config.batch_slots as u64);
            self.round(take, stage);
            remaining -= take;
        }
    }

    /// One bounded batch: produce up to `take` slots per shard, then
    /// drain the buffered events slot-major in shard order.
    fn round<St: Stage<S>>(&mut self, take: u64, stage: &mut St) {
        let start = self.slot;
        if crate::threads() <= 1 || self.sources.len() <= 1 {
            // Sequential: produce and commit each event in canonical
            // order directly — the reference interleaving the parallel
            // path must reproduce.
            for i in 0..take {
                let slot = start + i;
                for (shard, src) in self.sources.iter_mut().enumerate() {
                    let ev = src.produce(slot);
                    stage.commit(shard, src, slot, &ev);
                }
                self.slot = slot + 1;
                self.clock
                    .advance_to(self.config.cadence.slot_time(self.slot));
            }
            return;
        }
        // Parallel: each shard produces its whole batch into its own
        // back arena on a worker thread (shard state is independent by
        // contract), the banks swap, then the buffered events commit in
        // exactly the sequential order. The arenas are persistent, so a
        // warmed round allocates nothing.
        if self.back.len() < self.sources.len() {
            self.back.resize_with(self.sources.len(), Vec::new);
        }
        crate::parallel_zip_mut(&mut self.sources, &mut self.back, |_, src, arena| {
            arena.clear();
            arena.extend((0..take).map(|i| src.produce(start + i)));
        });
        std::mem::swap(&mut self.front, &mut self.back);
        for i in 0..take {
            for (shard, src) in self.sources.iter_mut().enumerate() {
                stage.commit(shard, src, start + i, &self.front[shard][i as usize]);
            }
            self.clock
                .advance_to(self.config.cadence.slot_time(start + i + 1));
        }
        self.slot = start + take;
    }
}

impl<S: Source> std::fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("shards", &self.sources.len())
            .field("slot", &self.slot)
            .field("batch_slots", &self.config.batch_slots)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::StepClock;

    /// A toy shard: a seeded counter whose event mixes the slot index
    /// into shard-local state.
    struct Counter {
        seed: u64,
        state: u64,
    }

    impl Source for Counter {
        type Event = u64;
        fn produce(&mut self, slot: u64) -> u64 {
            self.state = self
                .state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(self.seed ^ slot);
            self.state
        }
    }

    /// Collects the committed event order and folds values into a hash.
    #[derive(Default)]
    struct Collector {
        order: Vec<(u64, usize)>,
        hash: u64,
    }

    impl Stage<Counter> for Collector {
        fn commit(&mut self, shard: usize, _src: &mut Counter, slot: u64, event: &u64) {
            self.order.push((slot, shard));
            self.hash = self.hash.wrapping_mul(0x100000001B3) ^ event;
        }
    }

    fn run_engine(
        threads: usize,
        batch_slots: usize,
        step_clock: bool,
    ) -> (Vec<(u64, usize)>, u64) {
        crate::set_threads(Some(threads));
        let sources: Vec<Counter> = (0..5).map(|i| Counter { seed: i, state: i }).collect();
        let config = EngineConfig {
            batch_slots,
            ..EngineConfig::default()
        };
        let mut engine = if step_clock {
            Engine::with_clock(sources, config, Box::new(StepClock::new(10.0)))
        } else {
            Engine::new(sources, config)
        };
        let mut stage = Collector::default();
        engine.run(100, &mut stage);
        crate::set_threads(None);
        assert_eq!(engine.slot(), 100);
        assert_eq!(engine.clock_now(), engine.cadence().slot_time(100));
        (stage.order, stage.hash)
    }

    #[test]
    fn commit_order_is_slot_major_shard_order() {
        let (order, _) = run_engine(4, 16, false);
        let expect: Vec<(u64, usize)> = (0..100u64)
            .flat_map(|s| (0..5).map(move |h| (s, h)))
            .collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn identical_across_threads_batches_and_clocks() {
        let reference = run_engine(1, 64, false);
        for threads in [1, 4] {
            for batch in [1, 16, 64] {
                for step_clock in [false, true] {
                    assert_eq!(
                        run_engine(threads, batch, step_clock),
                        reference,
                        "threads={threads} batch={batch} step_clock={step_clock}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_splits_into_bounded_rounds() {
        // 100 slots at batch 16: no production runs more than 16 slots
        // ahead of the commit stage. Observable as the same output plus
        // the slot counter landing exactly on the requested total.
        let (order, _) = run_engine(2, 16, false);
        assert_eq!(order.len(), 500);
    }

    #[test]
    fn cadence_derives_the_paper_schedule() {
        let c = Cadence::PAPER;
        assert_eq!(c.probe_every(), 6);
        assert_eq!(c.slot_time(12), 120.0);
        assert_eq!(c.bias_gain(), 0.3);
        assert_eq!(Cadence::default(), Cadence::PAPER);
    }

    #[test]
    #[should_panic(expected = "batch window")]
    fn zero_batch_window_is_rejected() {
        let _ = Engine::new(
            Vec::<Counter>::new(),
            EngineConfig {
                batch_slots: 0,
                ..EngineConfig::default()
            },
        );
    }
}
