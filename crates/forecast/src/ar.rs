//! Autoregressive prediction via Levinson–Durbin.
//!
//! The NWS "borrowed heavily from methodologies used by the digital signal
//! processing community" (Section 3, citing Haddad & Parsons). The
//! canonical DSP one-step predictor is an **AR(p) model** fit by solving
//! the Yule–Walker equations with the Levinson–Durbin recursion — O(p²)
//! per fit, far cheaper than a full regression, and refit only
//! periodically over a sliding window.
//!
//! [`ArPredictor`] implements exactly that: it keeps a window of recent
//! measurements, refits the AR coefficients every `refit_every`
//! observations from the window's sample autocovariances, and predicts
//! `x̂_{t+1} = μ + Σ a_i (x_{t+1−i} − μ)`.

use crate::methods::Forecaster;
use nws_timeseries::SlidingWindow;

/// Solves the Yule–Walker equations for AR coefficients using the
/// Levinson–Durbin recursion.
///
/// `autocov[k]` must hold the autocovariance at lag `k` for
/// `k = 0..=order`. Returns the `order` AR coefficients, or `None` when
/// the system is degenerate (zero variance or a non-positive-definite
/// covariance sequence, e.g. from numerically inconsistent inputs).
pub fn levinson_durbin(autocov: &[f64], order: usize) -> Option<Vec<f64>> {
    let mut a = vec![0.0f64; order];
    let mut prev = vec![0.0f64; order];
    levinson_durbin_into(autocov, order, &mut a, &mut prev).then_some(a)
}

/// The recursion itself, writing into caller-provided buffers so periodic
/// refits allocate nothing. `a` and `prev` must both hold exactly `order`
/// elements; `a` receives the coefficients on success and is unspecified on
/// failure. Returns whether the fit succeeded.
pub(crate) fn levinson_durbin_into(
    autocov: &[f64],
    order: usize,
    a: &mut [f64],
    prev: &mut [f64],
) -> bool {
    if autocov.len() < order + 1 || autocov[0] <= 0.0 {
        return false;
    }
    a.fill(0.0); // current coefficients a_1..a_p
    let mut e = autocov[0]; // prediction error variance
    for k in 0..order {
        let mut acc = autocov[k + 1];
        for j in 0..k {
            acc -= a[j] * autocov[k - j];
        }
        if e <= 0.0 {
            return false;
        }
        let reflection = acc / e;
        if !reflection.is_finite() || reflection.abs() > 1.0 + 1e-9 {
            // Non-stationary fit; bail out rather than predict explosively.
            return false;
        }
        // Update coefficients (Levinson step).
        prev.copy_from_slice(a);
        a[k] = reflection;
        for j in 0..k {
            a[j] = prev[j] - reflection * prev[k - 1 - j];
        }
        e *= 1.0 - reflection * reflection;
    }
    true
}

/// A sliding-window AR(p) one-step predictor.
#[derive(Debug, Clone)]
pub struct ArPredictor {
    order: usize,
    window: SlidingWindow,
    refit_every: usize,
    since_refit: usize,
    /// Fitted AR coefficients (empty until the first successful fit).
    coefficients: Vec<f64>,
    /// Window mean at fit time.
    mean: f64,
    /// Refit scratch, preallocated so periodic fits are allocation-free:
    /// autocovariances up to lag `order`, and the two Levinson buffers.
    autocov: Vec<f64>,
    lev_a: Vec<f64>,
    lev_prev: Vec<f64>,
}

impl ArPredictor {
    /// Creates an AR(`order`) predictor over a window of `window_len`
    /// measurements, refitting every `refit_every` observations.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < order`, `window_len >= 4 * order`, and
    /// `refit_every > 0`.
    pub fn new(order: usize, window_len: usize, refit_every: usize) -> Self {
        assert!(order > 0, "order must be positive");
        assert!(
            window_len >= 4 * order,
            "window must be at least 4x the order for a stable fit"
        );
        assert!(refit_every > 0, "refit cadence must be positive");
        Self {
            order,
            window: SlidingWindow::new(window_len),
            refit_every,
            since_refit: 0,
            coefficients: Vec::with_capacity(order),
            mean: 0.0,
            autocov: vec![0.0; order + 1],
            lev_a: vec![0.0; order],
            lev_prev: vec![0.0; order],
        }
    }

    /// The fitted AR coefficients (empty before the first fit).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    fn refit(&mut self) {
        let n = self.window.len();
        if n < 4 * self.order {
            return;
        }
        let mean = self.window.iter().sum::<f64>() / n as f64;
        // Biased autocovariances up to lag `order`, straight off the ring
        // buffer — no window copy.
        for k in 0..=self.order {
            let mut acc = 0.0;
            for t in 0..n - k {
                let xt = self.window.get(t).expect("t in range");
                let xtk = self.window.get(t + k).expect("t + k in range");
                acc += (xt - mean) * (xtk - mean);
            }
            self.autocov[k] = acc / n as f64;
        }
        if levinson_durbin_into(
            &self.autocov,
            self.order,
            &mut self.lev_a,
            &mut self.lev_prev,
        ) {
            self.coefficients.clear();
            self.coefficients.extend_from_slice(&self.lev_a);
            self.mean = mean;
        }
        // On a degenerate fit the previous model (or none) is kept.
    }
}

impl Forecaster for ArPredictor {
    fn name(&self) -> String {
        format!("ar({})", self.order)
    }

    fn observe(&mut self, value: f64) {
        self.window.push(value);
        self.since_refit += 1;
        if self.since_refit >= self.refit_every && self.window.len() >= 4 * self.order {
            self.since_refit = 0;
            self.refit();
        }
    }

    fn predict(&self) -> Option<f64> {
        if self.coefficients.is_empty() {
            // Fall back to the window mean until a model exists.
            return self.window.mean();
        }
        let n = self.window.len();
        if n < self.order {
            return self.window.mean();
        }
        let mut pred = self.mean;
        for (i, &a) in self.coefficients.iter().enumerate() {
            let lag = self.window.get(n - 1 - i).expect("lag in range");
            pred += a * (lag - self.mean);
        }
        Some(pred)
    }

    fn reset(&mut self) {
        self.window.clear();
        self.coefficients.clear();
        self.since_refit = 0;
        self.mean = 0.0;
    }

    fn note_gap(&mut self) {
        // Autocovariance fits assume contiguous samples: drop the window
        // so no lag ever spans the gap. The fitted model is kept — it
        // resumes predicting once `order` fresh values accumulate.
        self.window.clear();
        self.since_refit = 0;
    }

    fn predict_horizon(&self, k: usize) -> Option<Vec<f64>> {
        if self.coefficients.is_empty() || self.window.len() < self.order {
            // No model (or not enough fresh lags): flat extension of the
            // fallback mean, matching `predict`.
            let v = self.predict()?;
            return Some(vec![v; k]);
        }
        // Iterated forecasting: most-recent-first lag buffer seeded from
        // the window; each step's prediction becomes the next step's lag.
        let n = self.window.len();
        let mut lags: Vec<f64> = (0..self.order)
            .map(|i| self.window.get(n - 1 - i).expect("lag in range"))
            .collect();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let mut pred = self.mean;
            for (i, &a) in self.coefficients.iter().enumerate() {
                pred += a * (lags[i] - self.mean);
            }
            out.push(pred);
            lags.rotate_right(1);
            lags[0] = pred;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_stats::Rng;

    #[test]
    fn levinson_durbin_solves_known_ar1() {
        // AR(1) with coefficient phi: autocov(k) = phi^k * var.
        let phi: f64 = 0.6;
        let var = 2.0;
        let autocov: Vec<f64> = (0..=3).map(|k| var * phi.powi(k)).collect();
        let a = levinson_durbin(&autocov, 1).expect("solvable");
        assert!((a[0] - phi).abs() < 1e-12);
        // Higher-order fit of an AR(1): extra coefficients near zero.
        let a3 = levinson_durbin(&autocov, 3).expect("solvable");
        assert!((a3[0] - phi).abs() < 1e-9);
        assert!(a3[1].abs() < 1e-9 && a3[2].abs() < 1e-9);
    }

    #[test]
    fn levinson_durbin_rejects_degenerate_input() {
        assert!(levinson_durbin(&[0.0, 0.0], 1).is_none()); // zero variance
        assert!(levinson_durbin(&[1.0], 1).is_none()); // too few lags
                                                       // |reflection| > 1 (inconsistent autocovariance): refuse.
        assert!(levinson_durbin(&[1.0, 1.5], 1).is_none());
    }

    #[test]
    fn ar_predictor_learns_ar2_process() {
        // x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + noise, mean-zero.
        let mut rng = Rng::new(7);
        let mut x1 = 0.0f64;
        let mut x2 = 0.0f64;
        let mut f = ArPredictor::new(2, 200, 25);
        let mut abs_err = 0.0;
        let mut n = 0;
        for i in 0..4000 {
            let noise = 0.1 * rng.next_standard_normal();
            let x = 0.5 * x1 + 0.3 * x2 + noise;
            if i > 1000 {
                if let Some(p) = f.predict() {
                    abs_err += (p - x).abs();
                    n += 1;
                }
            }
            f.observe(x);
            x2 = x1;
            x1 = x;
        }
        let mae = abs_err / n as f64;
        // The optimal predictor's MAE is E|noise| = 0.1 * sqrt(2/pi) ~ 0.08.
        assert!(mae < 0.1, "AR(2) MAE = {mae}");
        let c = f.coefficients();
        assert!((c[0] - 0.5).abs() < 0.15, "a1 = {}", c[0]);
        assert!((c[1] - 0.3).abs() < 0.15, "a2 = {}", c[1]);
    }

    #[test]
    fn ar_predictor_handles_constant_series() {
        let mut f = ArPredictor::new(3, 50, 10);
        for _ in 0..100 {
            f.observe(0.42);
        }
        // Degenerate (zero-variance) fits are refused; the fallback mean
        // prediction is exact.
        let p = f.predict().expect("window non-empty");
        assert!((p - 0.42).abs() < 1e-9);
    }

    #[test]
    fn ar_predictor_beats_last_value_on_ar1() {
        let mut rng = Rng::new(9);
        let mut x = 0.0f64;
        let mut ar = ArPredictor::new(1, 100, 20);
        let mut last: Option<f64> = None;
        let (mut ar_err, mut last_err) = (0.0, 0.0);
        let mut n = 0;
        for i in 0..3000 {
            let next = 0.4 * x + 0.2 * rng.next_standard_normal();
            if i > 500 {
                if let Some(p) = ar.predict() {
                    ar_err += (p - next).abs();
                }
                if let Some(l) = last {
                    last_err += (l - next).abs();
                }
                n += 1;
            }
            ar.observe(next);
            last = Some(next);
            x = next;
        }
        assert!(n > 0);
        assert!(
            ar_err < last_err * 0.95,
            "AR {ar_err} should beat last-value {last_err} on mean-reverting data"
        );
    }

    #[test]
    fn reset_clears_model() {
        let mut f = ArPredictor::new(2, 40, 5);
        for i in 0..60 {
            f.observe((i as f64 * 0.3).sin());
        }
        assert!(!f.coefficients().is_empty());
        f.reset();
        assert!(f.coefficients().is_empty());
        assert_eq!(f.predict(), None);
    }

    #[test]
    #[should_panic(expected = "window must be at least")]
    fn undersized_window_panics() {
        ArPredictor::new(10, 20, 5);
    }
}
