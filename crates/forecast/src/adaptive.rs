//! Adaptive predictors: self-tuning members of the NWS panel.

use crate::methods::Forecaster;
use nws_timeseries::SlidingWindow;

/// A sliding-window mean whose window length adapts to the series.
///
/// Every `review_every` observations the predictor compares the recent
/// one-step error that a half-length and a double-length window *would*
/// have incurred (both are maintained as shadow windows) against the
/// current window's error, and moves to whichever was best. This is the
/// "adjusted" window scheme from the NWS forecaster family: long windows
/// win on slowly varying series, short ones after regime changes.
#[derive(Debug)]
pub struct AdaptiveWindowMean {
    min_len: usize,
    max_len: usize,
    len: usize,
    /// One shared buffer sized to `max_len`; each candidate length reads a
    /// suffix of it.
    window: SlidingWindow,
    err_current: f64,
    err_half: f64,
    err_double: f64,
    since_review: usize,
    review_every: usize,
    count: u64,
}

impl AdaptiveWindowMean {
    /// Creates an adaptive window constrained to `[min_len, max_len]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_len <= max_len`.
    pub fn new(min_len: usize, max_len: usize) -> Self {
        assert!(min_len > 0 && min_len <= max_len, "bad window bounds");
        Self {
            min_len,
            max_len,
            len: min_len.max((min_len + max_len) / 4),
            window: SlidingWindow::new(max_len),
            err_current: 0.0,
            err_half: 0.0,
            err_double: 0.0,
            since_review: 0,
            review_every: 8,
            count: 0,
        }
    }

    /// The window length currently in use.
    pub fn current_len(&self) -> usize {
        self.len
    }

    fn suffix_mean(&self, len: usize) -> Option<f64> {
        let have = self.window.len();
        if have == 0 {
            return None;
        }
        let take = len.min(have);
        let skip = have - take;
        let sum: f64 = self.window.iter().skip(skip).sum();
        Some(sum / take as f64)
    }
}

impl Forecaster for AdaptiveWindowMean {
    fn name(&self) -> String {
        format!("adj_mean({}-{})", self.min_len, self.max_len)
    }

    fn observe(&mut self, value: f64) {
        // Score the three candidate lengths on this observation before
        // absorbing it (exponentially faded absolute error).
        const FADE: f64 = 0.9;
        let half = (self.len / 2).max(self.min_len);
        let double = (self.len * 2).min(self.max_len);
        if let Some(p) = self.suffix_mean(self.len) {
            self.err_current = FADE * self.err_current + (p - value).abs();
        }
        if let Some(p) = self.suffix_mean(half) {
            self.err_half = FADE * self.err_half + (p - value).abs();
        }
        if let Some(p) = self.suffix_mean(double) {
            self.err_double = FADE * self.err_double + (p - value).abs();
        }
        self.window.push(value);
        self.count += 1;
        self.since_review += 1;
        if self.since_review >= self.review_every {
            self.since_review = 0;
            if self.err_half < self.err_current && self.err_half <= self.err_double {
                self.len = half;
            } else if self.err_double < self.err_current {
                self.len = double;
            }
            self.err_current = 0.0;
            self.err_half = 0.0;
            self.err_double = 0.0;
        }
    }

    fn predict(&self) -> Option<f64> {
        self.suffix_mean(self.len)
    }

    fn reset(&mut self) {
        let (min_len, max_len) = (self.min_len, self.max_len);
        *self = AdaptiveWindowMean::new(min_len, max_len);
    }
}

/// Exponential smoothing with a Trigg–Leach adaptive gain.
///
/// The gain is `|smoothed error| / smoothed |error|`: when forecast errors
/// keep the same sign (the series has shifted level) the ratio approaches 1
/// and the smoother chases; when errors alternate (noise around a stable
/// level) the ratio falls and the smoother steadies.
#[derive(Debug, Clone)]
pub struct AdaptiveExpSmoothing {
    phi: f64,
    state: Option<f64>,
    smoothed_err: f64,
    smoothed_abs_err: f64,
}

impl AdaptiveExpSmoothing {
    /// Creates the smoother; `phi ∈ (0, 1)` controls how fast the gain
    /// itself adapts (classically 0.2).
    pub fn new(phi: f64) -> Self {
        assert!(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
        Self {
            phi,
            state: None,
            smoothed_err: 0.0,
            smoothed_abs_err: 0.0,
        }
    }

    /// The current adaptive gain in `[0, 1]`.
    pub fn gain(&self) -> f64 {
        if self.smoothed_abs_err <= f64::EPSILON {
            0.5 // no signal yet: a neutral gain
        } else {
            (self.smoothed_err.abs() / self.smoothed_abs_err).clamp(0.0, 1.0)
        }
    }
}

impl Forecaster for AdaptiveExpSmoothing {
    fn name(&self) -> String {
        format!("adapt_exp({})", self.phi)
    }

    fn observe(&mut self, value: f64) {
        match self.state {
            None => self.state = Some(value),
            Some(s) => {
                let err = value - s;
                self.smoothed_err = self.phi * err + (1.0 - self.phi) * self.smoothed_err;
                self.smoothed_abs_err =
                    self.phi * err.abs() + (1.0 - self.phi) * self.smoothed_abs_err;
                let g = self.gain();
                self.state = Some(s + g * err);
            }
        }
    }

    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn reset(&mut self) {
        self.state = None;
        self.smoothed_err = 0.0;
        self.smoothed_abs_err = 0.0;
    }
}

/// A stochastic-gradient AR(1) predictor: `x̂_{t+1} = w·x_t + b`, with
/// `(w, b)` descended on the squared one-step error.
///
/// This is the "stochastic gradient" member of the NWS panel — the only
/// one that can exploit lag-1 *structure* (e.g. mean reversion) instead of
/// just local level.
#[derive(Debug, Clone)]
pub struct StochasticGradient {
    eta: f64,
    w: f64,
    b: f64,
    last: Option<f64>,
}

impl StochasticGradient {
    /// Creates the predictor with learning rate `eta` (classically small,
    /// e.g. 0.01–0.1 for series in `[0, 1]`).
    pub fn new(eta: f64) -> Self {
        assert!(eta > 0.0 && eta < 1.0, "eta must be in (0, 1)");
        Self {
            eta,
            w: 1.0, // start as the last-value predictor
            b: 0.0,
            last: None,
        }
    }

    /// Current AR(1) coefficients `(w, b)`.
    pub fn coefficients(&self) -> (f64, f64) {
        (self.w, self.b)
    }
}

impl Forecaster for StochasticGradient {
    fn name(&self) -> String {
        format!("sgd_ar1({})", self.eta)
    }

    fn observe(&mut self, value: f64) {
        if let Some(prev) = self.last {
            let pred = self.w * prev + self.b;
            let err = pred - value;
            // Gradient of (pred - value)^2 wrt w and b.
            self.w -= self.eta * err * prev;
            self.b -= self.eta * err;
            // Keep the model sane on wild inputs.
            self.w = self.w.clamp(-2.0, 2.0);
            self.b = self.b.clamp(-2.0, 2.0);
        }
        self.last = Some(value);
    }

    fn predict(&self) -> Option<f64> {
        self.last.map(|x| self.w * x + self.b)
    }

    fn reset(&mut self) {
        self.w = 1.0;
        self.b = 0.0;
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_window_shrinks_on_level_shift() {
        let mut f = AdaptiveWindowMean::new(2, 64);
        // Long stable stretch: window should grow.
        for _ in 0..200 {
            f.observe(0.8);
        }
        let grown = f.current_len();
        assert!(grown > 8, "window stayed at {grown}");
        // Step change with noise alternation: shorter window wins.
        for i in 0..200 {
            f.observe(if i % 2 == 0 { 0.1 } else { 0.3 });
        }
        let p = f.predict().unwrap();
        assert!((p - 0.2).abs() < 0.15, "prediction {p} stuck on old level");
    }

    #[test]
    fn adaptive_window_stays_in_bounds() {
        let mut f = AdaptiveWindowMean::new(4, 16);
        for i in 0..500 {
            f.observe((i as f64).sin());
            let l = f.current_len();
            assert!((4..=16).contains(&l), "len = {l}");
        }
    }

    #[test]
    fn adaptive_exp_gain_rises_on_level_shift() {
        let mut f = AdaptiveExpSmoothing::new(0.2);
        for _ in 0..50 {
            f.observe(0.5);
        }
        let calm_gain = f.gain();
        for _ in 0..10 {
            f.observe(0.9); // persistent one-sided errors
        }
        let chase_gain = f.gain();
        assert!(
            chase_gain > calm_gain,
            "gain should rise: {calm_gain} -> {chase_gain}"
        );
        // And the state should have moved most of the way to 0.9.
        assert!(f.predict().unwrap() > 0.7);
    }

    #[test]
    fn adaptive_exp_gain_falls_on_alternating_noise() {
        let mut f = AdaptiveExpSmoothing::new(0.2);
        f.observe(0.5);
        for i in 0..200 {
            f.observe(if i % 2 == 0 { 0.4 } else { 0.6 });
        }
        assert!(f.gain() < 0.35, "gain = {}", f.gain());
        assert!((f.predict().unwrap() - 0.5).abs() < 0.12);
    }

    #[test]
    fn sgd_learns_mean_reversion() {
        // x_{t+1} = 0.5·x_t + 0.25 + noise: the innovations keep the input
        // persistently exciting, and SGD converges to the AR coefficients
        // in expectation.
        let mut f = StochasticGradient::new(0.05);
        let mut rng = nws_stats::Rng::new(91);
        let mut x: f64 = 0.9;
        for _ in 0..20_000 {
            f.observe(x);
            x = 0.5 * x + 0.25 + 0.2 * (rng.next_f64() - 0.5);
        }
        let (w, b) = f.coefficients();
        assert!((w - 0.5).abs() < 0.15, "w = {w}");
        assert!((b - 0.25).abs() < 0.1, "b = {b}");
    }

    #[test]
    fn sgd_starts_as_last_value() {
        let mut f = StochasticGradient::new(0.05);
        f.observe(0.7);
        assert_eq!(f.predict(), Some(0.7));
    }

    #[test]
    fn all_reset_cleanly() {
        let mut a = AdaptiveWindowMean::new(2, 8);
        let mut e = AdaptiveExpSmoothing::new(0.2);
        let mut s = StochasticGradient::new(0.05);
        for v in [0.1, 0.9, 0.4] {
            a.observe(v);
            e.observe(v);
            s.observe(v);
        }
        a.reset();
        e.reset();
        s.reset();
        assert_eq!(a.predict(), None);
        assert_eq!(e.predict(), None);
        assert_eq!(s.predict(), None);
    }

    #[test]
    #[should_panic(expected = "window bounds")]
    fn bad_bounds_panic() {
        AdaptiveWindowMean::new(0, 4);
    }
}
