//! Adaptive predictors: self-tuning members of the NWS panel.

use crate::methods::Forecaster;
use nws_timeseries::SlidingWindow;

/// A sliding-window mean whose window length adapts to the series.
///
/// Every `review_every` observations the predictor compares the recent
/// one-step error that a half-length and a double-length window *would*
/// have incurred (both are maintained as shadow windows) against the
/// current window's error, and moves to whichever was best. This is the
/// "adjusted" window scheme from the NWS forecaster family: long windows
/// win on slowly varying series, short ones after regime changes.
///
/// The three candidate suffix sums are maintained as rolling sums (add the
/// incoming value, subtract the value sliding out of that suffix), so an
/// observation costs O(1) instead of three O(window) rescans. The sums are
/// recomputed exactly whenever the window length changes and periodically
/// in between to bound floating-point drift.
#[derive(Debug)]
pub struct AdaptiveWindowMean {
    min_len: usize,
    max_len: usize,
    len: usize,
    /// One shared buffer sized to `max_len`; each candidate length reads a
    /// suffix of it.
    window: SlidingWindow,
    /// Rolling suffix sums for the half/current/double candidate lengths.
    sum_half: f64,
    sum_current: f64,
    sum_double: f64,
    err_current: f64,
    err_half: f64,
    err_double: f64,
    since_review: usize,
    review_every: usize,
    pushes_since_refresh: usize,
    count: u64,
}

/// How many observations between exact recomputations of the rolling
/// candidate sums.
const SUM_REFRESH_INTERVAL: usize = 4096;

impl AdaptiveWindowMean {
    /// Creates an adaptive window constrained to `[min_len, max_len]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_len <= max_len`.
    pub fn new(min_len: usize, max_len: usize) -> Self {
        assert!(min_len > 0 && min_len <= max_len, "bad window bounds");
        Self {
            min_len,
            max_len,
            len: min_len.max((min_len + max_len) / 4),
            window: SlidingWindow::new(max_len),
            sum_half: 0.0,
            sum_current: 0.0,
            sum_double: 0.0,
            err_current: 0.0,
            err_half: 0.0,
            err_double: 0.0,
            since_review: 0,
            review_every: 8,
            pushes_since_refresh: 0,
            count: 0,
        }
    }

    /// The window length currently in use.
    pub fn current_len(&self) -> usize {
        self.len
    }

    /// The half-length candidate for the current window length.
    fn half_len(&self) -> usize {
        (self.len / 2).max(self.min_len)
    }

    /// The double-length candidate for the current window length.
    fn double_len(&self) -> usize {
        (self.len * 2).min(self.max_len)
    }

    /// Exact sum of the last `min(len, have)` window values, by rescan.
    fn exact_suffix_sum(&self, len: usize) -> f64 {
        let have = self.window.len();
        let skip = have - len.min(have);
        self.window.iter().skip(skip).sum()
    }

    /// Recomputes all three candidate sums exactly from the buffer.
    fn refresh_sums(&mut self) {
        self.sum_half = self.exact_suffix_sum(self.half_len());
        self.sum_current = self.exact_suffix_sum(self.len);
        self.sum_double = self.exact_suffix_sum(self.double_len());
        self.pushes_since_refresh = 0;
    }

    fn suffix_mean(&self, len: usize, sum: f64) -> Option<f64> {
        let have = self.window.len();
        if have == 0 {
            return None;
        }
        Some(sum / len.min(have) as f64)
    }
}

impl Forecaster for AdaptiveWindowMean {
    fn name(&self) -> String {
        format!("adj_mean({}-{})", self.min_len, self.max_len)
    }

    fn observe(&mut self, value: f64) {
        // Score the three candidate lengths on this observation before
        // absorbing it (exponentially faded absolute error).
        const FADE: f64 = 0.9;
        let half = self.half_len();
        let double = self.double_len();
        if let Some(p) = self.suffix_mean(self.len, self.sum_current) {
            self.err_current = FADE * self.err_current + (p - value).abs();
        }
        if let Some(p) = self.suffix_mean(half, self.sum_half) {
            self.err_half = FADE * self.err_half + (p - value).abs();
        }
        if let Some(p) = self.suffix_mean(double, self.sum_double) {
            self.err_double = FADE * self.err_double + (p - value).abs();
        }
        // Roll each candidate sum forward: the new value enters every
        // suffix; a suffix already at its target length sheds its oldest
        // member (indexed before the push shifts positions).
        let have = self.window.len();
        for (target_len, sum) in [
            (half, &mut self.sum_half),
            (self.len, &mut self.sum_current),
            (double, &mut self.sum_double),
        ] {
            *sum += value;
            if have >= target_len {
                *sum -= self
                    .window
                    .get(have - target_len)
                    .expect("suffix start is in range");
            }
        }
        self.window.push(value);
        self.pushes_since_refresh += 1;
        self.count += 1;
        self.since_review += 1;
        if self.since_review >= self.review_every {
            self.since_review = 0;
            let old_len = self.len;
            if self.err_half < self.err_current && self.err_half <= self.err_double {
                self.len = half;
            } else if self.err_double < self.err_current {
                self.len = double;
            }
            self.err_current = 0.0;
            self.err_half = 0.0;
            self.err_double = 0.0;
            if self.len != old_len {
                // The candidate lengths changed; rebase the sums exactly.
                self.refresh_sums();
            }
        }
        if self.pushes_since_refresh >= SUM_REFRESH_INTERVAL {
            self.refresh_sums();
        }
    }

    fn predict(&self) -> Option<f64> {
        self.suffix_mean(self.len, self.sum_current)
    }

    fn reset(&mut self) {
        let (min_len, max_len) = (self.min_len, self.max_len);
        *self = AdaptiveWindowMean::new(min_len, max_len);
    }

    fn note_gap(&mut self) {
        // Age out the pre-gap history but keep the learned window length:
        // the series' timescale is a property of the workload mix, which
        // usually survives an outage even though the level may not.
        self.window.clear();
        self.sum_half = 0.0;
        self.sum_current = 0.0;
        self.sum_double = 0.0;
        self.err_current = 0.0;
        self.err_half = 0.0;
        self.err_double = 0.0;
        self.since_review = 0;
        self.pushes_since_refresh = 0;
    }
}

/// Exponential smoothing with a Trigg–Leach adaptive gain.
///
/// The gain is `|smoothed error| / smoothed |error|`: when forecast errors
/// keep the same sign (the series has shifted level) the ratio approaches 1
/// and the smoother chases; when errors alternate (noise around a stable
/// level) the ratio falls and the smoother steadies.
#[derive(Debug, Clone)]
pub struct AdaptiveExpSmoothing {
    phi: f64,
    state: Option<f64>,
    smoothed_err: f64,
    smoothed_abs_err: f64,
}

impl AdaptiveExpSmoothing {
    /// Creates the smoother; `phi ∈ (0, 1)` controls how fast the gain
    /// itself adapts (classically 0.2).
    pub fn new(phi: f64) -> Self {
        assert!(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
        Self {
            phi,
            state: None,
            smoothed_err: 0.0,
            smoothed_abs_err: 0.0,
        }
    }

    /// The current adaptive gain in `[0, 1]`.
    pub fn gain(&self) -> f64 {
        if self.smoothed_abs_err <= f64::EPSILON {
            0.5 // no signal yet: a neutral gain
        } else {
            (self.smoothed_err.abs() / self.smoothed_abs_err).clamp(0.0, 1.0)
        }
    }
}

impl Forecaster for AdaptiveExpSmoothing {
    fn name(&self) -> String {
        format!("adapt_exp({})", self.phi)
    }

    fn observe(&mut self, value: f64) {
        match self.state {
            None => self.state = Some(value),
            Some(s) => {
                let err = value - s;
                self.smoothed_err = self.phi * err + (1.0 - self.phi) * self.smoothed_err;
                self.smoothed_abs_err =
                    self.phi * err.abs() + (1.0 - self.phi) * self.smoothed_abs_err;
                let g = self.gain();
                self.state = Some(s + g * err);
            }
        }
    }

    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn reset(&mut self) {
        self.state = None;
        self.smoothed_err = 0.0;
        self.smoothed_abs_err = 0.0;
    }
}

/// A stochastic-gradient AR(1) predictor: `x̂_{t+1} = w·x_t + b`, with
/// `(w, b)` descended on the squared one-step error.
///
/// This is the "stochastic gradient" member of the NWS panel — the only
/// one that can exploit lag-1 *structure* (e.g. mean reversion) instead of
/// just local level.
#[derive(Debug, Clone)]
pub struct StochasticGradient {
    eta: f64,
    w: f64,
    b: f64,
    last: Option<f64>,
}

impl StochasticGradient {
    /// Creates the predictor with learning rate `eta` (classically small,
    /// e.g. 0.01–0.1 for series in `[0, 1]`).
    pub fn new(eta: f64) -> Self {
        assert!(eta > 0.0 && eta < 1.0, "eta must be in (0, 1)");
        Self {
            eta,
            w: 1.0, // start as the last-value predictor
            b: 0.0,
            last: None,
        }
    }

    /// Current AR(1) coefficients `(w, b)`.
    pub fn coefficients(&self) -> (f64, f64) {
        (self.w, self.b)
    }
}

impl Forecaster for StochasticGradient {
    fn name(&self) -> String {
        format!("sgd_ar1({})", self.eta)
    }

    fn observe(&mut self, value: f64) {
        if let Some(prev) = self.last {
            let pred = self.w * prev + self.b;
            let err = pred - value;
            // Gradient of (pred - value)^2 wrt w and b.
            self.w -= self.eta * err * prev;
            self.b -= self.eta * err;
            // Keep the model sane on wild inputs.
            self.w = self.w.clamp(-2.0, 2.0);
            self.b = self.b.clamp(-2.0, 2.0);
        }
        self.last = Some(value);
    }

    fn predict(&self) -> Option<f64> {
        self.last.map(|x| self.w * x + self.b)
    }

    fn reset(&mut self) {
        self.w = 1.0;
        self.b = 0.0;
        self.last = None;
    }

    fn note_gap(&mut self) {
        // The lag-1 link across the gap is meaningless; keep the learned
        // AR(1) coefficients but wait for a fresh anchor value.
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_window_shrinks_on_level_shift() {
        let mut f = AdaptiveWindowMean::new(2, 64);
        // Long stable stretch: window should grow.
        for _ in 0..200 {
            f.observe(0.8);
        }
        let grown = f.current_len();
        assert!(grown > 8, "window stayed at {grown}");
        // Step change with noise alternation: shorter window wins.
        for i in 0..200 {
            f.observe(if i % 2 == 0 { 0.1 } else { 0.3 });
        }
        let p = f.predict().unwrap();
        assert!((p - 0.2).abs() < 0.15, "prediction {p} stuck on old level");
    }

    #[test]
    fn adaptive_window_stays_in_bounds() {
        let mut f = AdaptiveWindowMean::new(4, 16);
        for i in 0..500 {
            f.observe((i as f64).sin());
            let l = f.current_len();
            assert!((4..=16).contains(&l), "len = {l}");
        }
    }

    #[test]
    fn adaptive_exp_gain_rises_on_level_shift() {
        let mut f = AdaptiveExpSmoothing::new(0.2);
        for _ in 0..50 {
            f.observe(0.5);
        }
        let calm_gain = f.gain();
        for _ in 0..10 {
            f.observe(0.9); // persistent one-sided errors
        }
        let chase_gain = f.gain();
        assert!(
            chase_gain > calm_gain,
            "gain should rise: {calm_gain} -> {chase_gain}"
        );
        // And the state should have moved most of the way to 0.9.
        assert!(f.predict().unwrap() > 0.7);
    }

    #[test]
    fn adaptive_exp_gain_falls_on_alternating_noise() {
        let mut f = AdaptiveExpSmoothing::new(0.2);
        f.observe(0.5);
        for i in 0..200 {
            f.observe(if i % 2 == 0 { 0.4 } else { 0.6 });
        }
        assert!(f.gain() < 0.35, "gain = {}", f.gain());
        assert!((f.predict().unwrap() - 0.5).abs() < 0.12);
    }

    #[test]
    fn sgd_learns_mean_reversion() {
        // x_{t+1} = 0.5·x_t + 0.25 + noise: the innovations keep the input
        // persistently exciting, and SGD converges to the AR coefficients
        // in expectation.
        let mut f = StochasticGradient::new(0.05);
        let mut rng = nws_stats::Rng::new(91);
        let mut x: f64 = 0.9;
        for _ in 0..20_000 {
            f.observe(x);
            x = 0.5 * x + 0.25 + 0.2 * (rng.next_f64() - 0.5);
        }
        let (w, b) = f.coefficients();
        assert!((w - 0.5).abs() < 0.15, "w = {w}");
        assert!((b - 0.25).abs() < 0.1, "b = {b}");
    }

    #[test]
    fn sgd_starts_as_last_value() {
        let mut f = StochasticGradient::new(0.05);
        f.observe(0.7);
        assert_eq!(f.predict(), Some(0.7));
    }

    #[test]
    fn all_reset_cleanly() {
        let mut a = AdaptiveWindowMean::new(2, 8);
        let mut e = AdaptiveExpSmoothing::new(0.2);
        let mut s = StochasticGradient::new(0.05);
        for v in [0.1, 0.9, 0.4] {
            a.observe(v);
            e.observe(v);
            s.observe(v);
        }
        a.reset();
        e.reset();
        s.reset();
        assert_eq!(a.predict(), None);
        assert_eq!(e.predict(), None);
        assert_eq!(s.predict(), None);
    }

    #[test]
    #[should_panic(expected = "window bounds")]
    fn bad_bounds_panic() {
        AdaptiveWindowMean::new(0, 4);
    }
}
