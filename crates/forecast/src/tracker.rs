//! Per-predictor forecasting-error bookkeeping.
//!
//! The NWS "dynamically chooses the \[method\] that has been most accurate
//! over the recent set of measurements" — so each panel member carries a
//! tracker recording its one-step errors both cumulatively and over a
//! recent window.

use nws_timeseries::SlidingWindow;

/// Accumulates one-step forecasting errors for a single predictor.
#[derive(Debug, Clone)]
pub struct ErrorTracker {
    abs_sum: f64,
    sq_sum: f64,
    count: u64,
    recent_abs: SlidingWindow,
}

impl ErrorTracker {
    /// Creates a tracker whose "recent" horizon is `recent_window`
    /// forecasts.
    ///
    /// # Panics
    ///
    /// Panics if `recent_window == 0`.
    pub fn new(recent_window: usize) -> Self {
        Self {
            abs_sum: 0.0,
            sq_sum: 0.0,
            count: 0,
            recent_abs: SlidingWindow::new(recent_window),
        }
    }

    /// Records one scored forecast against the measurement that arrived.
    pub fn record(&mut self, forecast: f64, actual: f64) {
        let err = forecast - actual;
        self.abs_sum += err.abs();
        self.sq_sum += err * err;
        self.count += 1;
        self.recent_abs.push(err.abs());
    }

    /// Number of forecasts scored.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Cumulative mean absolute error.
    pub fn mae(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.abs_sum / self.count as f64)
        }
    }

    /// Cumulative mean squared error.
    pub fn mse(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sq_sum / self.count as f64)
        }
    }

    /// Mean absolute error over the recent window only.
    pub fn recent_mae(&self) -> Option<f64> {
        self.recent_abs.mean()
    }

    /// The raw sums behind the means: `(abs_sum, sq_sum, count)`.
    ///
    /// Error tables built from many trackers (one per fleet host) merge
    /// these sums exactly, where merging the already-divided means would
    /// not.
    pub fn totals(&self) -> (f64, f64, u64) {
        (self.abs_sum, self.sq_sum, self.count)
    }

    /// Clears all recorded errors.
    pub fn reset(&mut self) {
        self.abs_sum = 0.0;
        self.sq_sum = 0.0;
        self.count = 0;
        self.recent_abs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_none() {
        let t = ErrorTracker::new(4);
        assert_eq!(t.mae(), None);
        assert_eq!(t.mse(), None);
        assert_eq!(t.recent_mae(), None);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn mae_and_mse_accumulate() {
        let mut t = ErrorTracker::new(8);
        t.record(0.5, 0.4); // err 0.1
        t.record(0.5, 0.8); // err -0.3
        assert!((t.mae().unwrap() - 0.2).abs() < 1e-12);
        assert!((t.mse().unwrap() - (0.01 + 0.09) / 2.0).abs() < 1e-12);
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn recent_window_forgets_old_errors() {
        let mut t = ErrorTracker::new(2);
        t.record(1.0, 0.0); // err 1.0 — will scroll out
        t.record(0.5, 0.5); // err 0
        t.record(0.5, 0.5); // err 0
        assert_eq!(t.recent_mae(), Some(0.0));
        // Cumulative still remembers.
        assert!((t.mae().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = ErrorTracker::new(4);
        t.record(1.0, 0.0);
        t.reset();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mae(), None);
        assert_eq!(t.recent_mae(), None);
    }
}
