//! Prediction intervals from online error quantiles.
//!
//! The NWS papers report mean errors, but a scheduler acting on a forecast
//! wants to know *how wrong it might be*: "the CPU will be 60 % available,
//! and with 90 % confidence at least 45 %". This module adds that on top of
//! any point forecaster by tracking the empirical quantiles of its one-step
//! errors with the **P² algorithm** (Jain & Chlamtac 1985) — O(1) memory
//! and time per observation, no stored history, matching the NWS's
//! cheap-streaming design constraints.

/// Streaming quantile estimator (the P² algorithm).
///
/// Maintains five markers that track the `q`-quantile of everything
/// observed so far using piecewise-parabolic interpolation. Accuracy is
/// typically within a couple of percent of the exact empirical quantile
/// after a few dozen observations.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the quantile curve).
    heights: [f64; 5],
    /// Actual marker positions (1-based counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    /// Initial observations until the markers are seeded.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `q ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics for `q` outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            warmup: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations consumed.
    pub fn count(&self) -> usize {
        if self.warmup.len() < 5 {
            self.warmup.len()
        } else {
            self.positions[4] as usize
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "quantile inputs must be finite");
        if self.warmup.len() < 5 {
            self.warmup.push(x);
            if self.warmup.len() == 5 {
                self.warmup.sort_by(|a, b| a.total_cmp(b));
                for (h, w) in self.heights.iter_mut().zip(&self.warmup) {
                    *h = *w;
                }
            }
            return;
        }
        // Locate the cell containing x and clamp the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }
        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let h = &self.heights;
        let p = &self.positions;
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate, or `None` before five observations.
    pub fn estimate(&self) -> Option<f64> {
        if self.warmup.len() < 5 {
            // Fall back to the exact small-sample quantile.
            if self.warmup.is_empty() {
                return None;
            }
            let mut v = self.warmup.clone();
            v.sort_by(|a, b| a.total_cmp(b));
            let idx = ((v.len() - 1) as f64 * self.q).round() as usize;
            return Some(v[idx]);
        }
        Some(self.heights[2])
    }
}

/// A symmetric-coverage prediction interval around a point forecast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionInterval {
    /// The point forecast.
    pub forecast: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal two-sided coverage, e.g. 0.9.
    pub coverage: f64,
}

/// Wraps one-step errors of any forecaster into prediction intervals.
///
/// Feed it the pairs `(forecast, actual)` you already produce while
/// forecasting; ask for the interval around the next point forecast. The
/// bounds come from the tracked error quantiles
/// `[q_(α/2), q_(1−α/2)]`, so coverage is calibrated against the
/// *observed* error distribution — no Gaussian assumption, which matters
/// because availability errors are skewed and heavy-tailed.
#[derive(Debug, Clone)]
pub struct IntervalTracker {
    lower: P2Quantile,
    upper: P2Quantile,
    coverage: f64,
    clamp_unit: bool,
}

impl IntervalTracker {
    /// Creates a tracker for the given two-sided coverage (e.g. `0.9`).
    ///
    /// # Panics
    ///
    /// Panics for coverage outside `(0, 1)`.
    pub fn new(coverage: f64) -> Self {
        assert!(coverage > 0.0 && coverage < 1.0, "coverage in (0, 1)");
        let alpha = 1.0 - coverage;
        Self {
            lower: P2Quantile::new(alpha / 2.0),
            upper: P2Quantile::new(1.0 - alpha / 2.0),
            coverage,
            clamp_unit: true,
        }
    }

    /// Disables clamping of the interval to `[0, 1]` (availability series
    /// want it; generic series may not).
    pub fn without_unit_clamp(mut self) -> Self {
        self.clamp_unit = false;
        self
    }

    /// Records one scored forecast.
    pub fn record(&mut self, forecast: f64, actual: f64) {
        let err = actual - forecast;
        self.lower.observe(err);
        self.upper.observe(err);
    }

    /// Number of recorded errors.
    pub fn count(&self) -> usize {
        self.lower.count()
    }

    /// The interval around `forecast`, or `None` before any errors have
    /// been recorded.
    pub fn interval(&self, forecast: f64) -> Option<PredictionInterval> {
        let lo_err = self.lower.estimate()?;
        let hi_err = self.upper.estimate()?;
        let (mut lo, mut hi) = (forecast + lo_err, forecast + hi_err);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        if self.clamp_unit {
            lo = lo.clamp(0.0, 1.0);
            hi = hi.clamp(0.0, 1.0);
        }
        Some(PredictionInterval {
            forecast,
            lo,
            hi,
            coverage: self.coverage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_stats::Rng;

    #[test]
    fn p2_matches_exact_quantile_on_uniform() {
        let mut est = P2Quantile::new(0.9);
        let mut rng = Rng::new(11);
        let mut all = Vec::new();
        for _ in 0..20_000 {
            let x = rng.next_f64();
            est.observe(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.total_cmp(b));
        let exact = all[(all.len() as f64 * 0.9) as usize];
        let approx = est.estimate().expect("warm");
        assert!(
            (approx - exact).abs() < 0.02,
            "p2 {approx} vs exact {exact}"
        );
    }

    #[test]
    fn p2_median_of_normal_is_mean() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = Rng::new(13);
        for _ in 0..20_000 {
            est.observe(3.0 + rng.next_standard_normal());
        }
        let m = est.estimate().expect("warm");
        assert!((m - 3.0).abs() < 0.05, "median = {m}");
    }

    #[test]
    fn p2_small_sample_fallback() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.observe(1.0);
        assert_eq!(est.estimate(), Some(1.0));
        est.observe(3.0);
        est.observe(2.0);
        // Exact small-sample median of {1,2,3}.
        assert_eq!(est.estimate(), Some(2.0));
    }

    #[test]
    fn p2_extremes_track_min_max() {
        let mut lo = P2Quantile::new(0.01);
        let mut hi = P2Quantile::new(0.99);
        let mut rng = Rng::new(17);
        for _ in 0..5_000 {
            let x = rng.next_f64();
            lo.observe(x);
            hi.observe(x);
        }
        assert!(lo.estimate().expect("warm") < 0.06);
        assert!(hi.estimate().expect("warm") > 0.94);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn p2_rejects_degenerate_q() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn interval_achieves_nominal_coverage() {
        // Forecast a noisy constant with the true mean; check the 90%
        // interval covers ~90% of subsequent actuals.
        let mut tracker = IntervalTracker::new(0.9).without_unit_clamp();
        let mut rng = Rng::new(19);
        let forecast = 0.5;
        // Warm the tracker.
        for _ in 0..2_000 {
            let actual = forecast + 0.1 * rng.next_standard_normal();
            tracker.record(forecast, actual);
        }
        let mut covered = 0;
        let n = 5_000;
        for _ in 0..n {
            let actual = forecast + 0.1 * rng.next_standard_normal();
            let iv = tracker.interval(forecast).expect("warm");
            if (iv.lo..=iv.hi).contains(&actual) {
                covered += 1;
            }
            tracker.record(forecast, actual);
        }
        let coverage = covered as f64 / n as f64;
        assert!(
            (coverage - 0.9).abs() < 0.03,
            "empirical coverage = {coverage}"
        );
    }

    #[test]
    fn interval_handles_skewed_errors() {
        // Asymmetric errors: the interval must be asymmetric too.
        let mut tracker = IntervalTracker::new(0.8).without_unit_clamp();
        let mut rng = Rng::new(23);
        for _ in 0..5_000 {
            // Errors in [0, 0.5): actual always >= forecast.
            tracker.record(0.4, 0.4 + 0.5 * rng.next_f64());
        }
        let iv = tracker.interval(0.4).expect("warm");
        assert!(iv.lo >= 0.4 - 0.02, "lo = {}", iv.lo);
        assert!(iv.hi > 0.7, "hi = {}", iv.hi);
    }

    #[test]
    fn unit_clamp_bounds_availability_intervals() {
        let mut tracker = IntervalTracker::new(0.9);
        for _ in 0..100 {
            tracker.record(0.95, 1.0);
            tracker.record(0.95, 0.9);
        }
        let iv = tracker.interval(0.99).expect("warm");
        assert!(iv.hi <= 1.0);
        assert!(iv.lo >= 0.0);
    }

    #[test]
    fn empty_tracker_returns_none() {
        let tracker = IntervalTracker::new(0.9);
        assert!(tracker.interval(0.5).is_none());
        assert_eq!(tracker.count(), 0);
    }
}
