//! The unified predictor panel: a bank of [`Predictor`]s under dynamic
//! best-predictor selection.
//!
//! [`PredictorBank`] is the one forecasting engine every tier consumes:
//! the per-host `ForecastService` path runs the paper's full 1999 panel
//! per series, the fleet tier runs a configurable subset per shard, and
//! the quality benchmarks run the extended panel v2. Which members a
//! bank holds is a [`PanelSpec`] — a `Copy` selector cheap enough to
//! live in fleet configs — and everything else (scoring, selection, gap
//! semantics, horizons, error tables) is shared.

use crate::adaptive::{AdaptiveExpSmoothing, AdaptiveWindowMean, StochasticGradient};
use crate::ar::ArPredictor;
use crate::arma::Arma;
use crate::methods::{
    ExpSmoothing, LastValue, Predictor, RunningMean, SlidingMean, SlidingMedian, TrimmedMean,
};
use crate::tracker::ErrorTracker;
use std::sync::Arc;

/// Which error statistic drives predictor selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Mean absolute error over the recent window (the NWS default:
    /// "most accurate over the recent set of measurements").
    #[default]
    RecentMae,
    /// Cumulative mean absolute error over the whole series.
    CumulativeMae,
    /// Cumulative mean squared error.
    CumulativeMse,
}

/// A named panel composition: which predictors a [`PredictorBank`]
/// holds. `Copy`, so it can ride in fleet configs and sweep tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PanelSpec {
    /// A single exponential smoother — the fleet tier's zero-cost
    /// default, bit-identical to a dense EWMA.
    EwmaOnly {
        /// Smoothing gain in `(0, 1]`.
        gain: f64,
    },
    /// O(1)-state members only (last value, running mean, the smoothing
    /// gain bank): the cheap subset for memory-tight fleets.
    Cheap,
    /// The paper's full 1999 panel — identical to
    /// [`PredictorBank::nws_default`].
    Nws1999,
    /// Panel v2: the 1999 set plus online ARMA(1,1) and ARMA(2,1)
    /// members (Sandholm's computational-demand study).
    Extended,
}

impl PanelSpec {
    /// Builds the panel members, in their canonical order.
    pub fn members(self) -> Vec<Box<dyn Predictor>> {
        match self {
            PanelSpec::EwmaOnly { gain } => vec![Box::new(ExpSmoothing::new(gain))],
            PanelSpec::Cheap => {
                let mut panel: Vec<Box<dyn Predictor>> =
                    vec![Box::new(LastValue::new()), Box::new(RunningMean::new())];
                for s in ExpSmoothing::bank() {
                    panel.push(Box::new(s));
                }
                panel
            }
            PanelSpec::Nws1999 | PanelSpec::Extended => {
                let mut panel: Vec<Box<dyn Predictor>> =
                    vec![Box::new(LastValue::new()), Box::new(RunningMean::new())];
                for k in [5, 10, 20, 50, 100] {
                    panel.push(Box::new(SlidingMean::new(k)));
                }
                for k in [5, 11, 21, 51] {
                    panel.push(Box::new(SlidingMedian::new(k)));
                }
                for k in [11, 31] {
                    panel.push(Box::new(TrimmedMean::new(k, 0.2)));
                }
                for s in ExpSmoothing::bank() {
                    panel.push(Box::new(s));
                }
                panel.push(Box::new(AdaptiveExpSmoothing::new(0.2)));
                panel.push(Box::new(AdaptiveWindowMean::new(3, 100)));
                panel.push(Box::new(StochasticGradient::new(0.05)));
                panel.push(Box::new(ArPredictor::new(3, 120, 25)));
                if matches!(self, PanelSpec::Extended) {
                    panel.push(Box::new(Arma::new(1, 1, 120, 25)));
                    panel.push(Box::new(Arma::new(2, 1, 120, 25)));
                }
                panel
            }
        }
    }

    /// Builds a bank over this spec with the NWS defaults (recent-MAE
    /// selection over a 30-measurement window).
    pub fn build(self) -> PredictorBank {
        PredictorBank::new(self.members(), Selection::default(), 30)
    }
}

/// One issued forecast.
///
/// The method name is a shared, immutable string cached per panel member
/// at construction, so issuing a forecast never formats or allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// The predicted next value.
    pub value: f64,
    /// Panel index of the predictor that issued it.
    pub method_index: usize,
    /// Name of that predictor.
    pub method: Arc<str>,
}

/// One row of a per-predictor error table (paper Tables 2/3 shape).
///
/// Carries the raw sums rather than the means so rows from many banks
/// (one per fleet host) aggregate exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorRow {
    /// Panel member name.
    pub name: Arc<str>,
    /// Forecasts scored.
    pub scored: u64,
    /// Sum of absolute one-step errors.
    pub abs_sum: f64,
    /// Sum of squared one-step errors.
    pub sq_sum: f64,
}

impl ErrorRow {
    /// Mean absolute error (NaN when nothing was scored).
    pub fn mae(&self) -> f64 {
        if self.scored == 0 {
            f64::NAN
        } else {
            self.abs_sum / self.scored as f64
        }
    }

    /// Mean squared error (NaN when nothing was scored).
    pub fn mse(&self) -> f64 {
        if self.scored == 0 {
            f64::NAN
        } else {
            self.sq_sum / self.scored as f64
        }
    }

    /// Folds another bank's row for the same panel member into this one.
    ///
    /// # Panics
    ///
    /// Panics if the rows name different members.
    pub fn merge(&mut self, other: &ErrorRow) {
        assert_eq!(self.name, other.name, "merging rows of different members");
        self.scored += other.scored;
        self.abs_sum += other.abs_sum;
        self.sq_sum += other.sq_sum;
    }
}

/// The forecasting engine: a predictor panel with dynamic selection.
///
/// Feed measurements with [`PredictorBank::update`]; each call scores
/// every panel member against the arriving measurement, updates them,
/// and returns the forecast of the currently best member for the *next*
/// measurement.
///
/// # Examples
///
/// ```
/// use nws_forecast::NwsForecaster;
///
/// let mut nws = NwsForecaster::nws_default();
/// for v in [0.8, 0.78, 0.82, 0.8, 0.79, 0.81] {
///     nws.update(v);
/// }
/// let f = nws.forecast().unwrap();
/// assert!((f.value - 0.8).abs() < 0.05);
/// println!("next 10s: {:.0}% available (chosen: {})", f.value * 100.0, f.method);
/// ```
#[derive(Debug)]
pub struct PredictorBank {
    panel: Vec<Box<dyn Predictor>>,
    trackers: Vec<ErrorTracker>,
    /// Panel member names, cached once so the per-measurement paths never
    /// re-run the `format!`-based [`Predictor::name`].
    names: Vec<Arc<str>>,
    selection: Selection,
    observations: u64,
    selected: usize,
}

impl PredictorBank {
    /// Builds a bank around a custom panel.
    ///
    /// # Panics
    ///
    /// Panics if the panel is empty or `recent_window == 0`.
    pub fn new(panel: Vec<Box<dyn Predictor>>, selection: Selection, recent_window: usize) -> Self {
        assert!(
            !panel.is_empty(),
            "panel must contain at least one predictor"
        );
        let trackers = panel
            .iter()
            .map(|_| ErrorTracker::new(recent_window))
            .collect();
        let names = panel.iter().map(|f| Arc::from(f.name())).collect();
        Self {
            panel,
            trackers,
            names,
            selection,
            observations: 0,
            selected: 0,
        }
    }

    /// Builds a bank from a named composition.
    pub fn from_spec(spec: PanelSpec) -> Self {
        spec.build()
    }

    /// The full NWS panel used throughout the reproduction: last value,
    /// running mean, sliding means/medians over several windows, trimmed
    /// means, an exponential-smoothing gain bank, adaptive-gain smoothing,
    /// an adaptive-length window, and a stochastic-gradient AR(1).
    pub fn nws_default() -> Self {
        PanelSpec::Nws1999.build()
    }

    /// Panel size.
    pub fn panel_len(&self) -> usize {
        self.panel.len()
    }

    /// Names of the panel members, in index order.
    pub fn method_names(&self) -> Vec<String> {
        self.panel.iter().map(|f| f.name()).collect()
    }

    /// Number of measurements consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Index of the currently selected predictor.
    pub fn selected_index(&self) -> usize {
        self.selected
    }

    /// Name of the currently selected predictor.
    pub fn selected_name(&self) -> Arc<str> {
        Arc::clone(&self.names[self.selected])
    }

    /// Per-method `(name, cumulative MAE)` for every method that has been
    /// scored at least once.
    pub fn error_summary(&self) -> Vec<(String, f64)> {
        self.panel
            .iter()
            .zip(&self.trackers)
            .filter_map(|(f, t)| t.mae().map(|m| (f.name(), m)))
            .collect()
    }

    /// The full per-predictor error table, one row per panel member in
    /// index order (unscored members report zero sums). Rows carry raw
    /// sums, so tables from many banks merge exactly via
    /// [`ErrorRow::merge`].
    pub fn error_table(&self) -> Vec<ErrorRow> {
        self.names
            .iter()
            .zip(&self.trackers)
            .map(|(name, t)| {
                let (abs_sum, sq_sum, scored) = t.totals();
                ErrorRow {
                    name: Arc::clone(name),
                    scored,
                    abs_sum,
                    sq_sum,
                }
            })
            .collect()
    }

    fn score_of(&self, i: usize) -> Option<f64> {
        let t = &self.trackers[i];
        match self.selection {
            Selection::RecentMae => t.recent_mae(),
            Selection::CumulativeMae => t.mae(),
            Selection::CumulativeMse => t.mse(),
        }
    }

    fn reselect(&mut self) {
        let mut best = self.selected;
        let mut best_score = f64::INFINITY;
        for i in 0..self.panel.len() {
            // Methods that cannot predict yet are not eligible.
            if self.panel[i].predict().is_none() {
                continue;
            }
            let score = self.score_of(i).unwrap_or(f64::INFINITY);
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        // With no scores yet, prefer the first method able to predict.
        if best_score.is_infinite() {
            if let Some(i) = self.panel.iter().position(|f| f.predict().is_some()) {
                best = i;
            }
        }
        self.selected = best;
    }

    /// Feeds one measurement. Every predictor that had a live forecast is
    /// scored against `value`; all predictors then absorb `value`; the best
    /// predictor (under the selection criterion) issues the forecast for
    /// the next measurement.
    ///
    /// Returns `None` only before any predictor has enough history (i.e.
    /// never after the first call, since the last-value predictor needs a
    /// single point).
    pub fn update(&mut self, value: f64) -> Option<Forecast> {
        for (f, t) in self.panel.iter_mut().zip(&mut self.trackers) {
            if let Some(pred) = f.predict() {
                t.record(pred, value);
            }
            f.observe(value);
        }
        self.observations += 1;
        self.reselect();
        self.forecast()
    }

    /// The current forecast for the next measurement without feeding data.
    pub fn forecast(&self) -> Option<Forecast> {
        let i = self.selected;
        self.panel[i].predict().map(|value| Forecast {
            value,
            method_index: i,
            method: Arc::clone(&self.names[i]),
        })
    }

    /// The selected predictor's point forecast alone — the allocation-free
    /// path for callers that score or track the value and do not need the
    /// method attribution a full [`Forecast`] carries.
    pub fn predicted_value(&self) -> Option<f64> {
        self.panel[self.selected].predict()
    }

    /// The selected predictor's `k`-step horizon forecast — step 1 is the
    /// one-step forecast, later steps follow the member's dynamics (flat
    /// for level/window members, mean-reverting for AR/ARMA).
    pub fn predict_horizon(&self, k: usize) -> Option<Vec<f64>> {
        self.panel[self.selected].predict_horizon(k)
    }

    /// Notes a gap in the measurement stream (a slot with no reading).
    ///
    /// Window-based panel members age out their stale history instead of
    /// bridging the gap; level-tracking members keep their estimate. No
    /// observation is counted and no member is scored — there is no value
    /// to score against. The current selection is kept, but members whose
    /// forecast went dark (cleared windows) are no longer served:
    /// [`PredictorBank::forecast`] returns what the selected member can
    /// still predict, and the next real measurement reselects.
    pub fn note_gap(&mut self) {
        for f in &mut self.panel {
            f.note_gap();
        }
        // If the selected member lost its forecast to the gap, fall back
        // to any member that can still predict (a level smoother).
        if self.panel[self.selected].predict().is_none() {
            self.reselect();
        }
    }

    /// Resets every predictor and tracker.
    pub fn reset(&mut self) {
        for f in &mut self.panel {
            f.reset();
        }
        for t in &mut self.trackers {
            t.reset();
        }
        self.observations = 0;
        self.selected = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nws_default_is_exactly_the_1999_spec() {
        let a = PredictorBank::nws_default();
        let b = PanelSpec::Nws1999.build();
        assert_eq!(a.method_names(), b.method_names());
    }

    #[test]
    fn extended_panel_appends_arma_members() {
        let base = PanelSpec::Nws1999.build();
        let ext = PanelSpec::Extended.build();
        let names = ext.method_names();
        assert_eq!(
            &names[..base.panel_len()],
            base.method_names().as_slice(),
            "v2 extends the 1999 panel in place"
        );
        assert_eq!(
            &names[base.panel_len()..],
            &["arma(1,1)".to_string(), "arma(2,1)".to_string()]
        );
    }

    #[test]
    fn ewma_only_bank_is_bit_identical_to_the_raw_kernel() {
        let gain = 0.25;
        let mut bank = PanelSpec::EwmaOnly { gain }.build();
        let mut state = f64::NAN;
        let mut rng: u64 = 99;
        for i in 0..500 {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            let v = (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            bank.update(v);
            state = if i == 0 {
                v
            } else {
                crate::methods::ewma_step(state, gain, v)
            };
            assert_eq!(
                bank.predicted_value().unwrap().to_bits(),
                state.to_bits(),
                "step {i}"
            );
        }
    }

    #[test]
    fn error_table_rows_merge_exactly() {
        let mut a = PanelSpec::Cheap.build();
        let mut b = PanelSpec::Cheap.build();
        for i in 0..100 {
            a.update((i % 5) as f64 / 5.0);
            b.update((i % 7) as f64 / 7.0);
        }
        let mut merged = a.error_table();
        for (m, r) in merged.iter_mut().zip(b.error_table()) {
            m.merge(&r);
        }
        let ta = a.error_table();
        let tb = b.error_table();
        for (i, m) in merged.iter().enumerate() {
            assert_eq!(m.scored, ta[i].scored + tb[i].scored);
            assert_eq!(m.abs_sum, ta[i].abs_sum + tb[i].abs_sum);
            assert!(m.mae().is_finite());
            assert!(m.mse().is_finite());
        }
    }

    #[test]
    fn horizon_step_one_matches_the_one_step_forecast() {
        let mut bank = PanelSpec::Extended.build();
        let mut x = 0.5f64;
        let mut rng: u64 = 7;
        for _ in 0..400 {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            let u = (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            x = (0.5 + 0.8 * (x - 0.5) + 0.1 * (u - 0.5)).clamp(0.0, 1.0);
            bank.update(x);
        }
        let h = bank.predict_horizon(16).expect("warm bank");
        assert_eq!(h.len(), 16);
        assert_eq!(h[0], bank.predicted_value().unwrap());
    }
}
