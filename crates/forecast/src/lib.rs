//! The NWS forecasting engine — the paper's primary contribution.
//!
//! "Rather than use a single forecasting model, the NWS applies a
//! collection of forecasting techniques to each series, and dynamically
//! chooses the one that has been most accurate over the recent set of
//! measurements. This method … has been shown to yield forecasts that are
//! equivalent to, or slightly better than, the best forecaster in the set."
//! (Section 3, citing Wolski's NWS papers.)
//!
//! The design mirrors the published NWS forecaster:
//!
//! - a **panel** of computationally cheap one-step-ahead predictors
//!   ([`methods`], [`adaptive`]): last value, running mean, sliding-window
//!   means and medians over several windows, α-trimmed means, exponential
//!   smoothing over a bank of gains, an adaptive-gain smoother, an
//!   adaptive-length window, and a stochastic-gradient predictor;
//! - per-predictor **error tracking** ([`tracker`]) over both the full
//!   history and a recent window;
//! - **dynamic selection** ([`nws`]): each time a measurement arrives, all
//!   predictors are scored on it, updated, and the one with the lowest
//!   tracked error issues the next forecast;
//! - an **offline evaluator** ([`eval`]) that replays a recorded series
//!   through the panel and reports the paper's error metrics (Eq. 4 true
//!   forecasting error against an oracle, Eq. 5 one-step-ahead prediction
//!   error against the next measurement).
//!
//! All predictors are O(1) or O(window) per update — "to be efficient,
//! each of the techniques must be relatively cheap to compute".

pub mod adaptive;
pub mod ar;
pub mod arma;
pub mod eval;
pub mod interval;
pub mod methods;
pub mod nws;
pub mod panel;
pub mod tracker;

pub use adaptive::{AdaptiveExpSmoothing, AdaptiveWindowMean, StochasticGradient};
pub use ar::{levinson_durbin, ArPredictor};
pub use arma::Arma;
pub use eval::{evaluate_one_step, EvalReport};
pub use interval::{IntervalTracker, P2Quantile, PredictionInterval};
pub use methods::{
    ewma_step, ExpSmoothing, Forecaster, LastValue, Predictor, RunningMean, SlidingMean,
    SlidingMedian, TrimmedMean,
};
pub use nws::NwsForecaster;
pub use panel::{ErrorRow, Forecast, PanelSpec, PredictorBank, Selection};
pub use tracker::ErrorTracker;
