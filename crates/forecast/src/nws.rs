//! The NWS forecaster: a predictor panel with dynamic selection.

use crate::adaptive::{AdaptiveExpSmoothing, AdaptiveWindowMean, StochasticGradient};
use crate::ar::ArPredictor;
use crate::methods::{
    ExpSmoothing, Forecaster, LastValue, RunningMean, SlidingMean, SlidingMedian, TrimmedMean,
};
use crate::tracker::ErrorTracker;
use std::sync::Arc;

/// Which error statistic drives predictor selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Mean absolute error over the recent window (the NWS default:
    /// "most accurate over the recent set of measurements").
    #[default]
    RecentMae,
    /// Cumulative mean absolute error over the whole series.
    CumulativeMae,
    /// Cumulative mean squared error.
    CumulativeMse,
}

/// One issued forecast.
///
/// The method name is a shared, immutable string cached per panel member
/// at construction, so issuing a forecast never formats or allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// The predicted next value.
    pub value: f64,
    /// Panel index of the predictor that issued it.
    pub method_index: usize,
    /// Name of that predictor.
    pub method: Arc<str>,
}

/// The NWS forecasting engine.
///
/// Feed measurements with [`NwsForecaster::update`]; each call scores every
/// panel member against the arriving measurement, updates them, and returns
/// the forecast of the currently best member for the *next* measurement.
///
/// # Examples
///
/// ```
/// use nws_forecast::NwsForecaster;
///
/// let mut nws = NwsForecaster::nws_default();
/// for v in [0.8, 0.78, 0.82, 0.8, 0.79, 0.81] {
///     nws.update(v);
/// }
/// let f = nws.forecast().unwrap();
/// assert!((f.value - 0.8).abs() < 0.05);
/// println!("next 10s: {:.0}% available (chosen: {})", f.value * 100.0, f.method);
/// ```
#[derive(Debug)]
pub struct NwsForecaster {
    panel: Vec<Box<dyn Forecaster>>,
    trackers: Vec<ErrorTracker>,
    /// Panel member names, cached once so the per-measurement paths never
    /// re-run the `format!`-based [`Forecaster::name`].
    names: Vec<Arc<str>>,
    selection: Selection,
    observations: u64,
    selected: usize,
}

impl NwsForecaster {
    /// Builds a forecaster around a custom panel.
    ///
    /// # Panics
    ///
    /// Panics if the panel is empty or `recent_window == 0`.
    pub fn new(
        panel: Vec<Box<dyn Forecaster>>,
        selection: Selection,
        recent_window: usize,
    ) -> Self {
        assert!(
            !panel.is_empty(),
            "panel must contain at least one predictor"
        );
        let trackers = panel
            .iter()
            .map(|_| ErrorTracker::new(recent_window))
            .collect();
        let names = panel.iter().map(|f| Arc::from(f.name())).collect();
        Self {
            panel,
            trackers,
            names,
            selection,
            observations: 0,
            selected: 0,
        }
    }

    /// The full NWS panel used throughout the reproduction: last value,
    /// running mean, sliding means/medians over several windows, trimmed
    /// means, an exponential-smoothing gain bank, adaptive-gain smoothing,
    /// an adaptive-length window, and a stochastic-gradient AR(1).
    pub fn nws_default() -> Self {
        let mut panel: Vec<Box<dyn Forecaster>> =
            vec![Box::new(LastValue::new()), Box::new(RunningMean::new())];
        for k in [5, 10, 20, 50, 100] {
            panel.push(Box::new(SlidingMean::new(k)));
        }
        for k in [5, 11, 21, 51] {
            panel.push(Box::new(SlidingMedian::new(k)));
        }
        for k in [11, 31] {
            panel.push(Box::new(TrimmedMean::new(k, 0.2)));
        }
        for s in ExpSmoothing::bank() {
            panel.push(Box::new(s));
        }
        panel.push(Box::new(AdaptiveExpSmoothing::new(0.2)));
        panel.push(Box::new(AdaptiveWindowMean::new(3, 100)));
        panel.push(Box::new(StochasticGradient::new(0.05)));
        panel.push(Box::new(ArPredictor::new(3, 120, 25)));
        Self::new(panel, Selection::default(), 30)
    }

    /// Panel size.
    pub fn panel_len(&self) -> usize {
        self.panel.len()
    }

    /// Names of the panel members, in index order.
    pub fn method_names(&self) -> Vec<String> {
        self.panel.iter().map(|f| f.name()).collect()
    }

    /// Number of measurements consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Index of the currently selected predictor.
    pub fn selected_index(&self) -> usize {
        self.selected
    }

    /// Per-method `(name, cumulative MAE)` for every method that has been
    /// scored at least once.
    pub fn error_summary(&self) -> Vec<(String, f64)> {
        self.panel
            .iter()
            .zip(&self.trackers)
            .filter_map(|(f, t)| t.mae().map(|m| (f.name(), m)))
            .collect()
    }

    fn score_of(&self, i: usize) -> Option<f64> {
        let t = &self.trackers[i];
        match self.selection {
            Selection::RecentMae => t.recent_mae(),
            Selection::CumulativeMae => t.mae(),
            Selection::CumulativeMse => t.mse(),
        }
    }

    fn reselect(&mut self) {
        let mut best = self.selected;
        let mut best_score = f64::INFINITY;
        for i in 0..self.panel.len() {
            // Methods that cannot predict yet are not eligible.
            if self.panel[i].predict().is_none() {
                continue;
            }
            let score = self.score_of(i).unwrap_or(f64::INFINITY);
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        // With no scores yet, prefer the first method able to predict.
        if best_score.is_infinite() {
            if let Some(i) = self.panel.iter().position(|f| f.predict().is_some()) {
                best = i;
            }
        }
        self.selected = best;
    }

    /// Feeds one measurement. Every predictor that had a live forecast is
    /// scored against `value`; all predictors then absorb `value`; the best
    /// predictor (under the selection criterion) issues the forecast for
    /// the next measurement.
    ///
    /// Returns `None` only before any predictor has enough history (i.e.
    /// never after the first call, since the last-value predictor needs a
    /// single point).
    pub fn update(&mut self, value: f64) -> Option<Forecast> {
        for (f, t) in self.panel.iter_mut().zip(&mut self.trackers) {
            if let Some(pred) = f.predict() {
                t.record(pred, value);
            }
            f.observe(value);
        }
        self.observations += 1;
        self.reselect();
        self.forecast()
    }

    /// The current forecast for the next measurement without feeding data.
    pub fn forecast(&self) -> Option<Forecast> {
        let i = self.selected;
        self.panel[i].predict().map(|value| Forecast {
            value,
            method_index: i,
            method: Arc::clone(&self.names[i]),
        })
    }

    /// The selected predictor's point forecast alone — the allocation-free
    /// path for callers that score or track the value and do not need the
    /// method attribution a full [`Forecast`] carries.
    pub fn predicted_value(&self) -> Option<f64> {
        self.panel[self.selected].predict()
    }

    /// Notes a gap in the measurement stream (a slot with no reading).
    ///
    /// Window-based panel members age out their stale history instead of
    /// bridging the gap; level-tracking members keep their estimate. No
    /// observation is counted and no member is scored — there is no value
    /// to score against. The current selection is kept, but members whose
    /// forecast went dark (cleared windows) are no longer served:
    /// [`NwsForecaster::forecast`] returns what the selected member can
    /// still predict, and the next real measurement reselects.
    pub fn note_gap(&mut self) {
        for f in &mut self.panel {
            f.note_gap();
        }
        // If the selected member lost its forecast to the gap, fall back
        // to any member that can still predict (a level smoother).
        if self.panel[self.selected].predict().is_none() {
            self.reselect();
        }
    }

    /// Resets every predictor and tracker.
    pub fn reset(&mut self) {
        for f in &mut self.panel {
            f.reset();
        }
        for t in &mut self.trackers {
            t.reset();
        }
        self.observations = 0;
        self.selected = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_already_forecasts() {
        let mut nws = NwsForecaster::nws_default();
        let f = nws.update(0.5).expect("last-value is live after 1 point");
        assert_eq!(f.value, 0.5);
    }

    #[test]
    fn constant_series_is_predicted_exactly() {
        let mut nws = NwsForecaster::nws_default();
        let mut last = None;
        for _ in 0..50 {
            last = nws.update(0.37);
        }
        let f = last.unwrap();
        assert!((f.value - 0.37).abs() < 1e-9);
    }

    #[test]
    fn selection_beats_worst_member_on_noisy_series() {
        // Alternating series: last-value is maximally wrong; the panel
        // should settle on a mean-like method.
        let mut nws = NwsForecaster::nws_default();
        let mut errs = Vec::new();
        for i in 0..400 {
            let x = if i % 2 == 0 { 0.3 } else { 0.7 };
            if let Some(f) = nws.forecast() {
                errs.push((f.value - x).abs());
            }
            nws.update(x);
        }
        let tail_mae: f64 = errs[100..].iter().sum::<f64>() / (errs.len() - 100) as f64;
        // Last-value would score 0.4; the mean scores 0.2.
        assert!(tail_mae < 0.25, "dynamic selection MAE = {tail_mae}");
    }

    #[test]
    fn selection_tracks_best_member_within_tolerance() {
        // The paper's claim: dynamic selection ≈ best fixed member.
        // Build a mean-reverting noisy series.
        let mut rng = nws_stats::Rng::new(77);
        let mut x: f64 = 0.5;
        let mut series = Vec::with_capacity(2000);
        for _ in 0..2000 {
            x = 0.9 * x + 0.05 + 0.1 * (rng.next_f64() - 0.5);
            series.push(x.clamp(0.0, 1.0));
        }
        let mut nws = NwsForecaster::nws_default();
        let mut nws_err = 0.0;
        let mut count = 0;
        for &v in &series {
            if let Some(f) = nws.forecast() {
                nws_err += (f.value - v).abs();
                count += 1;
            }
            nws.update(v);
        }
        let nws_mae = nws_err / count as f64;
        // Score each member alone.
        let best_fixed = nws
            .error_summary()
            .into_iter()
            .map(|(_, mae)| mae)
            .fold(f64::INFINITY, f64::min);
        assert!(
            nws_mae <= best_fixed * 1.25 + 1e-9,
            "dynamic {nws_mae} vs best fixed {best_fixed}"
        );
    }

    #[test]
    fn error_summary_covers_whole_panel_after_warmup() {
        let mut nws = NwsForecaster::nws_default();
        for i in 0..300 {
            nws.update((i % 7) as f64 / 7.0);
        }
        let summary = nws.error_summary();
        assert_eq!(summary.len(), nws.panel_len());
        for (name, mae) in &summary {
            assert!(mae.is_finite(), "{name} has bad MAE");
        }
    }

    #[test]
    fn method_names_are_unique() {
        let nws = NwsForecaster::nws_default();
        let mut names = nws.method_names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate panel names");
    }

    #[test]
    fn selection_criteria_all_work() {
        for sel in [
            Selection::RecentMae,
            Selection::CumulativeMae,
            Selection::CumulativeMse,
        ] {
            let mut nws = NwsForecaster::new(
                vec![Box::new(LastValue::new()), Box::new(RunningMean::new())],
                sel,
                10,
            );
            for i in 0..50 {
                nws.update((i as f64 * 0.7).sin().abs());
            }
            assert!(nws.forecast().is_some());
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut nws = NwsForecaster::nws_default();
        for _ in 0..10 {
            nws.update(0.5);
        }
        nws.reset();
        assert_eq!(nws.observations(), 0);
        assert!(nws.forecast().is_none());
        // And it works again after reset.
        assert!(nws.update(0.2).is_some());
    }

    #[test]
    #[should_panic(expected = "panel")]
    fn empty_panel_panics() {
        NwsForecaster::new(Vec::new(), Selection::default(), 10);
    }

    #[test]
    fn gap_keeps_a_live_forecast_without_counting_observations() {
        let mut nws = NwsForecaster::nws_default();
        for _ in 0..60 {
            nws.update(0.8);
        }
        let n = nws.observations();
        nws.note_gap();
        assert_eq!(nws.observations(), n, "gaps are not observations");
        // Some level predictor still serves a forecast near the old level.
        let f = nws.forecast().expect("level members bridge the gap");
        assert!(
            (f.value - 0.8).abs() < 0.05,
            "post-gap forecast {}",
            f.value
        );
        // And the engine keeps working afterwards.
        assert!(nws.update(0.5).is_some());
    }

    #[test]
    fn gap_reselects_when_selected_member_goes_dark() {
        // A window-only panel: the gap clears every member, so forecast()
        // goes dark instead of serving stale values; the next measurement
        // revives it.
        let mut nws = NwsForecaster::new(
            vec![
                Box::new(SlidingMean::new(4)),
                Box::new(SlidingMedian::new(4)),
            ],
            Selection::default(),
            10,
        );
        for i in 0..20 {
            nws.update(0.4 + 0.01 * (i % 3) as f64);
        }
        assert!(nws.forecast().is_some());
        nws.note_gap();
        assert!(nws.forecast().is_none(), "window panel must go dark");
        assert!(nws.update(0.6).is_some());
    }
}
