//! The NWS forecaster: the historical name of the predictor bank.
//!
//! The engine itself lives in [`panel`](crate::panel) as
//! [`PredictorBank`] — the unified predictor tier shared by the per-host
//! forecast service, the fleet shards, and the quality benchmarks.
//! `NwsForecaster` is an alias kept so the paper-facing name (and every
//! existing call site) keeps reading naturally.

use crate::panel::PredictorBank;
pub use crate::panel::{Forecast, Selection};

/// The NWS forecasting engine — an alias of [`PredictorBank`].
pub type NwsForecaster = PredictorBank;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{LastValue, RunningMean, SlidingMean, SlidingMedian};

    #[test]
    fn first_update_already_forecasts() {
        let mut nws = NwsForecaster::nws_default();
        let f = nws.update(0.5).expect("last-value is live after 1 point");
        assert_eq!(f.value, 0.5);
    }

    #[test]
    fn constant_series_is_predicted_exactly() {
        let mut nws = NwsForecaster::nws_default();
        let mut last = None;
        for _ in 0..50 {
            last = nws.update(0.37);
        }
        let f = last.unwrap();
        assert!((f.value - 0.37).abs() < 1e-9);
    }

    #[test]
    fn selection_beats_worst_member_on_noisy_series() {
        // Alternating series: last-value is maximally wrong; the panel
        // should settle on a mean-like method.
        let mut nws = NwsForecaster::nws_default();
        let mut errs = Vec::new();
        for i in 0..400 {
            let x = if i % 2 == 0 { 0.3 } else { 0.7 };
            if let Some(f) = nws.forecast() {
                errs.push((f.value - x).abs());
            }
            nws.update(x);
        }
        let tail_mae: f64 = errs[100..].iter().sum::<f64>() / (errs.len() - 100) as f64;
        // Last-value would score 0.4; the mean scores 0.2.
        assert!(tail_mae < 0.25, "dynamic selection MAE = {tail_mae}");
    }

    #[test]
    fn selection_tracks_best_member_within_tolerance() {
        // The paper's claim: dynamic selection ≈ best fixed member.
        // Build a mean-reverting noisy series.
        let mut rng = nws_stats::Rng::new(77);
        let mut x: f64 = 0.5;
        let mut series = Vec::with_capacity(2000);
        for _ in 0..2000 {
            x = 0.9 * x + 0.05 + 0.1 * (rng.next_f64() - 0.5);
            series.push(x.clamp(0.0, 1.0));
        }
        let mut nws = NwsForecaster::nws_default();
        let mut nws_err = 0.0;
        let mut count = 0;
        for &v in &series {
            if let Some(f) = nws.forecast() {
                nws_err += (f.value - v).abs();
                count += 1;
            }
            nws.update(v);
        }
        let nws_mae = nws_err / count as f64;
        // Score each member alone.
        let best_fixed = nws
            .error_summary()
            .into_iter()
            .map(|(_, mae)| mae)
            .fold(f64::INFINITY, f64::min);
        assert!(
            nws_mae <= best_fixed * 1.25 + 1e-9,
            "dynamic {nws_mae} vs best fixed {best_fixed}"
        );
    }

    #[test]
    fn error_summary_covers_whole_panel_after_warmup() {
        let mut nws = NwsForecaster::nws_default();
        for i in 0..300 {
            nws.update((i % 7) as f64 / 7.0);
        }
        let summary = nws.error_summary();
        assert_eq!(summary.len(), nws.panel_len());
        for (name, mae) in &summary {
            assert!(mae.is_finite(), "{name} has bad MAE");
        }
    }

    #[test]
    fn method_names_are_unique() {
        let nws = NwsForecaster::nws_default();
        let mut names = nws.method_names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate panel names");
    }

    #[test]
    fn selection_criteria_all_work() {
        for sel in [
            Selection::RecentMae,
            Selection::CumulativeMae,
            Selection::CumulativeMse,
        ] {
            let mut nws = NwsForecaster::new(
                vec![Box::new(LastValue::new()), Box::new(RunningMean::new())],
                sel,
                10,
            );
            for i in 0..50 {
                nws.update((i as f64 * 0.7).sin().abs());
            }
            assert!(nws.forecast().is_some());
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut nws = NwsForecaster::nws_default();
        for _ in 0..10 {
            nws.update(0.5);
        }
        nws.reset();
        assert_eq!(nws.observations(), 0);
        assert!(nws.forecast().is_none());
        // And it works again after reset.
        assert!(nws.update(0.2).is_some());
    }

    #[test]
    #[should_panic(expected = "panel")]
    fn empty_panel_panics() {
        NwsForecaster::new(Vec::new(), Selection::default(), 10);
    }

    #[test]
    fn gap_keeps_a_live_forecast_without_counting_observations() {
        let mut nws = NwsForecaster::nws_default();
        for _ in 0..60 {
            nws.update(0.8);
        }
        let n = nws.observations();
        nws.note_gap();
        assert_eq!(nws.observations(), n, "gaps are not observations");
        // Some level predictor still serves a forecast near the old level.
        let f = nws.forecast().expect("level members bridge the gap");
        assert!(
            (f.value - 0.8).abs() < 0.05,
            "post-gap forecast {}",
            f.value
        );
        // And the engine keeps working afterwards.
        assert!(nws.update(0.5).is_some());
    }

    #[test]
    fn gap_reselects_when_selected_member_goes_dark() {
        // A window-only panel: the gap clears every member, so forecast()
        // goes dark instead of serving stale values; the next measurement
        // revives it.
        let mut nws = NwsForecaster::new(
            vec![
                Box::new(SlidingMean::new(4)),
                Box::new(SlidingMedian::new(4)),
            ],
            Selection::default(),
            10,
        );
        for i in 0..20 {
            nws.update(0.4 + 0.01 * (i % 3) as f64);
        }
        assert!(nws.forecast().is_some());
        nws.note_gap();
        assert!(nws.forecast().is_none(), "window panel must go dark");
        assert!(nws.update(0.6).is_some());
    }
}
