//! Online ARMA(p, q) forecasting.
//!
//! Sandholm's study of computational-demand forecasting shows low-order
//! ARMA models tracking grid workloads where pure AR models lag: the
//! moving-average terms absorb the shock structure the AR part cannot.
//! This module brings that model into the panel with the same cost
//! discipline as [`ArPredictor`](crate::ArPredictor):
//!
//! - the **AR side** is refit every `refit_every` observations from the
//!   sliding window's sample autocovariances via the shared
//!   Levinson–Durbin kernel (O(p²) per refit, allocation-free);
//! - the **MA side** is adapted *online*: each arriving measurement
//!   yields an innovation `e_t = x_t − x̂_t`, and the θ coefficients
//!   follow a normalized LMS gradient step on that innovation against
//!   the lagged innovations that produced the forecast — no batch
//!   maximum-likelihood pass, O(q) per observation.
//!
//! The one-step forecast is the textbook ARMA predictor
//!
//! ```text
//! x̂_{t+1} = μ + Σᵢ aᵢ (x_{t+1−i} − μ) + Σⱼ θⱼ e_{t+1−j}
//! ```
//!
//! and multi-step horizons iterate it with future innovations set to
//! their expectation (zero).
//!
//! Gap semantics follow the AR predictor: a gap clears the measurement
//! window *and* the innovation history (neither lags nor innovations may
//! span a gap), keeps the fitted model, and resumes once enough fresh
//! values accumulate.

use crate::ar::levinson_durbin_into;
use crate::methods::Predictor;
use nws_timeseries::SlidingWindow;

/// Normalized-LMS step size for the θ updates.
const THETA_STEP: f64 = 0.05;
/// Regularizer keeping the normalized step finite on dead-quiet series.
const THETA_EPS: f64 = 1e-6;
/// Forgetting factor of the innovation-power estimate.
const POWER_DECAY: f64 = 0.99;
/// θ coefficients are clamped to this magnitude (invertibility guard).
const THETA_CAP: f64 = 0.98;

/// A sliding-window ARMA(p, q) one-step predictor with online parameter
/// refresh.
#[derive(Debug, Clone)]
pub struct Arma {
    p: usize,
    q: usize,
    window: SlidingWindow,
    refit_every: usize,
    since_refit: usize,
    /// Fitted AR coefficients (empty until the first successful fit).
    ar: Vec<f64>,
    /// MA coefficients, adapted online (zero-initialized).
    theta: Vec<f64>,
    /// Window mean at fit time.
    mean: f64,
    /// Most-recent-first ring of the last `q` innovations.
    resid: Vec<f64>,
    /// Innovations currently held (≤ `q`; cleared by gaps).
    resid_len: usize,
    /// Running innovation-power estimate for the normalized step.
    power: f64,
    /// Refit scratch (see [`ArPredictor`](crate::ArPredictor)).
    autocov: Vec<f64>,
    lev_a: Vec<f64>,
    lev_prev: Vec<f64>,
}

impl Arma {
    /// Creates an ARMA(`p`, `q`) predictor over a window of `window_len`
    /// measurements, refitting the AR side every `refit_every`
    /// observations.
    ///
    /// # Panics
    ///
    /// Panics unless `p > 0`, `q > 0`, `window_len >= 4 * p`, and
    /// `refit_every > 0`.
    pub fn new(p: usize, q: usize, window_len: usize, refit_every: usize) -> Self {
        assert!(p > 0, "AR order must be positive");
        assert!(
            q > 0,
            "MA order must be positive (use ArPredictor for q = 0)"
        );
        assert!(
            window_len >= 4 * p,
            "window must be at least 4x the AR order for a stable fit"
        );
        assert!(refit_every > 0, "refit cadence must be positive");
        Self {
            p,
            q,
            window: SlidingWindow::new(window_len),
            refit_every,
            since_refit: 0,
            ar: Vec::with_capacity(p),
            theta: vec![0.0; q],
            mean: 0.0,
            resid: vec![0.0; q],
            resid_len: 0,
            power: 1.0,
            autocov: vec![0.0; p + 1],
            lev_a: vec![0.0; p],
            lev_prev: vec![0.0; p],
        }
    }

    /// The fitted AR coefficients (empty before the first fit).
    pub fn ar_coefficients(&self) -> &[f64] {
        &self.ar
    }

    /// The current MA coefficients.
    pub fn ma_coefficients(&self) -> &[f64] {
        &self.theta
    }

    fn refit(&mut self) {
        let n = self.window.len();
        if n < 4 * self.p {
            return;
        }
        let mean = self.window.iter().sum::<f64>() / n as f64;
        for k in 0..=self.p {
            let mut acc = 0.0;
            for t in 0..n - k {
                let xt = self.window.get(t).expect("t in range");
                let xtk = self.window.get(t + k).expect("t + k in range");
                acc += (xt - mean) * (xtk - mean);
            }
            self.autocov[k] = acc / n as f64;
        }
        if levinson_durbin_into(&self.autocov, self.p, &mut self.lev_a, &mut self.lev_prev) {
            self.ar.clear();
            self.ar.extend_from_slice(&self.lev_a);
            self.mean = mean;
        }
        // On a degenerate fit the previous model (or none) is kept.
    }

    /// The model-based one-step forecast, or `None` when the AR side is
    /// unfit or the window holds fewer than `p` fresh lags.
    fn model_predict(&self) -> Option<f64> {
        if self.ar.is_empty() {
            return None;
        }
        let n = self.window.len();
        if n < self.p {
            return None;
        }
        let mut pred = self.mean;
        for (i, &a) in self.ar.iter().enumerate() {
            let lag = self.window.get(n - 1 - i).expect("lag in range");
            pred += a * (lag - self.mean);
        }
        for j in 0..self.resid_len {
            pred += self.theta[j] * self.resid[j];
        }
        Some(pred)
    }
}

impl Predictor for Arma {
    fn name(&self) -> String {
        format!("arma({},{})", self.p, self.q)
    }

    fn observe(&mut self, value: f64) {
        // Score the standing model forecast first: its innovation drives
        // the θ gradient and enters the residual ring.
        if let Some(pred) = self.model_predict() {
            let e = value - pred;
            // Normalized LMS against the residuals the forecast used.
            let step = THETA_STEP * e / (THETA_EPS + self.power);
            for j in 0..self.resid_len {
                self.theta[j] = (self.theta[j] + step * self.resid[j]).clamp(-THETA_CAP, THETA_CAP);
            }
            self.power = POWER_DECAY * self.power + (1.0 - POWER_DECAY) * e * e;
            // Push the innovation, most recent first.
            self.resid.rotate_right(1);
            self.resid[0] = e;
            self.resid_len = (self.resid_len + 1).min(self.q);
        }
        self.window.push(value);
        self.since_refit += 1;
        if self.since_refit >= self.refit_every && self.window.len() >= 4 * self.p {
            self.since_refit = 0;
            self.refit();
        }
    }

    fn predict(&self) -> Option<f64> {
        // Fall back to the window mean until a model exists, exactly as
        // the AR predictor does.
        self.model_predict().or_else(|| self.window.mean())
    }

    fn reset(&mut self) {
        self.window.clear();
        self.ar.clear();
        self.theta.fill(0.0);
        self.mean = 0.0;
        self.resid.fill(0.0);
        self.resid_len = 0;
        self.power = 1.0;
        self.since_refit = 0;
    }

    fn note_gap(&mut self) {
        // Neither measurement lags nor innovations may span a gap; the
        // fitted a/θ (and μ) survive.
        self.window.clear();
        self.resid.fill(0.0);
        self.resid_len = 0;
        self.since_refit = 0;
    }

    fn predict_horizon(&self, k: usize) -> Option<Vec<f64>> {
        if self.ar.is_empty() || self.window.len() < self.p {
            let v = self.predict()?;
            return Some(vec![v; k]);
        }
        let n = self.window.len();
        let mut lags: Vec<f64> = (0..self.p)
            .map(|i| self.window.get(n - 1 - i).expect("lag in range"))
            .collect();
        // Future innovations are zero in expectation: the residual ring
        // shifts zeros in as the horizon advances.
        let mut resid = self.resid.clone();
        let mut resid_len = self.resid_len;
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let mut pred = self.mean;
            for (i, &a) in self.ar.iter().enumerate() {
                pred += a * (lags[i] - self.mean);
            }
            for (&t, &r) in self.theta.iter().zip(&resid).take(resid_len) {
                pred += t * r;
            }
            out.push(pred);
            lags.rotate_right(1);
            lags[0] = pred;
            resid.rotate_right(1);
            resid[0] = 0.0;
            resid_len = (resid_len + 1).min(self.q);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_stats::Rng;

    #[test]
    fn arma_learns_ar1_process_at_least_as_well_as_mean() {
        let mut rng = Rng::new(11);
        let mut x = 0.0f64;
        let mut f = Arma::new(1, 1, 120, 25);
        let (mut model_err, mut mean_err) = (0.0, 0.0);
        let mut running = 0.0;
        let mut count = 0u64;
        let mut n = 0u64;
        for i in 0..4000 {
            let next = 0.6 * x + 0.15 * rng.next_standard_normal();
            if i > 1000 {
                if let Some(p) = f.predict() {
                    model_err += (p - next).abs();
                    mean_err += (running / count as f64 - next).abs();
                    n += 1;
                }
            }
            f.observe(next);
            running += next;
            count += 1;
            x = next;
        }
        assert!(n > 0);
        assert!(
            model_err < mean_err * 0.95,
            "ARMA {model_err} should beat the running mean {mean_err}"
        );
    }

    #[test]
    fn ma_terms_help_on_an_ma_process() {
        // Pure MA(1): x_t = e_t + 0.7 e_{t-1}. An AR(1) fit approximates
        // it; the θ update should pull the combined model closer.
        let mut rng = Rng::new(23);
        let mut prev_e = 0.0f64;
        let mut arma = Arma::new(1, 1, 160, 20);
        let mut ar = crate::ar::ArPredictor::new(1, 160, 20);
        let (mut arma_err, mut ar_err) = (0.0, 0.0);
        for i in 0..8000 {
            let e = 0.2 * rng.next_standard_normal();
            let x = e + 0.7 * prev_e;
            prev_e = e;
            if i > 2000 {
                if let (Some(pa), Some(pr)) = (arma.predict(), ar.predict()) {
                    arma_err += (pa - x).abs();
                    ar_err += (pr - x).abs();
                }
            }
            arma.observe(x);
            ar.observe(x);
        }
        assert!(
            arma_err < ar_err * 1.02,
            "ARMA {arma_err} should not trail AR {ar_err} on MA data"
        );
        assert!(
            arma.ma_coefficients()[0] > 0.05,
            "θ1 = {} should move toward the true 0.7",
            arma.ma_coefficients()[0]
        );
    }

    #[test]
    fn constant_series_is_exact() {
        let mut f = Arma::new(2, 1, 40, 10);
        for _ in 0..100 {
            f.observe(0.42);
        }
        let p = f.predict().expect("window non-empty");
        assert!((p - 0.42).abs() < 1e-9);
    }

    #[test]
    fn gap_clears_lags_and_innovations_but_keeps_model() {
        let mut rng = Rng::new(5);
        let mut f = Arma::new(2, 2, 60, 10);
        let mut x = 0.5f64;
        for _ in 0..200 {
            x = 0.5 + 0.8 * (x - 0.5) + 0.05 * (rng.next_f64() - 0.5);
            f.observe(x);
        }
        assert!(!f.ar_coefficients().is_empty());
        f.note_gap();
        assert!(!f.ar_coefficients().is_empty(), "model survives the gap");
        assert_eq!(f.predict(), None, "no fresh lags yet");
        f.observe(0.5);
        assert!(f.predict().is_some(), "window mean bridges the refill");
    }

    #[test]
    fn horizon_converges_to_the_fitted_mean() {
        let mut rng = Rng::new(17);
        let mut f = Arma::new(1, 1, 120, 20);
        let mut x = 0.5f64;
        for _ in 0..500 {
            x = 0.5 + 0.7 * (x - 0.5) + 0.08 * (rng.next_f64() - 0.5);
            f.observe(x);
        }
        let h = f.predict_horizon(64).expect("model fit");
        assert_eq!(h.len(), 64);
        assert_eq!(h[0], f.predict().unwrap(), "step 1 matches one-step");
        // With |a| < 1 the iteration settles geometrically on the fitted
        // mean: late steps move far less than early ones.
        let first_step = (h[1] - h[0]).abs();
        let last_step = (h[63] - h[62]).abs();
        assert!(
            last_step <= first_step.max(1e-12) && last_step < 1e-3,
            "horizon should settle: first step {first_step}, last step {last_step}"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut f = Arma::new(1, 1, 40, 5);
        for i in 0..80 {
            f.observe((i as f64 * 0.3).sin());
        }
        f.reset();
        assert!(f.ar_coefficients().is_empty());
        assert_eq!(f.ma_coefficients(), &[0.0]);
        assert_eq!(f.predict(), None);
    }

    #[test]
    #[should_panic(expected = "MA order")]
    fn zero_q_panics() {
        Arma::new(1, 0, 40, 5);
    }
}
