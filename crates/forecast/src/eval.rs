//! Offline evaluation of forecasting performance.
//!
//! The paper reports two error forms (Section 3):
//!
//! - **one-step-ahead prediction error** (Eq. 5):
//!   `|forecast_{t|t−1} − measurement_t|` — how well the *next measurement*
//!   is predicted (Tables 3 and 5);
//! - **true forecasting error** (Eq. 4):
//!   `|forecast_{t|t−1} − test-process observation_t|` — the error a
//!   scheduler would actually see (Tables 2 and 6), which folds in
//!   measurement error.
//!
//! [`evaluate_one_step`] replays a recorded series through a forecaster and
//! reports both metrics; the true-error variant needs the caller to supply
//! the paired oracle observations since they come from a separate process.

use crate::nws::NwsForecaster;

/// Result of replaying a series through a forecaster.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Number of scored forecasts (series length minus warm-up).
    pub n: usize,
    /// Mean absolute one-step-ahead prediction error (Eq. 5).
    pub mae: f64,
    /// Root mean squared one-step error.
    pub rmse: f64,
    /// Mean error (signed bias).
    pub bias: f64,
    /// Largest absolute error.
    pub max_abs: f64,
}

/// Replays `values` through `forecaster`, scoring each live forecast
/// against the measurement that follows it. Returns `None` if fewer than
/// two values are supplied (no forecast can be scored).
pub fn evaluate_one_step(forecaster: &mut NwsForecaster, values: &[f64]) -> Option<EvalReport> {
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut err_sum = 0.0;
    let mut max_abs: f64 = 0.0;
    let mut n = 0usize;
    for &v in values {
        if let Some(f) = forecaster.forecast() {
            let e = f.value - v;
            abs_sum += e.abs();
            sq_sum += e * e;
            err_sum += e;
            max_abs = max_abs.max(e.abs());
            n += 1;
        }
        forecaster.update(v);
    }
    if n == 0 {
        return None;
    }
    let nf = n as f64;
    Some(EvalReport {
        n,
        mae: abs_sum / nf,
        rmse: (sq_sum / nf).sqrt(),
        bias: err_sum / nf,
        max_abs,
    })
}

/// Scores forecasts against a *separate* paired oracle: at each index `i`,
/// the forecaster (already fed `history[..i]` measurements via this
/// function) forecasts, the forecast is compared with `oracle[i]`, and the
/// measurement `measurements[i]` is then absorbed.
///
/// This is the paper's Eq. 4 protocol: forecasts come from the measurement
/// series, errors are taken against the test-process observations.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn evaluate_true_error(
    forecaster: &mut NwsForecaster,
    measurements: &[f64],
    oracle: &[f64],
) -> Option<EvalReport> {
    assert_eq!(
        measurements.len(),
        oracle.len(),
        "measurement/oracle pairs must align"
    );
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut err_sum = 0.0;
    let mut max_abs: f64 = 0.0;
    let mut n = 0usize;
    for (&m, &o) in measurements.iter().zip(oracle) {
        if let Some(f) = forecaster.forecast() {
            let e = f.value - o;
            abs_sum += e.abs();
            sq_sum += e * e;
            err_sum += e;
            max_abs = max_abs.max(e.abs());
            n += 1;
        }
        forecaster.update(m);
    }
    if n == 0 {
        return None;
    }
    let nf = n as f64;
    Some(EvalReport {
        n,
        mae: abs_sum / nf,
        rmse: (sq_sum / nf).sqrt(),
        bias: err_sum / nf,
        max_abs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_has_zero_error() {
        let mut nws = NwsForecaster::nws_default();
        let r = evaluate_one_step(&mut nws, &[0.5; 100]).unwrap();
        assert_eq!(r.n, 99); // first value cannot be scored
        assert!(r.mae < 1e-9);
        assert!(r.rmse < 1e-9);
        assert_eq!(r.max_abs, r.max_abs.abs());
    }

    #[test]
    fn degenerate_inputs() {
        let mut nws = NwsForecaster::nws_default();
        assert!(evaluate_one_step(&mut nws, &[]).is_none());
        let mut nws = NwsForecaster::nws_default();
        assert!(evaluate_one_step(&mut nws, &[1.0]).is_none());
    }

    #[test]
    fn rmse_dominates_mae() {
        let mut nws = NwsForecaster::nws_default();
        let vals: Vec<f64> = (0..200).map(|i| ((i * 17) % 13) as f64 / 13.0).collect();
        let r = evaluate_one_step(&mut nws, &vals).unwrap();
        assert!(r.rmse >= r.mae);
        assert!(r.max_abs >= r.rmse);
    }

    #[test]
    fn true_error_reflects_oracle_offset() {
        // Measurements are constant 0.5; the oracle sits at 0.8: the true
        // error converges to the 0.3 offset while one-step error is ~0.
        let measurements = vec![0.5; 200];
        let oracle = vec![0.8; 200];
        let mut nws = NwsForecaster::nws_default();
        let r = evaluate_true_error(&mut nws, &measurements, &oracle).unwrap();
        assert!((r.mae - 0.3).abs() < 1e-6, "true MAE = {}", r.mae);
        assert!((r.bias + 0.3).abs() < 1e-6, "bias = {}", r.bias);
        let mut nws = NwsForecaster::nws_default();
        let one_step = evaluate_one_step(&mut nws, &measurements).unwrap();
        assert!(one_step.mae < 1e-9);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_pairs_panic() {
        let mut nws = NwsForecaster::nws_default();
        evaluate_true_error(&mut nws, &[0.1], &[0.1, 0.2]);
    }
}
