//! The basic one-step-ahead predictors of the NWS panel.
//!
//! Each predictor consumes measurements one at a time ([`Forecaster::observe`])
//! and offers a forecast of the *next* measurement ([`Forecaster::predict`]).
//! "Briefly summarized, each method uses a 'sliding window' over previous
//! measurements to compute a one-step-ahead forecast based either on some
//! estimate of the mean or median of those measurements."

use nws_timeseries::SlidingWindow;

/// A streaming predictor: one-step-ahead by contract, multi-step by
/// extension ([`Predictor::predict_horizon`]).
pub trait Predictor: std::fmt::Debug + Send {
    /// Short display name, e.g. `"sw_mean(20)"`.
    fn name(&self) -> String;

    /// Feeds the next measurement into the predictor's state.
    fn observe(&mut self, value: f64);

    /// The current forecast for the next (not yet seen) measurement, or
    /// `None` before the predictor has enough history.
    fn predict(&self) -> Option<f64>;

    /// Resets the predictor to its initial state.
    fn reset(&mut self);

    /// Notes a gap in the measurement stream (a slot with no reading).
    ///
    /// Window-based predictors age out their history rather than bridge
    /// the gap — the values on the far side describe a workload that may
    /// have changed entirely (most drastically across a host reboot).
    /// Level-tracking predictors (smoothers, means of everything) keep
    /// their state: their estimate is still the best guess for what comes
    /// after the gap. The default is therefore a no-op.
    fn note_gap(&mut self) {}

    /// Forecasts the next `k` measurements, or `None` before the
    /// predictor has enough history.
    ///
    /// Level and window predictors have no dynamics: their best `h`-step
    /// guess is the one-step forecast held flat, which is the default.
    /// Model-based predictors (AR, ARMA) override this with iterated
    /// forecasting — predictions feed back as pseudo-lags, so horizons
    /// decay toward the fitted mean instead of freezing at one step.
    fn predict_horizon(&self, k: usize) -> Option<Vec<f64>> {
        let v = self.predict()?;
        Some(vec![v; k])
    }
}

/// The original trait name; kept as an alias so existing panels,
/// impls, and tests read either way.
pub use self::Predictor as Forecaster;

/// One exponential-smoothing step: `state + gain·(value − state)`.
///
/// The single canonical EWMA kernel — [`ExpSmoothing::observe`] and the
/// fleet tier's dense per-host forecasts
/// (`nws_grid::fleet::FleetMonitor`) both evaluate exactly this
/// expression, so the two paths stay bit-identical by construction.
#[inline]
pub fn ewma_step(state: f64, gain: f64, value: f64) -> f64 {
    state + gain * (value - state)
}

/// Predicts that the next value equals the most recent one.
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for LastValue {
    fn name(&self) -> String {
        "last".into()
    }

    fn observe(&mut self, value: f64) {
        self.last = Some(value);
    }

    fn predict(&self) -> Option<f64> {
        self.last
    }

    fn reset(&mut self) {
        self.last = None;
    }
}

/// Predicts the mean of the entire measurement history (O(1) state).
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for RunningMean {
    fn name(&self) -> String {
        "run_mean".into()
    }

    fn observe(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    fn predict(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }
}

/// Predicts the mean of the last `k` measurements.
#[derive(Debug, Clone)]
pub struct SlidingMean {
    window: SlidingWindow,
    k: usize,
}

impl SlidingMean {
    /// Creates a sliding mean over `k` measurements.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        Self {
            window: SlidingWindow::new(k),
            k,
        }
    }
}

impl Forecaster for SlidingMean {
    fn name(&self) -> String {
        format!("sw_mean({})", self.k)
    }

    fn observe(&mut self, value: f64) {
        self.window.push(value);
    }

    fn predict(&self) -> Option<f64> {
        self.window.mean()
    }

    fn reset(&mut self) {
        self.window.clear();
    }

    fn note_gap(&mut self) {
        self.window.clear();
    }
}

/// Predicts the median of the last `k` measurements — robust to the
/// spikes a run-queue series is full of.
///
/// Alongside the FIFO window it keeps the same `k` values in a sorted
/// `Vec`, updated by binary-search insert and evict on every observation
/// (O(k) moves, no comparison sort), so a prediction is an O(1) index into
/// the middle instead of an O(k log k) copy-and-sort per call.
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    window: SlidingWindow,
    /// The window's values in ascending order.
    sorted: Vec<f64>,
    k: usize,
}

impl SlidingMedian {
    /// Creates a sliding median over `k` measurements.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        Self {
            window: SlidingWindow::new(k),
            sorted: Vec::with_capacity(k),
            k,
        }
    }
}

impl Forecaster for SlidingMedian {
    fn name(&self) -> String {
        format!("sw_median({})", self.k)
    }

    fn observe(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "median window values must be finite");
        if let Some(evicted) = self.window.push(value) {
            let at = self.sorted.partition_point(|&x| x < evicted);
            debug_assert!(self.sorted[at] == evicted, "evicted value not found");
            self.sorted.remove(at);
        }
        let at = self.sorted.partition_point(|&x| x < value);
        self.sorted.insert(at, value);
    }

    fn predict(&self) -> Option<f64> {
        let n = self.sorted.len();
        if n == 0 {
            return None;
        }
        Some(if n % 2 == 1 {
            self.sorted[n / 2]
        } else {
            (self.sorted[n / 2 - 1] + self.sorted[n / 2]) / 2.0
        })
    }

    fn reset(&mut self) {
        self.window.clear();
        self.sorted.clear();
    }

    fn note_gap(&mut self) {
        self.window.clear();
        self.sorted.clear();
    }
}

/// Predicts the α-trimmed mean of the last `k` measurements (a compromise
/// between the mean's efficiency and the median's robustness).
///
/// Like [`SlidingMedian`] it mirrors the window into a sorted `Vec`
/// maintained by binary-search insert and evict, so a prediction is an
/// O(k) sum over the kept middle slice instead of an O(k log k)
/// copy-and-sort per call — and allocates nothing once warm.
#[derive(Debug, Clone)]
pub struct TrimmedMean {
    window: SlidingWindow,
    /// The window's values in ascending order.
    sorted: Vec<f64>,
    k: usize,
    alpha: f64,
}

impl TrimmedMean {
    /// Creates an α-trimmed sliding mean.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `alpha ∉ [0, 0.5)`.
    pub fn new(k: usize, alpha: f64) -> Self {
        assert!((0.0..0.5).contains(&alpha), "alpha must be in [0, 0.5)");
        Self {
            window: SlidingWindow::new(k),
            sorted: Vec::with_capacity(k),
            k,
            alpha,
        }
    }
}

impl Forecaster for TrimmedMean {
    fn name(&self) -> String {
        format!("trim_mean({},{})", self.k, self.alpha)
    }

    fn observe(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "trimmed window values must be finite");
        if let Some(evicted) = self.window.push(value) {
            let at = self.sorted.partition_point(|&x| x < evicted);
            debug_assert!(self.sorted[at] == evicted, "evicted value not found");
            self.sorted.remove(at);
        }
        let at = self.sorted.partition_point(|&x| x < value);
        self.sorted.insert(at, value);
    }

    fn predict(&self) -> Option<f64> {
        let n = self.sorted.len();
        if n == 0 {
            return None;
        }
        let k = (self.alpha * n as f64).floor() as usize;
        let kept = &self.sorted[k..n - k];
        if kept.is_empty() {
            // Everything trimmed away: fall back to the median, exactly as
            // `SlidingWindow::trimmed_mean` does.
            return Some(if n % 2 == 1 {
                self.sorted[n / 2]
            } else {
                (self.sorted[n / 2 - 1] + self.sorted[n / 2]) / 2.0
            });
        }
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }

    fn reset(&mut self) {
        self.window.clear();
        self.sorted.clear();
    }

    fn note_gap(&mut self) {
        self.window.clear();
        self.sorted.clear();
    }
}

/// Exponential smoothing with a fixed gain:
/// `forecast ← gain·x + (1 − gain)·forecast`.
///
/// The NWS runs a bank of these across gains; small gains track slowly
/// varying series, large gains chase recent changes.
#[derive(Debug, Clone)]
pub struct ExpSmoothing {
    gain: f64,
    state: Option<f64>,
}

impl ExpSmoothing {
    /// Creates a smoother with `gain ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics for gains outside `(0, 1]`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0, 1]");
        Self { gain, state: None }
    }

    /// The standard NWS gain bank.
    pub fn bank() -> Vec<ExpSmoothing> {
        [0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 0.9]
            .iter()
            .map(|&g| ExpSmoothing::new(g))
            .collect()
    }
}

impl Forecaster for ExpSmoothing {
    fn name(&self) -> String {
        format!("exp_smooth({})", self.gain)
    }

    fn observe(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => ewma_step(s, self.gain, value),
        });
    }

    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(f: &mut dyn Forecaster, values: &[f64]) {
        for &v in values {
            f.observe(v);
        }
    }

    #[test]
    fn all_start_with_no_prediction() {
        let fs: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingMean::new(3)),
            Box::new(SlidingMedian::new(3)),
            Box::new(TrimmedMean::new(5, 0.2)),
            Box::new(ExpSmoothing::new(0.5)),
        ];
        for f in &fs {
            assert_eq!(f.predict(), None, "{} predicted too early", f.name());
        }
    }

    #[test]
    fn last_value_tracks() {
        let mut f = LastValue::new();
        feed(&mut f, &[0.3, 0.7]);
        assert_eq!(f.predict(), Some(0.7));
    }

    #[test]
    fn running_mean_is_cumulative() {
        let mut f = RunningMean::new();
        feed(&mut f, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.predict(), Some(2.5));
    }

    #[test]
    fn sliding_mean_forgets() {
        let mut f = SlidingMean::new(2);
        feed(&mut f, &[10.0, 1.0, 3.0]);
        assert_eq!(f.predict(), Some(2.0));
    }

    #[test]
    fn sliding_median_resists_outliers() {
        let mut f = SlidingMedian::new(5);
        feed(&mut f, &[0.5, 0.5, 0.5, 0.5, 99.0]);
        assert_eq!(f.predict(), Some(0.5));
    }

    #[test]
    fn trimmed_mean_between_mean_and_median() {
        let data = [0.4, 0.5, 0.6, 0.5, 5.0];
        let mut mean = SlidingMean::new(5);
        let mut med = SlidingMedian::new(5);
        let mut trim = TrimmedMean::new(5, 0.2);
        feed(&mut mean, &data);
        feed(&mut med, &data);
        feed(&mut trim, &data);
        let (m, d, t) = (
            mean.predict().unwrap(),
            med.predict().unwrap(),
            trim.predict().unwrap(),
        );
        assert!(d <= t && t <= m, "median {d} <= trimmed {t} <= mean {m}");
    }

    #[test]
    fn exp_smoothing_geometry() {
        let mut f = ExpSmoothing::new(0.5);
        feed(&mut f, &[1.0]);
        assert_eq!(f.predict(), Some(1.0)); // initialized to first value
        f.observe(0.0);
        assert_eq!(f.predict(), Some(0.5));
        f.observe(0.0);
        assert_eq!(f.predict(), Some(0.25));
    }

    #[test]
    fn exp_smoothing_bank_covers_gain_range() {
        let bank = ExpSmoothing::bank();
        assert!(bank.len() >= 5);
        assert!(bank.first().unwrap().gain < 0.1);
        assert!(bank.last().unwrap().gain > 0.8);
    }

    #[test]
    fn constant_series_predicted_exactly_by_all() {
        let mut fs: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingMean::new(4)),
            Box::new(SlidingMedian::new(4)),
            Box::new(TrimmedMean::new(4, 0.1)),
            Box::new(ExpSmoothing::new(0.3)),
        ];
        for f in fs.iter_mut() {
            feed(f.as_mut(), &[0.42; 20]);
            let p = f.predict().unwrap();
            assert!((p - 0.42).abs() < 1e-12, "{}: {p}", f.name());
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut f = SlidingMean::new(3);
        feed(&mut f, &[1.0, 2.0]);
        f.reset();
        assert_eq!(f.predict(), None);
        let mut e = ExpSmoothing::new(0.2);
        e.observe(1.0);
        e.reset();
        assert_eq!(e.predict(), None);
    }

    #[test]
    fn names_are_distinct_and_parameterized() {
        assert_eq!(SlidingMean::new(20).name(), "sw_mean(20)");
        assert_ne!(SlidingMean::new(5).name(), SlidingMean::new(10).name());
        assert_eq!(ExpSmoothing::new(0.5).name(), "exp_smooth(0.5)");
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn bad_gain_panics() {
        ExpSmoothing::new(0.0);
    }

    #[test]
    fn gaps_age_out_windows_but_keep_levels() {
        // Window predictors forget across a gap…
        let mut sw = SlidingMean::new(5);
        let mut med = SlidingMedian::new(5);
        let mut trim = TrimmedMean::new(5, 0.2);
        for f in [&mut sw as &mut dyn Forecaster, &mut med, &mut trim] {
            feed(f, &[0.9, 0.9, 0.9]);
            f.note_gap();
            assert_eq!(f.predict(), None, "{} bridged the gap", f.name());
            f.observe(0.2);
            let p = f.predict().unwrap();
            assert!((p - 0.2).abs() < 1e-12, "{}: {p}", f.name());
        }
        // …level predictors bridge it.
        let mut last = LastValue::new();
        let mut run = RunningMean::new();
        let mut exp = ExpSmoothing::new(0.3);
        for f in [&mut last as &mut dyn Forecaster, &mut run, &mut exp] {
            feed(f, &[0.6, 0.6]);
            f.note_gap();
            assert_eq!(f.predict(), Some(0.6), "{} lost its level", f.name());
        }
    }
}
