//! Equivalence of the online ARMA predictor with a naive reference.
//!
//! `Arma` shares the allocation-free refit machinery of `ArPredictor`
//! (ring-buffer window, scratch-buffer Levinson–Durbin) and adapts its
//! MA coefficients online. The reference implementation below uses plain
//! `Vec`s, a from-scratch textbook Levinson recursion, and explicit
//! residual lists — the arithmetic both sides must agree on, over fixed
//! streams and proptest-generated ones, with and without seeded gaps.

use nws_forecast::{Arma, Predictor};
use proptest::prelude::*;

// Constants mirrored from the optimized implementation.
const THETA_STEP: f64 = 0.05;
const THETA_EPS: f64 = 1e-6;
const POWER_DECAY: f64 = 0.99;
const THETA_CAP: f64 = 0.98;

// ---------------------------------------------------------------------------
// Reference implementation: plain Vec window, textbook Levinson, explicit
// residual list.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct NaiveArma {
    p: usize,
    q: usize,
    cap: usize,
    refit_every: usize,
    since_refit: usize,
    /// Last ≤ `cap` values since the last gap, oldest → newest.
    window: Vec<f64>,
    ar: Vec<f64>,
    theta: Vec<f64>,
    mean: f64,
    /// Innovations, most recent first, ≤ `q` entries.
    resid: Vec<f64>,
    power: f64,
}

/// Textbook Levinson–Durbin recursion, allocated fresh per call.
fn naive_levinson(autocov: &[f64], order: usize) -> Option<Vec<f64>> {
    if autocov.len() < order + 1 || autocov[0] <= 0.0 {
        return None;
    }
    let mut a = vec![0.0f64; order];
    let mut e = autocov[0];
    for k in 0..order {
        let mut acc = autocov[k + 1];
        for j in 0..k {
            acc -= a[j] * autocov[k - j];
        }
        if e <= 0.0 {
            return None;
        }
        let reflection = acc / e;
        if !reflection.is_finite() || reflection.abs() > 1.0 + 1e-9 {
            return None;
        }
        let prev = a.clone();
        a[k] = reflection;
        for j in 0..k {
            a[j] = prev[j] - reflection * prev[k - 1 - j];
        }
        e *= 1.0 - reflection * reflection;
    }
    Some(a)
}

impl NaiveArma {
    fn new(p: usize, q: usize, cap: usize, refit_every: usize) -> Self {
        Self {
            p,
            q,
            cap,
            refit_every,
            since_refit: 0,
            window: Vec::new(),
            ar: Vec::new(),
            theta: vec![0.0; q],
            mean: 0.0,
            resid: Vec::new(),
            power: 1.0,
        }
    }

    fn model_predict(&self) -> Option<f64> {
        if self.ar.is_empty() {
            return None;
        }
        let n = self.window.len();
        if n < self.p {
            return None;
        }
        let mut pred = self.mean;
        for (i, &a) in self.ar.iter().enumerate() {
            pred += a * (self.window[n - 1 - i] - self.mean);
        }
        for (j, &r) in self.resid.iter().enumerate() {
            pred += self.theta[j] * r;
        }
        Some(pred)
    }

    fn predict(&self) -> Option<f64> {
        self.model_predict().or_else(|| {
            if self.window.is_empty() {
                None
            } else {
                Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
            }
        })
    }

    fn refit(&mut self) {
        let n = self.window.len();
        if n < 4 * self.p {
            return;
        }
        let mean = self.window.iter().sum::<f64>() / n as f64;
        let mut autocov = vec![0.0f64; self.p + 1];
        for (k, c) in autocov.iter_mut().enumerate() {
            let mut acc = 0.0;
            for t in 0..n - k {
                acc += (self.window[t] - mean) * (self.window[t + k] - mean);
            }
            *c = acc / n as f64;
        }
        if let Some(a) = naive_levinson(&autocov, self.p) {
            self.ar = a;
            self.mean = mean;
        }
    }

    fn observe(&mut self, value: f64) {
        if let Some(pred) = self.model_predict() {
            let e = value - pred;
            let step = THETA_STEP * e / (THETA_EPS + self.power);
            for (j, &r) in self.resid.iter().enumerate() {
                self.theta[j] = (self.theta[j] + step * r).clamp(-THETA_CAP, THETA_CAP);
            }
            self.power = POWER_DECAY * self.power + (1.0 - POWER_DECAY) * e * e;
            self.resid.insert(0, e);
            self.resid.truncate(self.q);
        }
        self.window.push(value);
        if self.window.len() > self.cap {
            self.window.remove(0);
        }
        self.since_refit += 1;
        if self.since_refit >= self.refit_every && self.window.len() >= 4 * self.p {
            self.since_refit = 0;
            self.refit();
        }
    }

    fn note_gap(&mut self) {
        self.window.clear();
        self.resid.clear();
        self.since_refit = 0;
    }
}

// ---------------------------------------------------------------------------
// Deterministic value stream (xorshift64*), as in the other equivalence
// suites.
// ---------------------------------------------------------------------------

fn stream(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed.max(1);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        out.push((bits >> 11) as f64 / (1u64 << 53) as f64);
    }
    out
}

/// Gap mask: slot i is a gap when its hash draw falls under `rate_pct`%.
fn gap_at(seed: u64, i: usize, rate_pct: u64) -> bool {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15 ^ (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h % 100 < rate_pct
}

fn assert_equivalent(
    p: usize,
    q: usize,
    cap: usize,
    refit_every: usize,
    seed: u64,
    n: usize,
    gap_pct: u64,
) {
    let mut fast = Arma::new(p, q, cap, refit_every);
    let naive = &mut NaiveArma::new(p, q, cap, refit_every);
    for (i, v) in stream(seed, n).into_iter().enumerate() {
        if gap_pct > 0 && gap_at(seed, i, gap_pct) {
            fast.note_gap();
            naive.note_gap();
        } else {
            fast.observe(v);
            naive.observe(v);
        }
        match (fast.predict(), naive.predict()) {
            (None, None) => {}
            (Some(a), Some(b)) => assert!(
                (a - b).abs() < 1e-9,
                "step {i}: fast {a} vs naive {b} (p={p} q={q} cap={cap} refit={refit_every} seed={seed})"
            ),
            (a, b) => panic!("step {i}: availability diverged: fast {a:?} vs naive {b:?}"),
        }
    }
}

#[test]
fn fixed_streams_match() {
    assert_equivalent(1, 1, 40, 10, 42, 400, 0);
    assert_equivalent(2, 1, 64, 25, 7, 600, 0);
    assert_equivalent(3, 2, 120, 25, 1234, 800, 0);
}

#[test]
fn fixed_streams_match_under_gaps() {
    assert_equivalent(1, 1, 40, 10, 42, 400, 10);
    assert_equivalent(2, 2, 64, 20, 99, 600, 25);
    assert_equivalent(2, 1, 48, 5, 555, 500, 40);
}

proptest! {
    #[test]
    fn prop_arma_matches_naive_reference(
        seed in 1u64..1_000_000,
        p in 1usize..4,
        q in 1usize..3,
        extra in 0usize..80,
        refit_every in 1usize..30,
        n in 20usize..400,
    ) {
        let cap = 4 * p + extra;
        assert_equivalent(p, q, cap, refit_every, seed, n, 0);
    }

    #[test]
    fn prop_arma_matches_naive_reference_under_seeded_gaps(
        seed in 1u64..1_000_000,
        p in 1usize..4,
        q in 1usize..3,
        extra in 0usize..80,
        refit_every in 1usize..30,
        n in 20usize..400,
        gap_pct in 1u64..45,
    ) {
        let cap = 4 * p + extra;
        assert_equivalent(p, q, cap, refit_every, seed, n, gap_pct);
    }
}
