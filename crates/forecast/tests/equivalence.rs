//! Equivalence of the optimized forecaster hot paths with their naive
//! reference implementations.
//!
//! `AdaptiveWindowMean` replaced three O(window) suffix rescans per
//! observation with rolling sums, and `SlidingMedian` replaced a
//! copy-and-sort per prediction with an incrementally maintained sorted
//! window. Both rewrites must be behavior-preserving: the median is
//! exactly equal (same multiset, same middle), and the adaptive mean's
//! rolling sums may differ from a fresh rescan only by floating-point
//! rounding — verified here against reference implementations kept in
//! this file, over fixed streams and proptest-generated ones.

use nws_forecast::{AdaptiveWindowMean, Forecaster, SlidingMedian};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Reference implementations (the pre-optimization algorithms, verbatim in
// structure: rescan/re-sort on every call).
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct NaiveAdaptiveWindowMean {
    min_len: usize,
    max_len: usize,
    len: usize,
    window: Vec<f64>,
    err_current: f64,
    err_half: f64,
    err_double: f64,
    since_review: usize,
    review_every: usize,
}

impl NaiveAdaptiveWindowMean {
    fn new(min_len: usize, max_len: usize) -> Self {
        Self {
            min_len,
            max_len,
            len: min_len.max((min_len + max_len) / 4),
            window: Vec::new(),
            err_current: 0.0,
            err_half: 0.0,
            err_double: 0.0,
            since_review: 0,
            review_every: 8,
        }
    }

    fn suffix_mean(&self, len: usize) -> Option<f64> {
        let have = self.window.len();
        if have == 0 {
            return None;
        }
        let take = len.min(have);
        let sum: f64 = self.window[have - take..].iter().sum();
        Some(sum / take as f64)
    }

    fn observe(&mut self, value: f64) {
        const FADE: f64 = 0.9;
        let half = (self.len / 2).max(self.min_len);
        let double = (self.len * 2).min(self.max_len);
        if let Some(p) = self.suffix_mean(self.len) {
            self.err_current = FADE * self.err_current + (p - value).abs();
        }
        if let Some(p) = self.suffix_mean(half) {
            self.err_half = FADE * self.err_half + (p - value).abs();
        }
        if let Some(p) = self.suffix_mean(double) {
            self.err_double = FADE * self.err_double + (p - value).abs();
        }
        self.window.push(value);
        if self.window.len() > self.max_len {
            self.window.remove(0);
        }
        self.since_review += 1;
        if self.since_review >= self.review_every {
            self.since_review = 0;
            if self.err_half < self.err_current && self.err_half <= self.err_double {
                self.len = half;
            } else if self.err_double < self.err_current {
                self.len = double;
            }
            self.err_current = 0.0;
            self.err_half = 0.0;
            self.err_double = 0.0;
        }
    }

    fn predict(&self) -> Option<f64> {
        self.suffix_mean(self.len)
    }
}

#[derive(Debug)]
struct NaiveSlidingMedian {
    window: Vec<f64>,
    k: usize,
}

impl NaiveSlidingMedian {
    fn new(k: usize) -> Self {
        Self {
            window: Vec::new(),
            k,
        }
    }

    fn observe(&mut self, value: f64) {
        self.window.push(value);
        if self.window.len() > self.k {
            self.window.remove(0);
        }
    }

    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut v = self.window.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        let n = v.len();
        Some(if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        })
    }
}

// ---------------------------------------------------------------------------
// Deterministic streams
// ---------------------------------------------------------------------------

/// A reproducible pseudo-random availability stream in [0, 1].
fn stream(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed.max(1);
    (0..n)
        .map(|_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (bits >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

#[test]
fn adaptive_window_tracks_naive_reference() {
    for (min_len, max_len, seed) in [(2, 64, 7), (1, 5, 11), (4, 256, 13), (10, 10, 17)] {
        let mut fast = AdaptiveWindowMean::new(min_len, max_len);
        let mut naive = NaiveAdaptiveWindowMean::new(min_len, max_len);
        for (i, v) in stream(seed, 5000).into_iter().enumerate() {
            fast.observe(v);
            naive.observe(v);
            assert_eq!(
                fast.current_len(),
                naive.len,
                "window length diverged at step {i} ({min_len}-{max_len})"
            );
            match (fast.predict(), naive.predict()) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-9, "step {i}: rolling {a} vs rescan {b}")
                }
                (a, b) => assert_eq!(a, b, "step {i}"),
            }
        }
    }
}

#[test]
fn sliding_median_matches_naive_reference_exactly() {
    for (k, seed) in [(1, 3), (2, 5), (5, 7), (51, 9), (100, 11)] {
        let mut fast = SlidingMedian::new(k);
        let mut naive = NaiveSlidingMedian::new(k);
        for (i, v) in stream(seed, 3000).into_iter().enumerate() {
            fast.observe(v);
            naive.observe(v);
            assert_eq!(fast.predict(), naive.predict(), "k={k} step {i}");
        }
    }
}

#[test]
fn sliding_median_handles_duplicates_and_reset() {
    let mut fast = SlidingMedian::new(4);
    let mut naive = NaiveSlidingMedian::new(4);
    for v in [0.5, 0.5, 0.5, 0.1, 0.5, 0.9, 0.5, 0.5, 0.0, 1.0, 0.5] {
        fast.observe(v);
        naive.observe(v);
        assert_eq!(fast.predict(), naive.predict());
    }
    fast.reset();
    assert_eq!(fast.predict(), None);
    fast.observe(0.25);
    assert_eq!(fast.predict(), Some(0.25));
}

proptest! {
    #[test]
    fn prop_adaptive_forecast_identity(
        seed in 1u64..1_000_000,
        min_len in 1usize..8,
        extra in 0usize..120,
        n in 1usize..600,
    ) {
        let max_len = min_len + extra;
        let mut fast = AdaptiveWindowMean::new(min_len, max_len);
        let mut naive = NaiveAdaptiveWindowMean::new(min_len, max_len);
        for v in stream(seed, n) {
            fast.observe(v);
            naive.observe(v);
            prop_assert_eq!(fast.current_len(), naive.len);
            match (fast.predict(), naive.predict()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn prop_sliding_median_identity(
        seed in 1u64..1_000_000,
        k in 1usize..80,
        n in 1usize..500,
    ) {
        let mut fast = SlidingMedian::new(k);
        let mut naive = NaiveSlidingMedian::new(k);
        for v in stream(seed, n) {
            fast.observe(v);
            naive.observe(v);
            prop_assert_eq!(fast.predict(), naive.predict());
        }
    }
}
