//! The scheduling experiment: forecast-driven placement vs baselines.
//!
//! Protocol (per policy, over the six simulated UCSD hosts):
//!
//! 1. **Measurement phase** — each host is monitored by the NWS for a
//!    configurable span (hybrid sensor + probes, no test processes); an
//!    [`NwsForecaster`] is fed the hybrid measurement series and asked for
//!    a one-step-ahead availability forecast. The load-average policy
//!    instead keeps the *instantaneous* Eq. 1 reading at scheduling time.
//! 2. **Placement** — the policy assigns a bag of CPU-bound tasks to hosts
//!    (greedy LPT under the expansion-factor model for the informed
//!    policies).
//! 3. **Execution** — hosts are rebuilt from the same seeds (identical
//!    background-load realizations), fast-forwarded to the scheduling
//!    instant, and the assigned tasks run to completion. The reported
//!    makespan is the wall-clock time until the last task finishes.
//!
//! The qualitative expectation from the paper: the forecast-driven policy
//! beats uninformed placement outright, and beats raw load average wherever
//! load average misrepresents obtainable CPU (conundrum's `nice` load).

use crate::policy::{place, Placement, Policy};
use nws_core::monitor::{Monitor, MonitorConfig};
use nws_forecast::NwsForecaster;
use nws_runtime::parallel_map;
use nws_sensors::LoadAvgSensor;
use nws_sim::{Host, HostProfile, ProcessSpec, Seconds};
use nws_stats::Rng;

/// A bag of independent CPU-bound tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskBag {
    /// CPU-seconds of work per task.
    pub works: Vec<f64>,
}

impl TaskBag {
    /// Generates `n` tasks with work uniform in `[lo, hi)` CPU-seconds.
    pub fn generate(n: usize, lo: f64, hi: f64, rng: &mut Rng) -> Self {
        assert!(lo > 0.0 && lo < hi, "bad work range");
        Self {
            works: (0..n).map(|_| rng.range_f64(lo, hi)).collect(),
        }
    }

    /// Total CPU-seconds in the bag.
    pub fn total_work(&self) -> f64 {
        self.works.iter().sum()
    }
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Base seed (hosts, task generation, random policy).
    pub seed: u64,
    /// Number of tasks in the bag.
    pub n_tasks: usize,
    /// Task work range (CPU-seconds).
    pub work_range: (f64, f64),
    /// Length of the NWS measurement phase before scheduling.
    pub monitor_span: Seconds,
    /// Hard cap on execution-phase simulation time.
    pub max_execution: Seconds,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            seed: 424242,
            n_tasks: 36,
            work_range: (30.0, 240.0),
            monitor_span: 1800.0,
            max_execution: 24.0 * 3600.0,
        }
    }
}

impl SchedConfig {
    /// A reduced configuration for tests.
    pub fn quick() -> Self {
        Self {
            n_tasks: 12,
            work_range: (10.0, 60.0),
            monitor_span: 900.0,
            max_execution: 2.0 * 3600.0,
            ..Self::default()
        }
    }
}

/// The result of running one policy.
#[derive(Debug, Clone)]
pub struct SchedulingOutcome {
    /// The policy.
    pub policy: Policy,
    /// Observed makespan (seconds of simulated wall-clock).
    pub makespan: Seconds,
    /// The policy's own predicted makespan (0 for uninformed policies).
    pub predicted_makespan: Seconds,
    /// Tasks assigned per host, in UCSD host order.
    pub tasks_per_host: Vec<usize>,
    /// The availability estimates the policy used (1.0 for uninformed).
    pub availabilities: Vec<f64>,
}

fn per_host_seed(base: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ base
}

/// Runs the measurement phase on every host and returns
/// `(hybrid_forecasts, load_forecasts, instantaneous_load_availabilities)`.
fn gather_estimates(cfg: &SchedConfig) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let monitor = Monitor::new(MonitorConfig {
        duration: cfg.monitor_span,
        warmup: 600.0,
        test_period: None,
        ..MonitorConfig::default()
    });
    let forecast_of = |values: &[f64]| {
        let mut nws = NwsForecaster::nws_default();
        let mut forecast = 1.0;
        for &v in values {
            if let Some(f) = nws.update(v) {
                forecast = f.value;
            }
        }
        forecast.clamp(0.0, 1.0)
    };
    // Each host's measurement phase is seed-isolated; fan out and unzip in
    // host order.
    let rows = parallel_map(HostProfile::all().to_vec(), |p| {
        let mut host = p.build(per_host_seed(cfg.seed, p.name()));
        let out = monitor.run(&mut host);
        (
            forecast_of(out.series.hybrid.values()),
            forecast_of(out.series.load.values()),
            LoadAvgSensor::new().measure(&host),
        )
    });
    let mut hybrid_fc = Vec::with_capacity(rows.len());
    let mut load_fc = Vec::with_capacity(rows.len());
    let mut loads = Vec::with_capacity(rows.len());
    for (h, l, inst) in rows {
        hybrid_fc.push(h);
        load_fc.push(l);
        loads.push(inst);
    }
    (hybrid_fc, load_fc, loads)
}

/// Executes a placement against freshly rebuilt hosts and returns the
/// observed makespan.
fn execute_placement(cfg: &SchedConfig, bag: &TaskBag, placement: &Placement) -> Seconds {
    // Hosts execute their task shares independently; the makespan is a
    // max-reduction over per-host completion times, so order is irrelevant
    // and the per-host simulations fan out across worker threads.
    let jobs: Vec<(usize, HostProfile)> = HostProfile::all().iter().copied().enumerate().collect();
    let completions = parallel_map(jobs, |(h, p)| {
        let mut host: Host = p.build(per_host_seed(cfg.seed, p.name()));
        // Fast-forward to the scheduling instant (warmup + measurement).
        host.advance_to(600.0 + cfg.monitor_span);
        let start = host.now();
        let pids: Vec<_> = bag
            .works
            .iter()
            .zip(&placement.assignment)
            .filter(|(_, &a)| a == h)
            .map(|(&w, _)| host.spawn(ProcessSpec::cpu_bound("grid-task").with_cpu_limit(w)))
            .collect();
        if pids.is_empty() {
            return 0.0;
        }
        let deadline = start + cfg.max_execution;
        while pids.iter().any(|&pid| host.kernel().is_alive(pid)) && host.now() < deadline {
            host.advance(1.0);
        }
        host.now() - start
    });
    completions.into_iter().fold(0.0, f64::max)
}

/// Runs the full experiment: every policy over the same task bag and the
/// same host realizations.
pub fn run_scheduling_experiment(cfg: &SchedConfig) -> Vec<SchedulingOutcome> {
    let mut rng = Rng::new(cfg.seed ^ 0x5CED);
    let bag = TaskBag::generate(cfg.n_tasks, cfg.work_range.0, cfg.work_range.1, &mut rng);
    let (hybrid_fc, load_fc, loads) = gather_estimates(cfg);
    let n_hosts = HostProfile::all().len();
    Policy::all()
        .iter()
        .map(|&policy| {
            let availabilities: Vec<f64> = match policy {
                Policy::NwsForecast => hybrid_fc.clone(),
                Policy::NwsLoadForecast => load_fc.clone(),
                Policy::LoadAverage => loads.clone(),
                Policy::RoundRobin | Policy::Random => vec![1.0; n_hosts],
            };
            let mut policy_rng = Rng::new(cfg.seed ^ 0xD1CE);
            let placement = place(policy, &bag.works, &availabilities, &mut policy_rng);
            let makespan = execute_placement(cfg, &bag, &placement);
            let mut tasks_per_host = vec![0usize; n_hosts];
            for &a in &placement.assignment {
                tasks_per_host[a] += 1;
            }
            SchedulingOutcome {
                policy,
                makespan,
                predicted_makespan: placement.predicted_makespan,
                tasks_per_host,
                availabilities,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_bag_generation() {
        let mut rng = Rng::new(9);
        let bag = TaskBag::generate(50, 10.0, 20.0, &mut rng);
        assert_eq!(bag.works.len(), 50);
        assert!(bag.works.iter().all(|&w| (10.0..20.0).contains(&w)));
        assert!(bag.total_work() > 500.0 && bag.total_work() < 1000.0);
    }

    #[test]
    #[should_panic(expected = "bad work range")]
    fn bad_range_panics() {
        TaskBag::generate(1, 5.0, 5.0, &mut Rng::new(1));
    }

    #[test]
    fn experiment_runs_all_policies() {
        let outcomes = run_scheduling_experiment(&SchedConfig::quick());
        assert_eq!(outcomes.len(), 5);
        for o in &outcomes {
            assert!(o.makespan > 0.0, "{}: zero makespan", o.policy.name());
            assert_eq!(o.tasks_per_host.iter().sum::<usize>(), 12);
        }
    }

    #[test]
    fn forecast_policy_beats_uninformed_baselines() {
        let outcomes = run_scheduling_experiment(&SchedConfig::quick());
        let get = |p: Policy| {
            outcomes
                .iter()
                .find(|o| o.policy == p)
                .expect("policy present")
                .makespan
        };
        let nws = get(Policy::NwsForecast);
        let rr = get(Policy::RoundRobin);
        let rand = get(Policy::Random);
        assert!(
            nws <= rr * 1.05,
            "nws {nws} should not lose to round-robin {rr}"
        );
        assert!(nws < rand * 1.05, "nws {nws} vs random {rand}");
    }

    #[test]
    fn forecast_sees_conundrums_true_availability() {
        // The hybrid-based forecast should rate conundrum (index 2) much
        // higher than load-average-based estimates do.
        let cfg = SchedConfig::quick();
        let (hybrid_fc, load_fc, _loads) = gather_estimates(&cfg);
        assert!(
            hybrid_fc[2] > load_fc[2] + 0.2,
            "conundrum: hybrid {} vs load {}",
            hybrid_fc[2],
            load_fc[2]
        );
    }

    #[test]
    fn deterministic() {
        let a = run_scheduling_experiment(&SchedConfig::quick());
        let b = run_scheduling_experiment(&SchedConfig::quick());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.makespan, y.makespan);
            assert_eq!(x.tasks_per_host, y.tasks_per_host);
        }
    }
}
