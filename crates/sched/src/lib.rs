//! Dynamic application scheduling on forecasted CPU availability.
//!
//! The paper's motivation (Sections 1 and 4): an application scheduler on a
//! computational grid "must make a prediction of what performance will be
//! available from each" shared resource; availability percentages are used
//! as **expansion factors** to estimate process execution times, and the
//! paper cites application-level scheduling work (\[2\], \[24\]) where better
//! predictions produced >100 % performance gains.
//!
//! This crate closes that loop over the simulated UCSD hosts:
//!
//! - [`expansion`] — the expansion-factor model: a task needing `w` seconds
//!   of CPU on an unloaded machine takes `w / availability` seconds when
//!   only an `availability` fraction of time slices is obtainable.
//! - [`policy`] — task-placement policies: NWS-forecast-driven, raw
//!   load-average-driven, round-robin, and random.
//! - [`experiment`] — a bag-of-tasks scheduling experiment that executes
//!   the chosen placements on live simulated hosts and compares makespans,
//!   reproducing the qualitative claim that forecast-driven scheduling
//!   beats static and naive-dynamic policies.

pub mod data_aware;
pub mod expansion;
pub mod experiment;
pub mod policy;
pub mod workqueue;

pub use data_aware::{run_data_sched_experiment, DataPolicy, DataSchedConfig, DataTask};
pub use expansion::{expansion_factor, predicted_runtime};
pub use experiment::{run_scheduling_experiment, SchedulingOutcome, TaskBag};
pub use policy::{Placement, Policy};
pub use workqueue::{compare_static_vs_dynamic, run_workqueue, QueueOrder, WorkQueueOutcome};
