//! Task-placement policies.
//!
//! Each policy assigns a bag of CPU-bound tasks to hosts given whatever
//! information it uses: NWS forecasts (the paper's proposal), instantaneous
//! load-average availability (what Prophet/Winner/MARS-style schedulers
//! used, per Section 2), or nothing at all (round-robin / random
//! baselines).
//!
//! Placement is greedy longest-processing-time (LPT): tasks are considered
//! in decreasing work order and each goes to the host whose *predicted
//! completion time* (sum of predicted runtimes of tasks already assigned
//! there, plus this task) is smallest. For the uninformed policies the
//! predicted availability is 1 everywhere, which degrades LPT to
//! load-balancing by task count/work.

use crate::expansion::predicted_runtime;
use nws_stats::Rng;

/// A task-placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Place using per-host NWS forecasts of the *hybrid* sensor series
    /// (the paper's proposal; inherits the hybrid's kongo overestimate).
    NwsForecast,
    /// Place using per-host NWS forecasts of the *load-average* series.
    NwsLoadForecast,
    /// Place using the instantaneous Eq. 1 load-average availability.
    LoadAverage,
    /// Ignore host state; deal tasks out cyclically.
    RoundRobin,
    /// Ignore host state; place uniformly at random.
    Random,
}

impl Policy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::NwsForecast => "nws-hybrid-fc",
            Policy::NwsLoadForecast => "nws-load-fc",
            Policy::LoadAverage => "load-average",
            Policy::RoundRobin => "round-robin",
            Policy::Random => "random",
        }
    }

    /// All policies, in report order.
    pub fn all() -> [Policy; 5] {
        [
            Policy::NwsForecast,
            Policy::NwsLoadForecast,
            Policy::LoadAverage,
            Policy::RoundRobin,
            Policy::Random,
        ]
    }
}

/// A placement: `assignment[i]` is the host index for task `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Host index per task.
    pub assignment: Vec<usize>,
    /// The predicted makespan under the availabilities the policy used
    /// (meaningless for the uninformed policies).
    pub predicted_makespan: f64,
}

/// Computes a placement of `tasks` (CPU-seconds each) onto hosts with the
/// given predicted availabilities.
///
/// `availabilities` must be non-empty; tasks may be empty (empty
/// placement).
pub fn place(policy: Policy, tasks: &[f64], availabilities: &[f64], rng: &mut Rng) -> Placement {
    assert!(!availabilities.is_empty(), "need at least one host");
    let n_hosts = availabilities.len();
    let mut assignment = vec![0usize; tasks.len()];
    match policy {
        Policy::RoundRobin => {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = i % n_hosts;
            }
        }
        Policy::Random => {
            for slot in assignment.iter_mut() {
                *slot = rng.below(n_hosts as u64) as usize;
            }
        }
        Policy::NwsForecast | Policy::NwsLoadForecast | Policy::LoadAverage => {
            // Greedy LPT under the expansion-factor model.
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            order.sort_by(|&a, &b| tasks[b].total_cmp(&tasks[a]));
            let mut host_finish = vec![0.0f64; n_hosts];
            for &task in &order {
                let (best, _) = host_finish
                    .iter()
                    .enumerate()
                    .map(|(h, &f)| (h, f + predicted_runtime(tasks[task], availabilities[h])))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("at least one host");
                host_finish[best] += predicted_runtime(tasks[task], availabilities[best]);
                assignment[task] = best;
            }
        }
    }
    // Predicted makespan under the supplied availabilities.
    let mut host_finish = vec![0.0f64; n_hosts];
    for (i, &h) in assignment.iter().enumerate() {
        host_finish[h] += predicted_runtime(tasks[i], availabilities[h]);
    }
    let predicted_makespan = host_finish.iter().cloned().fold(0.0, f64::max);
    Placement {
        assignment,
        predicted_makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut rng = Rng::new(1);
        let p = place(Policy::RoundRobin, &[1.0; 5], &[1.0, 1.0], &mut rng);
        assert_eq!(p.assignment, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn random_is_in_range_and_seeded() {
        let mut rng = Rng::new(2);
        let p1 = place(Policy::Random, &[1.0; 20], &[1.0; 3], &mut rng);
        assert!(p1.assignment.iter().all(|&h| h < 3));
        let mut rng = Rng::new(2);
        let p2 = place(Policy::Random, &[1.0; 20], &[1.0; 3], &mut rng);
        assert_eq!(p1, p2);
    }

    #[test]
    fn forecast_policy_prefers_available_hosts() {
        let mut rng = Rng::new(3);
        // Host 0 nearly saturated, host 1 free: everything should flow to 1
        // until its queue grows long enough that host 0 is worth using.
        let p = place(
            Policy::NwsForecast,
            &[10.0, 10.0, 10.0, 10.0],
            &[0.1, 1.0],
            &mut rng,
        );
        let to_free = p.assignment.iter().filter(|&&h| h == 1).count();
        assert!(to_free >= 3, "assignment = {:?}", p.assignment);
    }

    #[test]
    fn lpt_balances_equal_hosts() {
        let mut rng = Rng::new(4);
        let p = place(
            Policy::NwsForecast,
            &[5.0, 4.0, 3.0, 3.0, 3.0],
            &[1.0, 1.0],
            &mut rng,
        );
        // Greedy LPT places 5 | 4, 3 | 3 | 3 → loads 8 and 10 (the optimum
        // is 9/9; LPT's 10 is within its 4/3 guarantee).
        let load0: f64 = p
            .assignment
            .iter()
            .zip(&[5.0, 4.0, 3.0, 3.0, 3.0])
            .filter(|(&h, _)| h == 0)
            .map(|(_, &w)| w)
            .sum();
        assert!((load0 - 8.0).abs() < 1e-9 || (load0 - 10.0).abs() < 1e-9);
        assert!((p.predicted_makespan - 10.0).abs() < 1e-9);
        // LPT bound: makespan <= 4/3 · optimum.
        assert!(p.predicted_makespan <= 9.0 * 4.0 / 3.0 + 1e-9);
    }

    #[test]
    fn predicted_makespan_accounts_for_expansion() {
        let mut rng = Rng::new(5);
        let p = place(Policy::NwsForecast, &[10.0], &[0.5], &mut rng);
        assert!((p.predicted_makespan - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tasks_empty_placement() {
        let mut rng = Rng::new(6);
        let p = place(Policy::NwsForecast, &[], &[1.0], &mut rng);
        assert!(p.assignment.is_empty());
        assert_eq!(p.predicted_makespan, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn no_hosts_panics() {
        let mut rng = Rng::new(7);
        place(Policy::Random, &[1.0], &[], &mut rng);
    }

    #[test]
    fn policy_names_unique() {
        let names: Vec<&str> = Policy::all().iter().map(|p| p.name()).collect();
        let mut d = names.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), names.len());
    }
}
