//! The expansion-factor execution-time model.
//!
//! "Typically, the availability percentage is used as an *expansion factor*
//! to determine the potential execution time of a process. If only 50 % of
//! the time-slices are available, for example, a process is expected to
//! take twice as long to execute as it would if the CPU were completely
//! unloaded" (Section 2).

/// The expansion factor for a given CPU availability: `1 / availability`.
///
/// Availability is clamped to a small positive floor so that a fully
/// saturated host yields a large-but-finite slowdown rather than a
/// division by zero.
pub fn expansion_factor(availability: f64) -> f64 {
    const FLOOR: f64 = 1e-3;
    1.0 / availability.clamp(FLOOR, 1.0)
}

/// Predicted wall-clock runtime of a task needing `cpu_seconds` of CPU on a
/// host with the given predicted availability.
///
/// # Examples
///
/// ```
/// use nws_sched::predicted_runtime;
///
/// // "If only 50% of the time-slices are available, a process is
/// // expected to take twice as long to execute."
/// assert_eq!(predicted_runtime(60.0, 0.5), 120.0);
/// ```
pub fn predicted_runtime(cpu_seconds: f64, availability: f64) -> f64 {
    assert!(cpu_seconds >= 0.0, "work must be non-negative");
    cpu_seconds * expansion_factor(availability)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_availability_doubles_runtime() {
        assert_eq!(expansion_factor(0.5), 2.0);
        assert_eq!(predicted_runtime(10.0, 0.5), 20.0);
    }

    #[test]
    fn full_availability_is_identity() {
        assert_eq!(expansion_factor(1.0), 1.0);
        assert_eq!(predicted_runtime(7.0, 1.0), 7.0);
    }

    #[test]
    fn degenerate_availability_is_floored() {
        assert!(expansion_factor(0.0).is_finite());
        assert!(expansion_factor(-1.0).is_finite());
        assert!(expansion_factor(2.0) >= 1.0);
        assert_eq!(expansion_factor(2.0), 1.0);
    }

    #[test]
    fn monotone_in_availability() {
        let mut prev = f64::INFINITY;
        for a in [0.1, 0.2, 0.5, 0.8, 1.0] {
            let e = expansion_factor(a);
            assert!(e < prev);
            prev = e;
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_work_panics() {
        predicted_runtime(-1.0, 0.5);
    }
}
