//! Data-aware scheduling: placement that weighs *transfer* time as well as
//! compute time.
//!
//! The application-level scheduling work the paper motivates (AppLeS — its
//! references \[2\] and \[24\], a gene-sequence-library comparison) placed work
//! by predicting **both** halves of each task's completion time:
//!
//! `completion(task, host) = input_bytes / bandwidth(host) + cpu_seconds / availability(host)`
//!
//! using NWS forecasts for the bandwidth and availability terms. This
//! module reproduces that formulation end to end: forecast-driven
//! placement, then execution against live simulated hosts *and* links,
//! with a compute-only baseline that ignores the network (the classic
//! mistake on a grid where the fastest CPU sits behind the slowest path).

use crate::expansion::predicted_runtime;
use nws_net::{Link, LinkConfig};
use nws_sim::{Host, HostProfile, ProcessSpec, Seconds};
use nws_stats::Rng;

/// A task with an input data set that must be staged to its host before
/// compute begins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataTask {
    /// CPU demand (seconds on an unloaded host).
    pub cpu_seconds: f64,
    /// Input payload staged over the host's link (bytes).
    pub input_bytes: f64,
}

/// One grid site: a host profile behind a network path.
#[derive(Debug, Clone)]
pub struct Site {
    /// Host name (one of the UCSD profiles).
    pub profile: HostProfile,
    /// The path from the data repository to this site.
    pub link: LinkConfig,
}

/// The experiment's placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPolicy {
    /// Predict transfer + compute with forecasts (the AppLeS way).
    TransferAware,
    /// Predict compute only; ignore the network.
    ComputeOnly,
    /// Deal tasks out cyclically.
    RoundRobin,
}

impl DataPolicy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DataPolicy::TransferAware => "transfer-aware",
            DataPolicy::ComputeOnly => "compute-only",
            DataPolicy::RoundRobin => "round-robin",
        }
    }

    /// All policies, in report order.
    pub fn all() -> [DataPolicy; 3] {
        [
            DataPolicy::TransferAware,
            DataPolicy::ComputeOnly,
            DataPolicy::RoundRobin,
        ]
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct DataSchedConfig {
    /// Base seed.
    pub seed: u64,
    /// The sites (host + path).
    pub sites: Vec<Site>,
    /// The task bag.
    pub tasks: Vec<DataTask>,
    /// Warmup before estimates are taken / execution starts.
    pub warmup: Seconds,
    /// Hard cap on execution simulation.
    pub max_execution: Seconds,
}

impl DataSchedConfig {
    /// The default scenario: a fast host behind a slow WAN path versus
    /// slower hosts on good paths — the configuration where network-blind
    /// placement fails. Tasks move 128–256 MB each (gene-library-sized
    /// inputs, as in the paper's reference \[24\]) and need 40–120 CPU-s, so
    /// staging dominates on the WAN path.
    pub fn demo(seed: u64) -> Self {
        let mut rng = Rng::new(seed ^ 0xDA7A);
        let tasks = (0..24)
            .map(|_| DataTask {
                cpu_seconds: rng.range_f64(40.0, 120.0),
                input_bytes: rng.range_f64(1.28e8, 2.56e8),
            })
            .collect();
        Self {
            seed,
            sites: vec![
                // gremlin: nearly idle CPU but behind the congested WAN.
                Site {
                    profile: HostProfile::Gremlin,
                    link: LinkConfig::wan_10mbit(),
                },
                // thing1: moderately loaded, on the LAN.
                Site {
                    profile: HostProfile::Thing1,
                    link: LinkConfig::lan_100mbit(),
                },
                // thing2: busy, on the LAN.
                Site {
                    profile: HostProfile::Thing2,
                    link: LinkConfig::lan_100mbit(),
                },
            ],
            tasks,
            warmup: 1800.0,
            max_execution: 24.0 * 3600.0,
        }
    }
}

/// Outcome of one policy run.
#[derive(Debug, Clone)]
pub struct DataSchedOutcome {
    /// The policy.
    pub policy: DataPolicy,
    /// Observed makespan (seconds).
    pub makespan: Seconds,
    /// Tasks per site.
    pub tasks_per_site: Vec<usize>,
    /// The per-site `(availability, bandwidth)` estimates used
    /// (1.0/capacity for the uninformed policy).
    pub estimates: Vec<(f64, f64)>,
}

fn site_seed(base: u64, idx: usize, what: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in what.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ base ^ (idx as u64).wrapping_mul(0x9E37_79B9)
}

/// Measures availability (mean of recent Eq. 1 readings) and achievable
/// bandwidth (mean of probe transfers) per site during a warmup window.
fn gather_estimates(cfg: &DataSchedConfig) -> Vec<(f64, f64)> {
    cfg.sites
        .iter()
        .enumerate()
        .map(|(i, site)| {
            let mut host = site.profile.build(site_seed(cfg.seed, i, "host"));
            host.advance(cfg.warmup);
            let mut sensor = nws_sensors::LoadAvgSensor::new();
            let mut avail = 0.0;
            for _ in 0..30 {
                host.advance(10.0);
                avail += sensor.measure(&host);
            }
            avail /= 30.0;
            let mut link = Link::new("path", site.link.clone(), site_seed(cfg.seed, i, "link"));
            link.advance(cfg.warmup.min(600.0));
            let mut bw_sensor = nws_net::BandwidthSensor::new(1.0e6);
            let mut bw = 0.0;
            for _ in 0..5 {
                bw += bw_sensor.measure(&mut link);
                link.advance(30.0);
            }
            (avail, bw / 5.0)
        })
        .collect()
}

/// Greedy minimum-completion-time placement under the given estimates.
fn place(policy: DataPolicy, tasks: &[DataTask], estimates: &[(f64, f64)]) -> Vec<usize> {
    let n_sites = estimates.len();
    let mut assignment = vec![0usize; tasks.len()];
    match policy {
        DataPolicy::RoundRobin => {
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = i % n_sites;
            }
        }
        DataPolicy::TransferAware | DataPolicy::ComputeOnly => {
            // LPT by predicted total demand.
            let cost = |t: &DataTask, s: usize| -> f64 {
                let (avail, bw) = estimates[s];
                let compute = predicted_runtime(t.cpu_seconds, avail);
                match policy {
                    DataPolicy::TransferAware => compute + t.input_bytes / bw.max(1.0),
                    _ => compute,
                }
            };
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            order.sort_by(|&a, &b| tasks[b].cpu_seconds.total_cmp(&tasks[a].cpu_seconds));
            let mut finish = vec![0.0f64; n_sites];
            for &t in &order {
                let (best, best_finish) = (0..n_sites)
                    .map(|s| (s, finish[s] + cost(&tasks[t], s)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("at least one site");
                finish[best] = best_finish;
                assignment[t] = best;
            }
        }
    }
    assignment
}

/// Executes a placement: per site, inputs stage serially over the link and
/// tasks compute (in staging order) on the live host. Returns the
/// makespan.
fn execute(cfg: &DataSchedConfig, assignment: &[usize]) -> Seconds {
    let mut makespan: Seconds = 0.0;
    for (s, site) in cfg.sites.iter().enumerate() {
        let mut host: Host = site.profile.build(site_seed(cfg.seed, s, "host"));
        host.advance(cfg.warmup);
        let mut link = Link::new("path", site.link.clone(), site_seed(cfg.seed, s, "link"));
        link.advance(cfg.warmup.min(600.0));
        let t0 = host.now();
        // Stage all inputs serially; remember each task's data-ready time.
        let mut ready: Vec<(Seconds, f64)> = Vec::new(); // (ready time, cpu work)
        let mut link_clock = 0.0;
        for (t, task) in cfg.tasks.iter().enumerate() {
            if assignment[t] == s {
                link_clock += link.transfer(task.input_bytes);
                ready.push((link_clock, task.cpu_seconds));
            }
        }
        if ready.is_empty() {
            continue;
        }
        // Compute in staging order on the live host.
        let mut site_finish: Seconds = 0.0;
        for (ready_at, cpu) in ready {
            let start = host.now().max(t0 + ready_at);
            host.advance_to(start);
            let pid = host.spawn(ProcessSpec::cpu_bound("data-task").with_cpu_limit(cpu));
            let deadline = host.now() + cfg.max_execution;
            while host.kernel().is_alive(pid) && host.now() < deadline {
                host.advance(1.0);
            }
            site_finish = host.now() - t0;
        }
        makespan = makespan.max(site_finish);
    }
    makespan
}

/// Runs the data-aware scheduling experiment over every policy.
pub fn run_data_sched_experiment(cfg: &DataSchedConfig) -> Vec<DataSchedOutcome> {
    assert!(!cfg.sites.is_empty(), "need at least one site");
    assert!(!cfg.tasks.is_empty(), "need at least one task");
    let estimates = gather_estimates(cfg);
    DataPolicy::all()
        .iter()
        .map(|&policy| {
            let used: Vec<(f64, f64)> = match policy {
                DataPolicy::RoundRobin => {
                    cfg.sites.iter().map(|s| (1.0, s.link.capacity)).collect()
                }
                _ => estimates.clone(),
            };
            let assignment = place(policy, &cfg.tasks, &used);
            let makespan = execute(cfg, &assignment);
            let mut tasks_per_site = vec![0usize; cfg.sites.len()];
            for &a in &assignment {
                tasks_per_site[a] += 1;
            }
            DataSchedOutcome {
                policy,
                makespan,
                tasks_per_site,
                estimates: used,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> DataSchedConfig {
        let mut cfg = DataSchedConfig::demo(11);
        cfg.tasks.truncate(9);
        cfg.warmup = 600.0;
        cfg
    }

    #[test]
    fn all_policies_run_and_assign_everything() {
        let outcomes = run_data_sched_experiment(&quick_cfg());
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert!(o.makespan > 0.0);
            assert_eq!(o.tasks_per_site.iter().sum::<usize>(), 9);
        }
    }

    #[test]
    fn transfer_aware_beats_compute_only() {
        // The demo scenario is built so the idle CPU hides behind the slow
        // path: ignoring the network must cost real makespan.
        let outcomes = run_data_sched_experiment(&quick_cfg());
        let get = |p: DataPolicy| {
            outcomes
                .iter()
                .find(|o| o.policy == p)
                .expect("policy present")
                .makespan
        };
        let aware = get(DataPolicy::TransferAware);
        let blind = get(DataPolicy::ComputeOnly);
        assert!(
            aware < blind * 0.9,
            "transfer-aware {aware} should clearly beat compute-only {blind}"
        );
    }

    #[test]
    fn compute_only_overloads_the_remote_fast_host() {
        let outcomes = run_data_sched_experiment(&quick_cfg());
        let blind = outcomes
            .iter()
            .find(|o| o.policy == DataPolicy::ComputeOnly)
            .expect("policy present");
        let aware = outcomes
            .iter()
            .find(|o| o.policy == DataPolicy::TransferAware)
            .expect("policy present");
        // Site 0 is the idle-but-remote host: compute-only sends more
        // work there than the transfer-aware policy does.
        assert!(
            blind.tasks_per_site[0] > aware.tasks_per_site[0],
            "blind {:?} vs aware {:?}",
            blind.tasks_per_site,
            aware.tasks_per_site
        );
    }

    #[test]
    fn deterministic() {
        let a = run_data_sched_experiment(&quick_cfg());
        let b = run_data_sched_experiment(&quick_cfg());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.makespan, y.makespan);
            assert_eq!(x.tasks_per_site, y.tasks_per_site);
        }
    }
}
