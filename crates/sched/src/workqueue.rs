//! Dynamic self-scheduling: a pull-based work queue over live hosts.
//!
//! Static placement commits to forecasts once; the classic alternative
//! (used alongside static strategies in the AppLeS work the paper
//! motivates) is **self-scheduling**: tasks sit in a central queue and
//! each host pulls a new task the moment it finishes its previous one.
//! Slow or suddenly-loaded hosts automatically take fewer tasks, at the
//! cost of losing the lookahead that forecast-driven placement exploits
//! (a long task can still land on a slow host near the end and stretch
//! the makespan).
//!
//! [`run_workqueue`] executes a task bag this way over the simulated
//! hosts, advancing all of them in lockstep; [`compare_static_vs_dynamic`]
//! pits it against the static forecast placement of
//! [`crate::experiment`] on identical workload realizations.

use crate::experiment::{SchedConfig, TaskBag};
use crate::policy::{place, Policy};
use nws_core::monitor::{Monitor, MonitorConfig};
use nws_forecast::NwsForecaster;
use nws_sim::{Host, HostProfile, Pid, ProcessSpec, Seconds};
use nws_stats::Rng;

fn per_host_seed(base: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ base
}

/// How tasks are ordered in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOrder {
    /// Longest task first (the standard self-scheduling heuristic: big
    /// tasks early so they cannot straggle at the end).
    LongestFirst,
    /// Submission order.
    Fifo,
}

/// Result of a work-queue run.
#[derive(Debug, Clone)]
pub struct WorkQueueOutcome {
    /// Observed makespan (seconds).
    pub makespan: Seconds,
    /// Tasks completed per host, in UCSD host order.
    pub tasks_per_host: Vec<usize>,
}

/// Executes `bag` over the six UCSD hosts with pull-based self-scheduling.
///
/// All hosts advance in one-second lockstep from the same warmed-up state
/// used by the static experiment, so outcomes are directly comparable.
pub fn run_workqueue(cfg: &SchedConfig, bag: &TaskBag, order: QueueOrder) -> WorkQueueOutcome {
    let profiles = HostProfile::all();
    let mut hosts: Vec<Host> = profiles
        .iter()
        .map(|p| {
            let mut h = p.build(per_host_seed(cfg.seed, p.name()));
            h.advance_to(600.0 + cfg.monitor_span);
            h
        })
        .collect();
    let start: Vec<Seconds> = hosts.iter().map(Host::now).collect();

    // The queue, longest-first or FIFO.
    let mut queue: Vec<f64> = bag.works.clone();
    if order == QueueOrder::LongestFirst {
        queue.sort_by(|a, b| a.total_cmp(b)); // pop() takes the back
    } else {
        queue.reverse(); // pop() then yields submission order
    }

    let mut running: Vec<Option<Pid>> = vec![None; hosts.len()];
    let mut done_per_host = vec![0usize; hosts.len()];
    let mut makespan: Seconds = 0.0;
    let deadline = cfg.max_execution;
    loop {
        let mut all_idle = true;
        for (i, host) in hosts.iter_mut().enumerate() {
            // Reap a finished task.
            if let Some(pid) = running[i] {
                if !host.kernel().is_alive(pid) {
                    running[i] = None;
                    done_per_host[i] += 1;
                    makespan = makespan.max(host.now() - start[i]);
                }
            }
            // Pull the next task.
            if running[i].is_none() {
                if let Some(work) = queue.pop() {
                    let pid = host.spawn(ProcessSpec::cpu_bound("wq-task").with_cpu_limit(work));
                    running[i] = Some(pid);
                }
            }
            if running[i].is_some() {
                all_idle = false;
            }
        }
        if all_idle && queue.is_empty() {
            break;
        }
        if hosts[0].now() - start[0] > deadline {
            break;
        }
        for host in hosts.iter_mut() {
            host.advance(1.0);
        }
    }
    WorkQueueOutcome {
        makespan,
        tasks_per_host: done_per_host,
    }
}

/// Static forecast placement vs dynamic self-scheduling on one bag.
#[derive(Debug, Clone)]
pub struct StaticVsDynamic {
    /// Makespan of static hybrid-forecast LPT placement.
    pub static_makespan: Seconds,
    /// Makespan of the longest-first work queue.
    pub dynamic_makespan: Seconds,
    /// Dynamic tasks per host.
    pub dynamic_tasks_per_host: Vec<usize>,
}

/// Runs both strategies over identical realizations.
pub fn compare_static_vs_dynamic(cfg: &SchedConfig) -> StaticVsDynamic {
    let mut rng = Rng::new(cfg.seed ^ 0x5CED);
    let bag = TaskBag::generate(cfg.n_tasks, cfg.work_range.0, cfg.work_range.1, &mut rng);

    // Static: hybrid-forecast LPT, exactly as in the main experiment.
    let monitor = Monitor::new(MonitorConfig {
        duration: cfg.monitor_span,
        warmup: 600.0,
        test_period: None,
        ..MonitorConfig::default()
    });
    let forecasts: Vec<f64> = HostProfile::all()
        .iter()
        .map(|p| {
            let mut host = p.build(per_host_seed(cfg.seed, p.name()));
            let out = monitor.run(&mut host);
            let mut nws = NwsForecaster::nws_default();
            let mut f = 1.0;
            for &v in out.series.hybrid.values() {
                if let Some(fc) = nws.update(v) {
                    f = fc.value;
                }
            }
            f.clamp(0.0, 1.0)
        })
        .collect();
    let mut policy_rng = Rng::new(cfg.seed ^ 0xD1CE);
    let placement = place(Policy::NwsForecast, &bag.works, &forecasts, &mut policy_rng);
    let static_makespan = execute_static(cfg, &bag, &placement.assignment);

    let dynamic = run_workqueue(cfg, &bag, QueueOrder::LongestFirst);
    StaticVsDynamic {
        static_makespan,
        dynamic_makespan: dynamic.makespan,
        dynamic_tasks_per_host: dynamic.tasks_per_host,
    }
}

fn execute_static(cfg: &SchedConfig, bag: &TaskBag, assignment: &[usize]) -> Seconds {
    let mut makespan: Seconds = 0.0;
    for (h, p) in HostProfile::all().iter().enumerate() {
        let mut host = p.build(per_host_seed(cfg.seed, p.name()));
        host.advance_to(600.0 + cfg.monitor_span);
        let start = host.now();
        let pids: Vec<Pid> = bag
            .works
            .iter()
            .zip(assignment)
            .filter(|(_, &a)| a == h)
            .map(|(&w, _)| host.spawn(ProcessSpec::cpu_bound("static-task").with_cpu_limit(w)))
            .collect();
        if pids.is_empty() {
            continue;
        }
        let deadline = start + cfg.max_execution;
        while pids.iter().any(|&pid| host.kernel().is_alive(pid)) && host.now() < deadline {
            host.advance(1.0);
        }
        makespan = makespan.max(host.now() - start);
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SchedConfig {
        SchedConfig::quick()
    }

    #[test]
    fn workqueue_completes_every_task() {
        let cfg = quick();
        let mut rng = Rng::new(cfg.seed ^ 0x5CED);
        let bag = TaskBag::generate(cfg.n_tasks, cfg.work_range.0, cfg.work_range.1, &mut rng);
        let out = run_workqueue(&cfg, &bag, QueueOrder::LongestFirst);
        assert_eq!(out.tasks_per_host.iter().sum::<usize>(), cfg.n_tasks);
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn faster_hosts_pull_more_tasks() {
        let cfg = quick();
        let mut rng = Rng::new(cfg.seed ^ 0x5CED);
        let bag = TaskBag::generate(24, 10.0, 40.0, &mut rng);
        let out = run_workqueue(&cfg, &bag, QueueOrder::LongestFirst);
        // gremlin (index 4, nearly idle) should complete at least as many
        // tasks as busy thing2 (index 0).
        assert!(
            out.tasks_per_host[4] >= out.tasks_per_host[0],
            "tasks/host = {:?}",
            out.tasks_per_host
        );
    }

    #[test]
    fn queue_order_changes_outcomes_but_not_completion() {
        // A bag with one giant task exposes self-scheduling's blind spot:
        // the order decides WHEN the giant is pulled, but never WHICH host
        // pulls it — pull-based scheduling cannot steer big tasks toward
        // fast hosts the way guided placement can.
        let cfg = quick();
        let mut works = vec![15.0; 11];
        works.push(400.0);
        let bag = TaskBag { works };
        let lf = run_workqueue(&cfg, &bag, QueueOrder::LongestFirst);
        let ff = run_workqueue(&cfg, &bag, QueueOrder::Fifo);
        for out in [&lf, &ff] {
            assert_eq!(out.tasks_per_host.iter().sum::<usize>(), 12);
            // The giant (400 CPU-s) bounds the makespan from below even on
            // an idle host, and a saturated host cannot stretch it beyond
            // ~3x expansion plus the small tasks.
            assert!(out.makespan >= 400.0, "makespan = {}", out.makespan);
            assert!(out.makespan < 2000.0, "makespan = {}", out.makespan);
        }
        // Longest-first hands the giant to the first idle host (host 0);
        // FIFO leaves it for whoever frees up last.
        assert_ne!(
            (lf.makespan, lf.tasks_per_host.clone()),
            (ff.makespan, ff.tasks_per_host.clone()),
            "orders should produce observably different schedules"
        );
    }

    #[test]
    fn static_and_dynamic_are_comparable() {
        let r = compare_static_vs_dynamic(&quick());
        assert!(r.static_makespan > 0.0 && r.dynamic_makespan > 0.0);
        // Neither strategy should be catastrophically worse on a calm bag.
        let ratio = r.dynamic_makespan / r.static_makespan;
        assert!(
            (0.4..2.5).contains(&ratio),
            "static {} vs dynamic {}",
            r.static_makespan,
            r.dynamic_makespan
        );
        assert_eq!(
            r.dynamic_tasks_per_host.iter().sum::<usize>(),
            quick().n_tasks
        );
    }
}
