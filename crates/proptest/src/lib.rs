//! A dependency-free, offline drop-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the real `proptest`
//! cannot be vendored. This shim keeps the property tests meaningful: each
//! `proptest!` test body is run against many pseudo-random inputs drawn from
//! the same strategy expressions, deterministically seeded per test and per
//! case so failures are reproducible. What it deliberately does **not**
//! implement is input shrinking and persistent failure regressions — a
//! failing case is reported with its case number and seed instead.
//!
//! Supported surface:
//!
//! - `proptest! { ... }` with an optional `#![proptest_config(...)]` header;
//! - `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`, `Just`;
//! - integer/float range strategies (`0u8..20`, `0.0f64..=1.0`, ...);
//! - tuple strategies up to arity 6, `Strategy::prop_map`, `any::<T>()`;
//! - `proptest::collection::vec` and `proptest::option::of`.

use std::fmt;

/// Per-test configuration (case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest default is 256; 64 keeps the heavier simulator
        // scripts quick while still exploring the space.
        Self { cases: 64 }
    }
}

/// A failed property assertion (carried out of the test body by
/// `prop_assert!`-family macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type the generated test closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator state (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator for one test case, mixing the test's identity
    /// with the case index so every test sees an independent stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Include the endpoint by drawing over a slightly coarser lattice.
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain generator for the primitive types below.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s with length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The strategy `vec` returns.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy `of` returns.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` test file expects in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice over strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body across many generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(test_name, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::for_case("t", 3);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::for_case("t", 3);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = crate::TestRng::for_case("t", 4);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let x = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let f = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
            let g = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&g));
            let v = crate::collection::vec(0usize..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let strat = prop_oneof![Just(0usize), (1usize..3).prop_map(|v| v), Just(9usize),];
        let mut rng = crate::TestRng::for_case("arms", 0);
        let mut seen = [false; 10];
        for _ in 0..200 {
            seen[strat.generate(&mut rng)] = true;
        }
        assert!(seen[0] && (seen[1] || seen[2]) && seen[9]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0u64..100, v in prop::collection::vec(0.0f64..=1.0, 1..8)) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(v.first().copied().unwrap_or(0.0) <= 1.0, true);
        }
    }
}
