//! Property-based invariants of the link model.

use nws_net::{BandwidthSensor, LatencySensor, Link, LinkConfig};
use nws_stats::Pareto;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = LinkConfig> {
    (
        1e5f64..1e7,   // capacity
        0.001f64..0.2, // base latency
        0.2f64..30.0,  // arrival mean
        1.1f64..1.9,   // pareto shape
        1e4f64..1e6,   // pareto scale
    )
        .prop_map(
            |(capacity, base_latency, flow_arrival_mean, shape, scale)| LinkConfig {
                capacity,
                base_latency,
                flow_arrival_mean,
                flow_size: Pareto::new(shape, scale).with_cap(scale * 1e3),
                queue_delay_per_flow: 0.002,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transfer_never_beats_capacity(cfg in arb_config(), seed in any::<u64>(), mb in 0.1f64..4.0) {
        let mut link = Link::new("l", cfg, seed);
        link.advance(60.0);
        let bytes = mb * 1e6;
        let elapsed = link.transfer(bytes);
        // Physical bound: cannot move bytes faster than the capacity, and
        // the setup latency is always paid.
        let floor = bytes / link.config().capacity + link.config().base_latency;
        prop_assert!(elapsed >= floor - 0.011, "elapsed {elapsed} < floor {floor}");
    }

    #[test]
    fn probe_throughput_is_bounded_by_capacity(cfg in arb_config(), seed in any::<u64>()) {
        let mut link = Link::new("l", cfg, seed);
        link.advance(120.0);
        let mut sensor = BandwidthSensor::nws_default();
        for _ in 0..5 {
            let bw = sensor.measure(&mut link);
            prop_assert!(bw > 0.0);
            prop_assert!(bw <= link.config().capacity * 1.001, "bw {bw} over capacity");
            link.advance(20.0);
        }
    }

    #[test]
    fn rtt_is_at_least_twice_base_latency(cfg in arb_config(), seed in any::<u64>(), dt in 0.0f64..600.0) {
        let base = cfg.base_latency;
        let mut link = Link::new("l", cfg, seed);
        link.advance(dt);
        let rtt = LatencySensor::new().measure(&link);
        prop_assert!(rtt >= 2.0 * base - 1e-12);
        prop_assert!(rtt.is_finite());
    }

    #[test]
    fn background_advance_is_deterministic(cfg in arb_config(), seed in any::<u64>()) {
        let run = |cfg: &LinkConfig| {
            let mut l = Link::new("l", cfg.clone(), seed);
            l.advance(300.0);
            (l.active_flows(), l.delivered_bytes())
        };
        prop_assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn delivered_bytes_monotone(cfg in arb_config(), seed in any::<u64>()) {
        let mut link = Link::new("l", cfg, seed);
        let mut prev = 0.0;
        for _ in 0..10 {
            link.advance(30.0);
            let d = link.delivered_bytes();
            prop_assert!(d >= prev);
            prev = d;
        }
    }
}
