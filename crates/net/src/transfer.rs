//! Transfer-time prediction: regressing file-transfer durations on the
//! monitored link *and* endpoint CPU conditions.
//!
//! Vazhkudai & Schopf showed that predicting data-transfer times from
//! bandwidth probes alone leaves accuracy on the table: the endpoint's
//! CPU load modulates achievable throughput (TCP processing, disk I/O,
//! checksumming all compete with the host's other work), so regressing
//! observed transfer times on *both* the latest bandwidth probe and the
//! CPU-availability forecast beats the univariate fit. This module
//! reproduces that comparison as a prediction scenario in the NWS
//! panel's Table 2/3 shape:
//!
//! - `last-transfer` — the previous transfer's duration (the NWS
//!   last-value baseline);
//! - `mean-transfer` — the running mean of all durations;
//! - `regress-bandwidth` — ordinary least squares of duration on the
//!   bandwidth-only estimate `bytes / bw` over a sliding window;
//! - `regress-bandwidth-cpu` — the bivariate fit adding the endpoint's
//!   CPU availability ([`nws_stats::linear_fit2`]).
//!
//! Each simulated transfer's ground-truth duration couples the probed
//! bandwidth with the endpoint availability: a host at availability `a`
//! sustains only a `0.4 + 0.6·a` fraction of the link's measured
//! bandwidth (transfers are never fully CPU-bound, hence the 0.4
//! floor). The regression predictors see the current probe and the
//! current availability — exactly what an NWS client holds when it asks
//! "how long will this transfer take?" — while the two baselines see
//! only past durations. Every predictor is scored against every
//! realized duration through the same [`ErrorTracker`] machinery the
//! CPU panel uses, and [`TransferScenario::error_table`] reports
//! mergeable [`ErrorRow`]s.

use nws_forecast::{ErrorRow, ErrorTracker};
use nws_stats::{linear_fit, linear_fit2};
use std::sync::Arc;

/// Fraction of link bandwidth a fully loaded endpoint still sustains.
const CPU_FLOOR: f64 = 0.4;

/// Guard against zero/negative probed bandwidth.
const MIN_BANDWIDTH: f64 = 1e-9;

/// Panel member names, in [`TransferScenario::error_table`] row order.
pub const TRANSFER_METHODS: [&str; 4] = [
    "last-transfer",
    "mean-transfer",
    "regress-bandwidth",
    "regress-bandwidth-cpu",
];

/// The transfer-time prediction scenario: four predictors racing over a
/// stream of (bandwidth probe, CPU availability) pairs.
#[derive(Debug)]
pub struct TransferScenario {
    /// Transfer size in the bandwidth probe's byte unit.
    file_bytes: f64,
    /// Sliding-window length for the regression fits.
    window: usize,
    /// Recent bandwidth-only estimates `bytes / bw`, oldest first.
    x1: Vec<f64>,
    /// Recent endpoint availabilities, aligned with `x1`.
    cpu: Vec<f64>,
    /// Recent realized durations, aligned with `x1`.
    durations: Vec<f64>,
    /// Previous transfer's duration (the last-value baseline).
    last: Option<f64>,
    /// Running sum/count of all durations (the mean baseline).
    sum: f64,
    count: u64,
    trackers: Vec<ErrorTracker>,
    names: Vec<Arc<str>>,
    observed: u64,
}

impl TransferScenario {
    /// Creates the scenario for transfers of `file_bytes` (same unit as
    /// the bandwidth probes feed in), fitting regressions over the last
    /// `window` transfers.
    ///
    /// # Panics
    ///
    /// Panics if `file_bytes` is not positive or `window < 3` (an OLS
    /// plane needs three points).
    pub fn new(file_bytes: f64, window: usize) -> Self {
        assert!(file_bytes > 0.0, "transfers must carry bytes");
        assert!(window >= 3, "regressions need a window of at least 3");
        Self {
            file_bytes,
            window,
            x1: Vec::with_capacity(window),
            cpu: Vec::with_capacity(window),
            durations: Vec::with_capacity(window),
            last: None,
            sum: 0.0,
            count: 0,
            trackers: (0..TRANSFER_METHODS.len())
                .map(|_| ErrorTracker::new(30))
                .collect(),
            names: TRANSFER_METHODS.iter().map(|n| Arc::from(*n)).collect(),
            observed: 0,
        }
    }

    /// The ground-truth duration of a transfer over a link probing
    /// `bandwidth` while the endpoint sits at `cpu` availability.
    pub fn actual_duration(&self, bandwidth: f64, cpu: f64) -> f64 {
        let bw = bandwidth.max(MIN_BANDWIDTH);
        let cpu_factor = CPU_FLOOR + (1.0 - CPU_FLOOR) * cpu.clamp(0.0, 1.0);
        self.file_bytes / (bw * cpu_factor)
    }

    /// Each predictor's standing forecast of the *next* transfer's
    /// duration, given the latest bandwidth probe and availability
    /// forecast, in [`TRANSFER_METHODS`] order. `None` entries have not
    /// warmed up yet.
    pub fn predictions(&self, bandwidth: f64, cpu: f64) -> [Option<f64>; 4] {
        let x1_now = self.file_bytes / bandwidth.max(MIN_BANDWIDTH);
        let mean = (self.count > 0).then(|| self.sum / self.count as f64);
        let reg_bw = linear_fit(&self.x1, &self.durations).map(|fit| fit.predict(x1_now).max(0.0));
        let reg_bw_cpu = linear_fit2(&self.x1, &self.cpu, &self.durations)
            .map(|fit| fit.predict(x1_now, cpu.clamp(0.0, 1.0)).max(0.0));
        [self.last, mean, reg_bw, reg_bw_cpu]
    }

    /// Simulates one transfer: scores every warm predictor against the
    /// realized duration, absorbs the observation, and returns the
    /// realized duration.
    pub fn observe(&mut self, bandwidth: f64, cpu: f64) -> f64 {
        let cpu = cpu.clamp(0.0, 1.0);
        let actual = self.actual_duration(bandwidth, cpu);
        let predictions = self.predictions(bandwidth, cpu);
        for (tracker, pred) in self.trackers.iter_mut().zip(predictions) {
            if let Some(p) = pred {
                tracker.record(p, actual);
            }
        }
        if self.x1.len() == self.window {
            self.x1.remove(0);
            self.cpu.remove(0);
            self.durations.remove(0);
        }
        self.x1.push(self.file_bytes / bandwidth.max(MIN_BANDWIDTH));
        self.cpu.push(cpu);
        self.durations.push(actual);
        self.last = Some(actual);
        self.sum += actual;
        self.count += 1;
        self.observed += 1;
        actual
    }

    /// Transfers observed so far.
    pub fn observations(&self) -> u64 {
        self.observed
    }

    /// The per-predictor error table, one row per [`TRANSFER_METHODS`]
    /// entry, carrying raw sums so rows merge exactly across scenarios.
    pub fn error_table(&self) -> Vec<ErrorRow> {
        self.names
            .iter()
            .zip(&self.trackers)
            .map(|(name, t)| {
                let (abs_sum, sq_sum, scored) = t.totals();
                ErrorRow {
                    name: Arc::clone(name),
                    scored,
                    abs_sum,
                    sq_sum,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic stream of (bandwidth, cpu) pairs with genuinely
    /// independent variation in both.
    fn stream(seed: u64, n: usize) -> Vec<(f64, f64)> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let bw = 2.0 + 8.0 * next(); // 2–10 MB/s
                let cpu = 0.1 + 0.85 * next(); // 0.1–0.95 availability
                (bw, cpu)
            })
            .collect()
    }

    #[test]
    fn duration_couples_bandwidth_and_cpu() {
        let s = TransferScenario::new(100.0, 10);
        let fast = s.actual_duration(10.0, 1.0);
        let loaded = s.actual_duration(10.0, 0.0);
        assert!((fast - 10.0).abs() < 1e-12, "idle endpoint: bytes / bw");
        assert!(
            (loaded - 25.0).abs() < 1e-12,
            "loaded endpoint sustains the 0.4 floor"
        );
        assert!(s.actual_duration(5.0, 1.0) > fast, "slower link, longer");
    }

    #[test]
    fn cpu_aware_regression_beats_bandwidth_only() {
        let mut s = TransferScenario::new(100.0, 40);
        for (bw, cpu) in stream(7, 500) {
            s.observe(bw, cpu);
        }
        let table = s.error_table();
        assert_eq!(table.len(), 4);
        let mae: Vec<f64> = table.iter().map(|r| r.mae()).collect();
        // Regressions see the current probe; baselines do not.
        assert!(
            mae[3] < mae[2],
            "cpu-aware fit must beat bandwidth-only: {mae:?}"
        );
        assert!(
            mae[2] < mae[0] && mae[2] < mae[1],
            "probing beats history-only baselines: {mae:?}"
        );
        for row in &table {
            assert!(row.scored > 400, "{} barely scored", row.name);
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let run = || {
            let mut s = TransferScenario::new(64.0, 24);
            for (bw, cpu) in stream(99, 300) {
                s.observe(bw, cpu);
            }
            s.error_table()
                .iter()
                .map(|r| (r.abs_sum.to_bits(), r.sq_sum.to_bits(), r.scored))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn predictions_warm_up_in_stages() {
        let mut s = TransferScenario::new(10.0, 5);
        assert_eq!(s.predictions(5.0, 0.5), [None; 4]);
        s.observe(5.0, 0.5);
        let p = s.predictions(5.0, 0.5);
        assert!(p[0].is_some() && p[1].is_some(), "baselines warm first");
        assert!(p[2].is_none() && p[3].is_none(), "fits need 2–3 points");
        for (bw, cpu) in stream(3, 10) {
            s.observe(bw, cpu);
        }
        assert!(s.predictions(5.0, 0.5).iter().all(Option::is_some));
        assert_eq!(s.observations(), 11);
    }
}
