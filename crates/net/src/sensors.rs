//! The NWS network sensors: probe transfers and round-trip timings.

use crate::link::Link;
use crate::{Bandwidth, Seconds};

/// The NWS bandwidth sensor: times a fixed-size probe transfer.
///
/// The real NWS moved a configurable TCP payload (64 KB default on wide
/// area paths) and reported `bytes / elapsed`. Like the CPU probe, the
/// measurement is intrusive — the probe competes with (and perturbs) the
/// cross-traffic it measures — which is why the default probe is small and
/// infrequent.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthSensor {
    probe_bytes: f64,
    probes_run: u64,
}

impl BandwidthSensor {
    /// Creates a sensor with the given probe payload (bytes).
    ///
    /// # Panics
    ///
    /// Panics unless `probe_bytes` is positive.
    pub fn new(probe_bytes: f64) -> Self {
        assert!(probe_bytes > 0.0, "probe needs a payload");
        Self {
            probe_bytes,
            probes_run: 0,
        }
    }

    /// The NWS wide-area default: a 64 KB probe.
    pub fn nws_default() -> Self {
        Self::new(64.0 * 1024.0)
    }

    /// Probe payload size in bytes.
    pub fn probe_bytes(&self) -> f64 {
        self.probe_bytes
    }

    /// Number of probes run.
    pub fn probes_run(&self) -> u64 {
        self.probes_run
    }

    /// Runs one probe transfer (advancing the link) and returns the
    /// achieved throughput in bytes/second.
    pub fn measure(&mut self, link: &mut Link) -> Bandwidth {
        self.probes_run += 1;
        let elapsed = link.transfer(self.probe_bytes);
        self.probe_bytes / elapsed.max(1e-9)
    }
}

/// The NWS latency sensor: times a small-message round trip.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySensor {
    probes_run: u64,
}

impl LatencySensor {
    /// Creates the sensor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of measurements taken.
    pub fn probes_run(&self) -> u64 {
        self.probes_run
    }

    /// Measures the round-trip latency (seconds). Non-intrusive in the
    /// fluid model: a 1-byte message does not move the sharing state.
    pub fn measure(&mut self, link: &Link) -> Seconds {
        self.probes_run += 1;
        link.rtt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;

    fn quiet_link(seed: u64) -> Link {
        Link::new(
            "quiet",
            LinkConfig {
                flow_arrival_mean: 1e9,
                ..LinkConfig::wan_10mbit()
            },
            seed,
        )
    }

    #[test]
    fn bandwidth_probe_on_idle_link_reads_near_capacity() {
        let mut link = quiet_link(1);
        let mut sensor = BandwidthSensor::new(1.25e6); // 1s worth
        let bw = sensor.measure(&mut link);
        // Setup latency shaves a few percent off.
        assert!(
            bw > 0.9 * link.config().capacity && bw <= link.config().capacity,
            "bw = {bw}"
        );
        assert_eq!(sensor.probes_run(), 1);
    }

    #[test]
    fn small_probes_underestimate_more() {
        // The fixed setup latency penalizes small probes — the classic
        // throughput-probe bias the NWS documentation warns about.
        let mut l1 = quiet_link(2);
        let mut l2 = quiet_link(2);
        let small = BandwidthSensor::new(16.0 * 1024.0).measure(&mut l1);
        let large = BandwidthSensor::new(1.0e6).measure(&mut l2);
        assert!(small < large, "small {small} vs large {large}");
    }

    #[test]
    fn bandwidth_drops_under_cross_traffic() {
        let mut busy = Link::new("wan", LinkConfig::wan_10mbit(), 7);
        busy.advance(300.0);
        let mut idle = quiet_link(7);
        let mut sensor = BandwidthSensor::nws_default();
        // Average several probes on the busy link (traffic is bursty).
        let mut acc = 0.0;
        for _ in 0..10 {
            acc += sensor.measure(&mut busy);
            busy.advance(10.0);
        }
        let busy_bw = acc / 10.0;
        let idle_bw = BandwidthSensor::nws_default().measure(&mut idle);
        assert!(
            busy_bw < idle_bw,
            "busy {busy_bw} should be below idle {idle_bw}"
        );
    }

    #[test]
    fn latency_sensor_reads_rtt() {
        let link = quiet_link(3);
        let mut sensor = LatencySensor::new();
        let rtt = sensor.measure(&link);
        assert!((rtt - 2.0 * link.config().base_latency).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "payload")]
    fn empty_probe_panics() {
        BandwidthSensor::new(0.0);
    }
}
