//! Simulated wide-area network links and the NWS network sensors.
//!
//! The paper's CPU sensor is one half of the Network Weather Service; the
//! other half measures and forecasts **network** performance between grid
//! sites (the NWS papers it cites as \[29\], \[30\]). This crate supplies that
//! half over a simulated substrate:
//!
//! - [`link`] — a wide-area link modeled as a processor-sharing queue:
//!   background *cross-traffic* arrives as Poisson flows with heavy-tailed
//!   (Pareto) sizes, so the link's available bandwidth is a
//!   long-range-dependent series, in line with the self-similar-traffic
//!   literature the paper cites (Leland et al., Willinger et al., Crovella
//!   & Bestavros);
//! - [`sensors`] — the two NWS network sensors: a **bandwidth sensor**
//!   that times a fixed-size probe transfer (the NWS used 64 KB … 1 MB
//!   TCP transfers) and a **latency sensor** that times a small-message
//!   round trip;
//! - [`monitor`] — `LinkMonitor`, the 10-second measurement loop plus NWS
//!   forecasting over a set of links — the network counterpart of the CPU
//!   `GridMonitor`.

pub mod link;
pub mod monitor;
pub mod sensors;
pub mod transfer;

pub use link::{Link, LinkConfig};
pub use monitor::{LinkMonitor, LinkMonitorConfig, LinkReport, LinkSample};
pub use sensors::{BandwidthSensor, LatencySensor};
pub use transfer::{TransferScenario, TRANSFER_METHODS};

/// Seconds (simulation time).
pub type Seconds = f64;

/// Bytes per second.
pub type Bandwidth = f64;
