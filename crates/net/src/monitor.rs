//! The network measurement loop: links → sensors → series → forecasts.

use crate::link::{Link, LinkConfig};
use crate::sensors::{BandwidthSensor, LatencySensor};
use crate::Seconds;
use nws_forecast::{evaluate_one_step, NwsForecaster};
use nws_runtime::Source;
use nws_stats::Rng;
use nws_timeseries::Series;

/// Monitor schedule.
#[derive(Debug, Clone, Copy)]
pub struct LinkMonitorConfig {
    /// Seconds between bandwidth probes. The NWS probed network paths far
    /// less often than CPUs (probes are expensive); default two minutes.
    pub probe_period: Seconds,
    /// Bandwidth probe payload (bytes).
    pub probe_bytes: f64,
}

impl Default for LinkMonitorConfig {
    fn default() -> Self {
        Self {
            probe_period: 120.0,
            probe_bytes: 64.0 * 1024.0,
        }
    }
}

/// One monitored link: its measurement series and forecast state.
pub struct MonitoredLink {
    link: Link,
    bandwidth_sensor: BandwidthSensor,
    latency_sensor: LatencySensor,
    /// Achieved probe throughput (bytes/s).
    pub bandwidth: Series,
    /// Round-trip latency (seconds).
    pub latency: Series,
    forecaster: NwsForecaster,
}

/// What one probe cycle yielded on one link: the samples a consumer
/// (memory, forecaster) should publish. `None` in a cycle's vector means
/// that link's probe was lost this cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSample {
    /// Link time when the probe completed.
    pub time: Seconds,
    /// Achieved probe throughput (bytes/s).
    pub bandwidth: f64,
    /// Round-trip latency (seconds).
    pub latency: Seconds,
}

/// A summary row for one link after a monitoring run.
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// Link name.
    pub name: String,
    /// Mean achieved probe throughput (bytes/s).
    pub mean_bandwidth: f64,
    /// Mean round-trip latency (seconds).
    pub mean_latency: Seconds,
    /// One-step MAE of the NWS forecaster on the *normalized* bandwidth
    /// series (fraction of link capacity), comparable across links.
    pub bandwidth_forecast_mae: f64,
    /// Standing bandwidth forecast (bytes/s), if warm.
    pub forecast: Option<f64>,
}

/// Drives NWS-style monitoring over a set of links.
pub struct LinkMonitor {
    config: LinkMonitorConfig,
    links: Vec<MonitoredLink>,
    /// Probe-drop fault injection: seeded RNG + per-cycle drop rate.
    faults: Option<(Rng, f64)>,
    /// Probe cycles lost to injected drops.
    dropped: u64,
}

impl LinkMonitor {
    /// Creates a monitor over named link configurations; each link's
    /// stochastic traffic derives from `base_seed` and its name.
    pub fn new(
        links: Vec<(String, LinkConfig)>,
        base_seed: u64,
        config: LinkMonitorConfig,
    ) -> Self {
        let links = links
            .into_iter()
            .map(|(name, cfg)| {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.as_bytes() {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                MonitoredLink {
                    link: Link::new(name.clone(), cfg, h ^ base_seed),
                    bandwidth_sensor: BandwidthSensor::new(config.probe_bytes),
                    latency_sensor: LatencySensor::new(),
                    bandwidth: Series::new(format!("{name}/bandwidth")),
                    latency: Series::new(format!("{name}/latency")),
                    forecaster: NwsForecaster::nws_default(),
                }
            })
            .collect();
        Self {
            config,
            links,
            faults: None,
            dropped: 0,
        }
    }

    /// Turns on deterministic probe-drop fault injection: each probe
    /// cycle on each link is independently lost with probability
    /// `drop_rate`. A dropped cycle records no samples — the forecaster
    /// is told about the gap and link time still advances. A zero rate
    /// leaves the monitor bit-identical to the fault-free one.
    ///
    /// # Panics
    ///
    /// Panics unless `drop_rate` is in `[0, 1)`.
    pub fn inject_faults(&mut self, seed: u64, drop_rate: f64) {
        assert!(
            (0.0..1.0).contains(&drop_rate),
            "drop rate must be in [0, 1): {drop_rate}"
        );
        self.faults = (drop_rate > 0.0).then(|| (Rng::new(seed), drop_rate));
    }

    /// Probe cycles lost to injected drops so far.
    pub fn dropped_probes(&self) -> u64 {
        self.dropped
    }

    /// A small demonstration grid: two WAN paths and one LAN path.
    pub fn demo_grid(base_seed: u64) -> Self {
        Self::new(
            vec![
                ("ucsd->utk".to_string(), LinkConfig::wan_10mbit()),
                ("ucsd->uva".to_string(), LinkConfig::wan_10mbit()),
                ("ucsd-lan".to_string(), LinkConfig::lan_100mbit()),
            ],
            base_seed,
            LinkMonitorConfig::default(),
        )
    }

    /// Number of monitored links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when no links are monitored.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Runs `probes` probe cycles on every link.
    pub fn run_probes(&mut self, probes: usize) {
        for _ in 0..probes {
            self.probe_cycle();
        }
    }

    /// Runs one probe cycle across every link, in registration order, and
    /// returns what each link yielded (`None` = the probe was lost to an
    /// injected drop). The fault RNG is shared across links and drawn in
    /// link order, so one cycle is the atomic unit of determinism — this
    /// is why the whole link set is a single engine shard rather than one
    /// shard per link.
    pub fn probe_cycle(&mut self) -> Vec<Option<LinkSample>> {
        let mut samples = Vec::with_capacity(self.links.len());
        for ml in &mut self.links {
            if let Some((rng, rate)) = &mut self.faults {
                if rng.chance(*rate) {
                    // The probe never completes: no samples this
                    // cycle, the forecaster ages out its windows, and
                    // the link's clock (and traffic) move on.
                    ml.forecaster.note_gap();
                    ml.link.advance(self.config.probe_period);
                    self.dropped += 1;
                    samples.push(None);
                    continue;
                }
            }
            // Latency first (non-intrusive), then the transfer probe,
            // then idle background until the next cycle.
            let rtt = ml.latency_sensor.measure(&ml.link);
            let bw = ml.bandwidth_sensor.measure(&mut ml.link);
            let t = ml.link.now();
            ml.latency.push(t, rtt).expect("time advances");
            ml.bandwidth.push(t, bw).expect("time advances");
            // Feed the forecaster the capacity-normalized series so
            // its panel (tuned for [0,1] data) behaves.
            ml.forecaster.update(bw / ml.link.config().capacity);
            ml.link.advance(self.config.probe_period);
            samples.push(Some(LinkSample {
                time: t,
                bandwidth: bw,
                latency: rtt,
            }));
        }
        samples
    }

    /// Access to a link's series by name.
    pub fn series(&self, name: &str) -> Option<(&Series, &Series)> {
        self.links
            .iter()
            .find(|ml| ml.link.name() == name)
            .map(|ml| (&ml.bandwidth, &ml.latency))
    }

    /// Per-link summary, including forecast quality on the normalized
    /// bandwidth series.
    pub fn report(&self) -> Vec<LinkReport> {
        self.links
            .iter()
            .map(|ml| {
                let capacity = ml.link.config().capacity;
                let normalized: Vec<f64> = ml
                    .bandwidth
                    .values()
                    .iter()
                    .map(|&b| b / capacity)
                    .collect();
                let mae = {
                    let mut nws = NwsForecaster::nws_default();
                    evaluate_one_step(&mut nws, &normalized)
                        .map(|r| r.mae)
                        .unwrap_or(f64::NAN)
                };
                let mean = |s: &Series| {
                    if s.is_empty() {
                        f64::NAN
                    } else {
                        s.values().iter().sum::<f64>() / s.len() as f64
                    }
                };
                LinkReport {
                    name: ml.link.name().to_string(),
                    mean_bandwidth: mean(&ml.bandwidth),
                    mean_latency: mean(&ml.latency),
                    bandwidth_forecast_mae: mae,
                    forecast: ml.forecaster.forecast().map(|f| f.value * capacity),
                }
            })
            .collect()
    }
}

/// The whole link set as ONE engine shard: the probe-drop RNG is shared
/// across links and drawn in link order each cycle, so splitting links
/// into separate shards would reorder its draws. One event = one probe
/// cycle = one `Option<LinkSample>` per link, in registration order.
impl Source for LinkMonitor {
    type Event = Vec<Option<LinkSample>>;

    fn produce(&mut self, _slot: u64) -> Self::Event {
        self.probe_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_collects_series_per_link() {
        let mut m = LinkMonitor::demo_grid(1);
        m.run_probes(30); // one simulated hour at 2-minute cadence
        assert_eq!(m.len(), 3);
        let (bw, lat) = m.series("ucsd->utk").expect("registered");
        assert_eq!(bw.len(), 30);
        assert_eq!(lat.len(), 30);
        assert!(bw.values().iter().all(|&b| b > 0.0));
        assert!(lat.values().iter().all(|&l| l > 0.0));
    }

    #[test]
    fn lan_is_faster_than_wan() {
        let mut m = LinkMonitor::demo_grid(3);
        m.run_probes(30);
        let report = m.report();
        let get = |name: &str| {
            report
                .iter()
                .find(|r| r.name == name)
                .expect("link present")
                .clone()
        };
        let lan = get("ucsd-lan");
        let wan = get("ucsd->utk");
        assert!(lan.mean_bandwidth > wan.mean_bandwidth * 2.0);
        assert!(lan.mean_latency < wan.mean_latency);
    }

    #[test]
    fn bandwidth_series_is_forecastable() {
        // The headline transfer to network data: NWS one-step forecasting
        // keeps the normalized error in the usable band.
        let mut m = LinkMonitor::demo_grid(5);
        m.run_probes(120); // four simulated hours
        for r in m.report() {
            assert!(
                r.bandwidth_forecast_mae < 0.25,
                "{}: MAE {}",
                r.name,
                r.bandwidth_forecast_mae
            );
            assert!(r.forecast.is_some(), "{} has no forecast", r.name);
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = LinkMonitor::demo_grid(9);
            m.run_probes(10);
            m.report()
                .iter()
                .map(|r| r.mean_bandwidth)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn injected_drops_lose_cycles_but_time_still_advances() {
        let mut m = LinkMonitor::demo_grid(13);
        m.inject_faults(0xD20B, 0.3);
        m.run_probes(60);
        let dropped = m.dropped_probes();
        assert!(dropped > 0, "30% drops over 180 link-cycles");
        let (bw, lat) = m.series("ucsd->utk").expect("registered");
        assert!(bw.len() < 60, "dropped cycles record no samples");
        assert_eq!(bw.len(), lat.len());
        // Samples keep strictly increasing times on the probe grid even
        // across dropped cycles (the link's clock advanced regardless).
        let times = bw.times();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Forecasts survive a gappy stream.
        assert!(m.report().iter().all(|r| r.forecast.is_some()));
    }

    #[test]
    fn zero_drop_rate_is_bit_identical_to_fault_free() {
        let run = |inject: bool| {
            let mut m = LinkMonitor::demo_grid(4);
            if inject {
                m.inject_faults(7, 0.0);
            }
            m.run_probes(20);
            m.report()
                .iter()
                .map(|r| (r.mean_bandwidth, r.mean_latency, r.forecast))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "drop rate")]
    fn inject_faults_rejects_bad_rate() {
        LinkMonitor::demo_grid(1).inject_faults(1, 1.0);
    }
}
