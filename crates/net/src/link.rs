//! A wide-area link as a processor-sharing queue with heavy-tailed
//! cross-traffic.
//!
//! TCP flows sharing a bottleneck divide its capacity roughly equally
//! (processor sharing). Cross-traffic flows arrive Poisson with
//! Pareto-distributed sizes — the standard generative model for the
//! self-similar throughput the networking literature (and the paper's
//! Section 3.1 citations) report. The link advances in discrete time
//! steps; a foreground probe is just another flow whose completion time
//! the sensors measure.

use crate::{Bandwidth, Seconds};
use nws_stats::{Distribution, Exponential, Pareto, Rng};

/// Static link parameters.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bottleneck capacity (bytes/second).
    pub capacity: Bandwidth,
    /// Base one-way propagation latency (seconds).
    pub base_latency: Seconds,
    /// Mean seconds between cross-traffic flow arrivals.
    pub flow_arrival_mean: Seconds,
    /// Cross-traffic flow size distribution (bytes).
    pub flow_size: Pareto,
    /// Queueing delay added per concurrent flow (seconds) — a linear
    /// approximation of buffer occupancy for the latency sensor.
    pub queue_delay_per_flow: Seconds,
}

impl LinkConfig {
    /// A mid-1990s wide-area path: 10 Mbit/s bottleneck, 30 ms base
    /// latency, bursty heavy-tailed cross-traffic at moderate utilization.
    pub fn wan_10mbit() -> Self {
        Self {
            capacity: 1.25e6, // 10 Mbit/s in bytes/s
            base_latency: 0.030,
            flow_arrival_mean: 0.4,
            // Mean ~ 230 KB, heavy tail capped at 50 MB: utilization ~47%.
            flow_size: Pareto::new(1.3, 60_000.0).with_cap(5.0e7),
            queue_delay_per_flow: 0.004,
        }
    }

    /// A LAN-class path: 100 Mbit/s, 1 ms base latency, lighter traffic.
    pub fn lan_100mbit() -> Self {
        Self {
            capacity: 1.25e7,
            base_latency: 0.001,
            flow_arrival_mean: 0.2,
            flow_size: Pareto::new(1.3, 40_000.0).with_cap(2.0e7),
            queue_delay_per_flow: 0.0005,
        }
    }
}

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
}

/// A simulated link under background cross-traffic.
#[derive(Debug)]
pub struct Link {
    name: String,
    config: LinkConfig,
    rng: Rng,
    now: Seconds,
    next_arrival: Seconds,
    flows: Vec<Flow>,
    /// Cumulative bytes delivered to cross-traffic (for utilization).
    delivered: f64,
}

/// Advance step for the fluid model (seconds). Small enough to resolve
/// sub-second probe transfers, large enough to keep week-long runs cheap.
const STEP: Seconds = 0.01;

impl Link {
    /// Creates a link. All stochastic behaviour derives from `seed`.
    pub fn new(name: impl Into<String>, config: LinkConfig, seed: u64) -> Self {
        assert!(config.capacity > 0.0, "capacity must be positive");
        assert!(config.base_latency >= 0.0, "latency must be non-negative");
        assert!(
            config.flow_arrival_mean > 0.0,
            "arrival mean must be positive"
        );
        let mut rng = Rng::new(seed);
        let first = Exponential::with_mean(config.flow_arrival_mean).sample(&mut rng);
        Self {
            name: name.into(),
            config,
            rng,
            now: 0.0,
            next_arrival: first,
            flows: Vec::new(),
            delivered: 0.0,
        }
    }

    /// The link's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current simulation time.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of active cross-traffic flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Cumulative cross-traffic bytes delivered.
    pub fn delivered_bytes(&self) -> f64 {
        self.delivered
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    fn step(&mut self, dt: Seconds) {
        // Arrivals within the step.
        while self.next_arrival <= self.now + dt {
            self.next_arrival +=
                Exponential::with_mean(self.config.flow_arrival_mean).sample(&mut self.rng);
            let size = self.config.flow_size.sample(&mut self.rng);
            self.flows.push(Flow { remaining: size });
        }
        // Processor sharing among active flows.
        if !self.flows.is_empty() {
            let share = self.config.capacity * dt / self.flows.len() as f64;
            for f in &mut self.flows {
                let sent = share.min(f.remaining);
                f.remaining -= sent;
                self.delivered += sent;
            }
            self.flows.retain(|f| f.remaining > 1e-9);
        }
        self.now += dt;
    }

    /// Advances the link by `dt` seconds of background activity.
    pub fn advance(&mut self, dt: Seconds) {
        assert!(dt >= 0.0, "cannot advance backwards");
        let steps = (dt / STEP).round() as u64;
        for _ in 0..steps {
            self.step(STEP);
        }
    }

    /// Transfers `bytes` through the link as a foreground flow competing
    /// with the cross-traffic, returning the elapsed transfer time
    /// (including one base latency for connection establishment). The
    /// simulation advances by that time.
    pub fn transfer(&mut self, bytes: f64) -> Seconds {
        assert!(bytes > 0.0, "transfer needs bytes");
        let start = self.now;
        let mut remaining = bytes;
        // Connection setup: one RTT-ish latency before bytes flow.
        self.advance_quantized(self.config.base_latency);
        while remaining > 1e-9 {
            let competitors = self.flows.len() as f64;
            let share = self.config.capacity * STEP / (competitors + 1.0);
            let sent = share.min(remaining);
            remaining -= sent;
            self.step(STEP);
        }
        self.now - start
    }

    /// The instantaneous round-trip latency a small message would see:
    /// twice the base latency plus queueing proportional to the number of
    /// active flows.
    pub fn rtt(&self) -> Seconds {
        2.0 * self.config.base_latency + self.config.queue_delay_per_flow * self.flows.len() as f64
    }

    /// Advances by `dt` rounded to the fluid step grid.
    fn advance_quantized(&mut self, dt: Seconds) {
        let steps = (dt / STEP).ceil() as u64;
        for _ in 0..steps {
            self.step(STEP);
        }
    }

    /// The long-run utilization implied by the configuration:
    /// `mean flow size / (arrival mean × capacity)`.
    pub fn configured_utilization(&self) -> f64 {
        let mean_size = self.config.flow_size.mean().unwrap_or(0.0);
        mean_size / (self.config.flow_arrival_mean * self.config.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_link(seed: u64) -> Link {
        // Arrivals so sparse the link is effectively idle.
        let cfg = LinkConfig {
            flow_arrival_mean: 1e9,
            ..LinkConfig::wan_10mbit()
        };
        Link::new("quiet", cfg, seed)
    }

    #[test]
    fn idle_link_gives_full_bandwidth() {
        let mut l = quiet_link(1);
        let t = l.transfer(1.25e6); // 1 second of capacity
                                    // Setup latency + ~1 s of transfer.
        assert!((t - 1.03).abs() < 0.05, "t = {t}");
    }

    #[test]
    fn busy_link_halves_probe_throughput() {
        // One infinite competitor: the probe gets half the capacity.
        let mut l = quiet_link(2);
        l.flows.push(Flow {
            remaining: f64::INFINITY,
        });
        let t = l.transfer(1.25e6);
        assert!((t - 2.03).abs() < 0.1, "t = {t}");
    }

    #[test]
    fn utilization_matches_configuration() {
        let cfg = LinkConfig::wan_10mbit();
        let mut l = Link::new("wan", cfg, 3);
        let rho = l.configured_utilization();
        assert!((0.3..0.9).contains(&rho), "rho = {rho}");
        l.advance(2000.0);
        let measured = l.delivered_bytes() / (2000.0 * l.config().capacity);
        // Heavy-tailed flow sizes make this converge slowly; generous band.
        assert!(
            (measured - rho).abs() < 0.35,
            "measured {measured} vs configured {rho}"
        );
    }

    #[test]
    fn rtt_grows_with_congestion() {
        let mut l = quiet_link(4);
        let idle_rtt = l.rtt();
        assert!((idle_rtt - 0.06).abs() < 1e-9);
        for _ in 0..10 {
            l.flows.push(Flow { remaining: 1e9 });
        }
        assert!(l.rtt() > idle_rtt + 0.03);
    }

    #[test]
    fn advance_is_deterministic() {
        let run = |seed| {
            let mut l = Link::new("wan", LinkConfig::wan_10mbit(), seed);
            l.advance(600.0);
            (l.active_flows(), l.delivered_bytes())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn transfer_advances_clock() {
        let mut l = quiet_link(5);
        let t0 = l.now();
        let elapsed = l.transfer(100_000.0);
        assert!((l.now() - t0 - elapsed).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "transfer needs bytes")]
    fn zero_transfer_panics() {
        quiet_link(6).transfer(0.0);
    }
}
