//! The ground-truth test process of Section 2.2.
//!
//! "We compare the readings they generate with the percentage of CPU cycles
//! obtained by an independent ten-second, CPU-bound process which we will
//! refer to as the *test process*. The test process executes and then
//! reports the ratio of CPU time it received (obtained through the
//! `getrusage()` system call) to total execution time (measured in
//! wall-clock time)."

use nws_sim::Host;

/// A CPU-bound, full-priority occupancy oracle.
#[derive(Debug, Clone, Copy)]
pub struct TestProcess {
    duration: f64,
    runs: u64,
}

impl TestProcess {
    /// Creates a test process of the given wall-clock duration (seconds).
    ///
    /// # Panics
    ///
    /// Panics unless `duration` is positive.
    pub fn new(duration: f64) -> Self {
        assert!(duration > 0.0, "test duration must be positive");
        Self { duration, runs: 0 }
    }

    /// The short (10 s) test process of Tables 1–3.
    pub fn short() -> Self {
        Self::new(crate::TEST_DURATION_SHORT)
    }

    /// The medium-term (5 min) test process of Table 6.
    pub fn medium() -> Self {
        Self::new(crate::TEST_DURATION_MEDIUM)
    }

    /// The configured duration.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// How many times this oracle has executed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Executes the test process, advancing the simulation by the test
    /// duration, and returns the availability it observed.
    pub fn run(&mut self, host: &mut Host) -> f64 {
        self.runs += 1;
        host.run_occupancy_process("test-process", self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_sim::{Host, ProcessSpec};

    #[test]
    fn observes_full_availability_on_idle_host() {
        let mut h = Host::new("idle", 1);
        let mut tp = TestProcess::short();
        let occ = tp.run(&mut h);
        assert!((occ - 1.0).abs() < 0.05, "occ = {occ}");
        assert_eq!(tp.runs(), 1);
    }

    #[test]
    fn observes_fair_share_against_competitor() {
        let mut h = Host::new("busy", 1);
        h.kernel_mut().spawn(ProcessSpec::cpu_bound("other"));
        h.advance(900.0);
        let mut tp = TestProcess::short();
        let occ = tp.run(&mut h);
        // Against one long-running equal-priority competitor the test gets
        // somewhere between fair share and full (it starts fresh).
        assert!(occ > 0.45 && occ < 0.95, "occ = {occ}");
    }

    #[test]
    fn durations_match_paper() {
        assert_eq!(TestProcess::short().duration(), 10.0);
        assert_eq!(TestProcess::medium().duration(), 300.0);
    }

    #[test]
    fn run_advances_clock_by_duration() {
        let mut h = Host::new("x", 1);
        let t0 = h.now();
        TestProcess::new(4.0).run(&mut h);
        assert!((h.now() - t0 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_panics() {
        TestProcess::new(0.0);
    }
}
