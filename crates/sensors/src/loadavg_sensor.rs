//! The Unix load average sensor (the paper's Eq. 1).

use nws_sim::Host;

/// Converts a 1-minute load average into a CPU availability fraction.
///
/// The paper's Eq. 1: a newly created full-priority process joins a run
/// queue of (on average) `load` competitors and can expect a fair
/// `1 / (load + 1)` share of the time slices. The result is clamped into
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use nws_sensors::availability_from_load;
///
/// assert_eq!(availability_from_load(0.0), 1.0); // idle machine
/// assert_eq!(availability_from_load(1.0), 0.5); // one competitor
/// assert_eq!(availability_from_load(3.0), 0.25);
/// ```
pub fn availability_from_load(load: f64) -> f64 {
    if !load.is_finite() || load < 0.0 {
        return 0.0;
    }
    (1.0 / (load + 1.0)).clamp(0.0, 1.0)
}

/// Eq. 1 generalized to a shared-memory multiprocessor: a machine with
/// `cpus` processors and run-queue length `load` can still give a newly
/// created process a full CPU while `load < cpus − 1`; beyond that the
/// fair share is `cpus / (load + 1)`.
pub fn availability_from_load_smp(load: f64, cpus: usize) -> f64 {
    assert!(cpus > 0, "a host needs at least one CPU");
    if !load.is_finite() || load < 0.0 {
        return 0.0;
    }
    (cpus as f64 / (load + 1.0)).clamp(0.0, 1.0)
}

/// The `uptime`-based sensor: reads the kernel's 1-minute load average.
///
/// Stateless and non-intrusive — "almost all Unix systems gather and report
/// load average values", and reading them requires no special privileges.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadAvgSensor;

impl LoadAvgSensor {
    /// Creates the sensor.
    pub fn new() -> Self {
        Self
    }

    /// The method's display name.
    pub fn name(&self) -> &'static str {
        "load-average"
    }

    /// Takes one availability measurement from a simulated host
    /// (multiprocessor-aware).
    pub fn measure(&mut self, host: &Host) -> f64 {
        availability_from_load_smp(host.load_average().one_minute(), host.kernel().n_cpus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_sim::{HostProfile, ProcessSpec};

    #[test]
    fn formula_matches_equation_one() {
        assert_eq!(availability_from_load(0.0), 1.0);
        assert_eq!(availability_from_load(1.0), 0.5);
        assert_eq!(availability_from_load(3.0), 0.25);
    }

    #[test]
    fn garbage_loads_clamp_to_zero() {
        assert_eq!(availability_from_load(f64::NAN), 0.0);
        assert_eq!(availability_from_load(-1.0), 0.0);
        assert_eq!(availability_from_load(f64::INFINITY), 0.0);
    }

    #[test]
    fn idle_host_reads_fully_available() {
        let mut host = nws_sim::Host::new("idle", 1);
        host.advance(120.0);
        let mut s = LoadAvgSensor::new();
        assert!((s.measure(&host) - 1.0).abs() < 0.01);
    }

    #[test]
    fn loaded_host_reads_half_available() {
        let mut host = nws_sim::Host::new("busy", 1);
        host.kernel_mut().spawn(ProcessSpec::cpu_bound("hog"));
        host.advance(900.0);
        let mut s = LoadAvgSensor::new();
        let a = s.measure(&host);
        assert!((a - 0.5).abs() < 0.03, "avail = {a}");
    }

    #[test]
    fn smoothing_lag_is_visible_after_load_departs() {
        // The 1-minute average lags: just after a hog exits, the sensor
        // still reports a busy machine — one of the paper's error sources.
        let mut host = nws_sim::Host::new("lag", 1);
        let pid = host.kernel_mut().spawn(ProcessSpec::cpu_bound("hog"));
        host.advance(900.0);
        host.kernel_mut().kill(pid);
        host.advance(10.0);
        let mut s = LoadAvgSensor::new();
        let a = s.measure(&host);
        assert!(a < 0.65, "sensor forgot the load too quickly: {a}");
    }

    #[test]
    fn smp_availability_formula() {
        // 4 CPUs, 2 runnable jobs: a new process still gets a whole CPU.
        assert_eq!(availability_from_load_smp(2.0, 4), 1.0);
        // 4 CPUs, 7 runnable jobs: fair share is 4/8.
        assert_eq!(availability_from_load_smp(7.0, 4), 0.5);
        // Degenerates to Eq. 1 on a uniprocessor.
        assert_eq!(
            availability_from_load_smp(1.0, 1),
            availability_from_load(1.0)
        );
        assert_eq!(availability_from_load_smp(f64::NAN, 2), 0.0);
    }

    #[test]
    fn smp_host_reads_full_availability_under_light_load() {
        let mut host = nws_sim::Host::with_cpus("smp", 1, 4);
        host.kernel_mut().spawn(ProcessSpec::cpu_bound("a"));
        host.kernel_mut().spawn(ProcessSpec::cpu_bound("b"));
        host.advance(900.0);
        let mut s = LoadAvgSensor::new();
        // Two jobs on four CPUs: a newcomer gets a full CPU.
        assert!((s.measure(&host) - 1.0).abs() < 0.05);
        // And a probe confirms it.
        let occ = host.run_occupancy_process("probe", 5.0);
        assert!(occ > 0.95, "occ = {occ}");
    }

    #[test]
    fn profile_host_measurement_is_in_unit_interval() {
        let mut host = HostProfile::Thing2.build(3);
        host.advance(1800.0);
        let mut s = LoadAvgSensor::new();
        for _ in 0..10 {
            host.advance(10.0);
            let a = s.measure(&host);
            assert!((0.0..=1.0).contains(&a));
        }
    }
}
