//! The NWS hybrid sensor: passive methods + an active probe + bias.
//!
//! The hybrid computes the load-average and vmstat availabilities every
//! 10 s and runs a short (1.5 s) full-priority CPU-bound **probe** once a
//! minute. The probe's `cpu_time / wall_time` ratio is what a real new
//! process would actually have obtained, so:
//!
//! - the passive method that lands *closest* to the probe is selected to
//!   generate measurements until the next probe, and
//! - the difference `probe − method` is carried forward as a **bias**,
//!   correcting for load the passive methods cannot see — most importantly
//!   `nice`-level background processes, which occupy the run queue but
//!   yield instantly to full-priority work.
//!
//! The bias is also the hybrid's Achilles' heel (kongo): when a
//! *long-running full-priority* job is resident, a 1.5 s probe preempts it
//! (the job's decayed priority loses to the fresh probe) and measures an
//! almost-free CPU, so the bias wrongly inflates every subsequent reading.

use crate::loadavg_sensor::LoadAvgSensor;
use crate::vmstat_sensor::VmstatSensor;
use nws_sim::Host;

/// Which passive method the hybrid currently trusts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// The Eq. 1 load-average method.
    #[default]
    LoadAverage,
    /// The Eq. 2 vmstat method.
    Vmstat,
}

impl Method {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::LoadAverage => "load-average",
            Method::Vmstat => "vmstat",
        }
    }
}

/// Tunables for the hybrid sensor.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Probe duration in seconds (paper: 1.5).
    pub probe_duration: f64,
    /// Whether to apply the probe bias (the paper's design). Disabling it
    /// is the ablation that shows bias rescuing conundrum and sinking
    /// kongo.
    pub apply_bias: bool,
    /// EWMA gain for bias updates in `(0, 1]`. A single 1.5 s probe is a
    /// noisy sample of availability; smoothing the bias across probes damps
    /// that noise while still converging on persistent skews (the
    /// `nice`-load correction) within a few minutes.
    pub bias_gain: f64,
    /// Wall-clock cap on one probe run (the probe spins for
    /// `probe_duration` seconds of *CPU*; under contention its wall time
    /// stretches up to this cap).
    pub probe_max_wall: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            probe_duration: crate::PROBE_DURATION,
            apply_bias: true,
            bias_gain: 0.3,
            probe_max_wall: 8.0,
        }
    }
}

/// The NWS hybrid CPU availability sensor.
#[derive(Debug, Clone)]
pub struct HybridSensor {
    config: HybridConfig,
    load: LoadAvgSensor,
    vmstat: VmstatSensor,
    chosen: Method,
    bias: f64,
    probes_run: u64,
    last_probe_value: Option<f64>,
}

impl Default for HybridSensor {
    fn default() -> Self {
        Self::new(HybridConfig::default())
    }
}

impl HybridSensor {
    /// Creates the sensor.
    pub fn new(config: HybridConfig) -> Self {
        assert!(
            config.probe_duration > 0.0,
            "probe duration must be positive"
        );
        assert!(
            config.bias_gain > 0.0 && config.bias_gain <= 1.0,
            "bias gain must be in (0, 1]"
        );
        Self {
            config,
            load: LoadAvgSensor::new(),
            vmstat: VmstatSensor::new(),
            chosen: Method::default(),
            bias: 0.0,
            probes_run: 0,
            last_probe_value: None,
        }
    }

    /// The method's display name.
    pub fn name(&self) -> &'static str {
        "nws-hybrid"
    }

    /// The currently selected passive method.
    pub fn chosen_method(&self) -> Method {
        self.chosen
    }

    /// The current bias correction.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// How many probes have been run.
    pub fn probes_run(&self) -> u64 {
        self.probes_run
    }

    /// The most recent probe occupancy, if any.
    pub fn last_probe_value(&self) -> Option<f64> {
        self.last_probe_value
    }

    /// Takes one *passive* measurement (no probe): reads both methods,
    /// reports the chosen one plus bias.
    pub fn measure(&mut self, host: &Host) -> f64 {
        let l = self.load.measure(host);
        let v = self.vmstat.measure(host);
        self.combine(l, v)
    }

    /// Runs the probe (advancing the simulation by the probe duration!),
    /// re-selects the best passive method, refreshes the bias, and returns
    /// the resulting measurement.
    pub fn measure_with_probe(&mut self, host: &mut Host) -> f64 {
        // Passive readings immediately before the probe.
        let l = self.load.measure(host);
        let v = self.vmstat.measure(host);
        let probe = host.run_cpu_limited_probe(
            "nws-probe",
            self.config.probe_duration,
            self.config.probe_max_wall.max(self.config.probe_duration),
        );
        self.probes_run += 1;
        self.last_probe_value = Some(probe);
        // Adopt whichever method agreed best with the probe.
        let (method, raw) = if (l - probe).abs() <= (v - probe).abs() {
            (Method::LoadAverage, l)
        } else {
            (Method::Vmstat, v)
        };
        // Anchor the bias outright on the first probe or when the method
        // choice flips (the stored EWMA belongs to the other method's
        // skew); otherwise fold the new sample into the EWMA.
        if self.probes_run == 1 || method != self.chosen {
            self.bias = probe - raw;
        } else {
            self.bias += self.config.bias_gain * ((probe - raw) - self.bias);
        }
        self.chosen = method;
        self.combine(l, v)
    }

    fn combine(&self, load_avail: f64, vmstat_avail: f64) -> f64 {
        let raw = match self.chosen {
            Method::LoadAverage => load_avail,
            Method::Vmstat => vmstat_avail,
        };
        if self.config.apply_bias {
            (raw + self.bias).clamp(0.0, 1.0)
        } else {
            raw.clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_sim::workload::{LongRunningHog, NiceSoaker};
    use nws_sim::Host;

    fn settled_host_with_soaker(seed: u64) -> Host {
        let mut h = Host::new("conundrum-like", seed);
        let rng = h.fork_rng("soaker");
        h.add_workload(Box::new(NiceSoaker::new("bg", 600.0, 0.0, rng)));
        h.advance(900.0);
        h
    }

    #[test]
    fn bias_sees_through_nice_load() {
        // The conundrum scenario: passive methods read ~0.5, probe ~1.0,
        // bias lifts subsequent measurements to ~1.0.
        let mut h = settled_host_with_soaker(1);
        let mut s = HybridSensor::default();
        // Warm the vmstat differencing.
        s.measure(&h);
        h.advance(10.0);
        let passive = s.measure(&h);
        assert!((passive - 0.5).abs() < 0.1, "passive = {passive}");
        let with_probe = s.measure_with_probe(&mut h);
        assert!(with_probe > 0.9, "after probe = {with_probe}");
        assert!(s.bias() > 0.35, "bias = {}", s.bias());
        // Subsequent passive measurements carry the bias.
        h.advance(10.0);
        let next = s.measure(&h);
        assert!(next > 0.9, "biased passive = {next}");
    }

    #[test]
    fn bias_can_be_disabled() {
        let mut h = settled_host_with_soaker(2);
        let mut s = HybridSensor::new(HybridConfig {
            apply_bias: false,
            ..HybridConfig::default()
        });
        s.measure(&h);
        h.advance(10.0);
        let _ = s.measure_with_probe(&mut h);
        h.advance(10.0);
        let next = s.measure(&h);
        // Without bias the hybrid is as blind as the passive methods.
        assert!((next - 0.5).abs() < 0.15, "unbiased = {next}");
    }

    #[test]
    fn probe_fooled_by_long_running_job() {
        // The kongo scenario: probe preempts the decayed resident job and
        // reports ~full availability; the bias then *inflates* readings.
        let mut h = Host::new("kongo-like", 3);
        h.add_workload(Box::new(LongRunningHog::new("res", 0.0, 0.0)));
        h.advance(900.0);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let m = s.measure_with_probe(&mut h);
        assert!(m > 0.8, "hybrid reads {m} — probe should have been fooled");
        // Ground truth for a 10s test process is ~0.5-0.7: the hybrid is
        // far off, exactly the paper's Table 1 kongo row.
        h.advance(30.0);
        let truth = h.run_occupancy_process("test", 10.0);
        assert!(m - truth > 0.2, "m = {m}, truth = {truth}");
    }

    #[test]
    fn method_selection_tracks_probe_agreement() {
        let mut h = Host::new("idle", 4);
        h.advance(300.0);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let _ = s.measure_with_probe(&mut h);
        assert_eq!(s.probes_run(), 1);
        assert!(s.last_probe_value().unwrap() > 0.9);
        // On an idle machine both methods read ~1.0 and agree with the
        // probe; the tie goes to load average.
        assert_eq!(s.chosen_method(), Method::LoadAverage);
        assert!(s.bias().abs() < 0.1);
    }

    #[test]
    fn measurement_is_clamped() {
        let mut h = Host::new("idle", 5);
        h.advance(60.0);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let _ = s.measure_with_probe(&mut h);
        h.advance(10.0);
        let m = s.measure(&h);
        assert!((0.0..=1.0).contains(&m));
    }

    #[test]
    fn method_names() {
        assert_eq!(Method::LoadAverage.name(), "load-average");
        assert_eq!(Method::Vmstat.name(), "vmstat");
        assert_eq!(HybridSensor::default().name(), "nws-hybrid");
    }

    #[test]
    #[should_panic(expected = "probe duration")]
    fn zero_probe_duration_panics() {
        HybridSensor::new(HybridConfig {
            probe_duration: 0.0,
            ..HybridConfig::default()
        });
    }
}
