//! The NWS hybrid sensor: passive methods + an active probe + bias.
//!
//! The hybrid computes the load-average and vmstat availabilities every
//! 10 s and runs a short (1.5 s) full-priority CPU-bound **probe** once a
//! minute. The probe's `cpu_time / wall_time` ratio is what a real new
//! process would actually have obtained, so:
//!
//! - the passive method that lands *closest* to the probe is selected to
//!   generate measurements until the next probe, and
//! - the difference `probe − method` is carried forward as a **bias**,
//!   correcting for load the passive methods cannot see — most importantly
//!   `nice`-level background processes, which occupy the run queue but
//!   yield instantly to full-priority work.
//!
//! The bias is also the hybrid's Achilles' heel (kongo): when a
//! *long-running full-priority* job is resident, a 1.5 s probe preempts it
//! (the job's decayed priority loses to the fresh probe) and measures an
//! almost-free CPU, so the bias wrongly inflates every subsequent reading.

use crate::loadavg_sensor::LoadAvgSensor;
use crate::vmstat_sensor::VmstatSensor;
use nws_sim::Host;
use std::sync::Arc;

/// Which passive method the hybrid currently trusts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// The Eq. 1 load-average method.
    #[default]
    LoadAverage,
    /// The Eq. 2 vmstat method.
    Vmstat,
}

impl Method {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::LoadAverage => "load-average",
            Method::Vmstat => "vmstat",
        }
    }
}

/// Tunables for the hybrid sensor.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Probe duration in seconds (paper: 1.5).
    pub probe_duration: f64,
    /// Whether to apply the probe bias (the paper's design). Disabling it
    /// is the ablation that shows bias rescuing conundrum and sinking
    /// kongo.
    pub apply_bias: bool,
    /// EWMA gain for bias updates in `(0, 1]`. A single 1.5 s probe is a
    /// noisy sample of availability; smoothing the bias across probes damps
    /// that noise while still converging on persistent skews (the
    /// `nice`-load correction) within a few minutes.
    pub bias_gain: f64,
    /// Wall-clock cap on one probe run (the probe spins for
    /// `probe_duration` seconds of *CPU*; under contention its wall time
    /// stretches up to this cap).
    pub probe_max_wall: f64,
    /// How many times a failed probe attempt is retried before the cycle
    /// is abandoned and the sensor falls back to its passive reading.
    pub probe_retries: u32,
    /// Wall-clock pause between probe retries (seconds, on the simulator's
    /// 100 ms tick grid).
    pub probe_backoff: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            probe_duration: crate::PROBE_DURATION,
            apply_bias: true,
            // Spread across the paper cadence's 5-probe bias window.
            bias_gain: nws_runtime::Cadence::PAPER.bias_gain(),
            probe_max_wall: 8.0,
            probe_retries: 2,
            probe_backoff: 0.5,
        }
    }
}

/// What happened to one probe cycle run under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Probe attempts that failed (each consumed wall-clock time).
    pub failed_attempts: u32,
    /// Whether a probe ultimately ran. When `false` the returned value is
    /// the passive fallback.
    pub succeeded: bool,
}

/// The NWS hybrid CPU availability sensor.
#[derive(Debug, Clone)]
pub struct HybridSensor {
    config: HybridConfig,
    load: LoadAvgSensor,
    vmstat: VmstatSensor,
    chosen: Method,
    bias: f64,
    probes_run: u64,
    last_probe_value: Option<f64>,
    /// Interned probe process name so periodic probes spawn allocation-free.
    probe_name: Arc<str>,
}

impl Default for HybridSensor {
    fn default() -> Self {
        Self::new(HybridConfig::default())
    }
}

impl HybridSensor {
    /// Creates the sensor.
    pub fn new(config: HybridConfig) -> Self {
        assert!(
            config.probe_duration > 0.0,
            "probe duration must be positive"
        );
        assert!(
            config.bias_gain > 0.0 && config.bias_gain <= 1.0,
            "bias gain must be in (0, 1]"
        );
        Self {
            config,
            load: LoadAvgSensor::new(),
            vmstat: VmstatSensor::new(),
            chosen: Method::default(),
            bias: 0.0,
            probes_run: 0,
            last_probe_value: None,
            probe_name: Arc::from("nws-probe"),
        }
    }

    /// The method's display name.
    pub fn name(&self) -> &'static str {
        "nws-hybrid"
    }

    /// The currently selected passive method.
    pub fn chosen_method(&self) -> Method {
        self.chosen
    }

    /// The current bias correction.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// How many probes have been run.
    pub fn probes_run(&self) -> u64 {
        self.probes_run
    }

    /// The most recent probe occupancy, if any.
    pub fn last_probe_value(&self) -> Option<f64> {
        self.last_probe_value
    }

    /// Forgets all learned state, as after a host reboot: the vmstat
    /// differencing, the method choice, and the probe bias all describe
    /// the pre-reboot workload. The next probe re-anchors the bias.
    pub fn reset(&mut self) {
        self.vmstat.reset();
        self.chosen = Method::default();
        self.bias = 0.0;
        self.probes_run = 0;
        self.last_probe_value = None;
    }

    /// Takes one *passive* measurement (no probe): reads both methods,
    /// reports the chosen one plus bias.
    pub fn measure(&mut self, host: &Host) -> f64 {
        let l = self.load.measure(host);
        let v = self.vmstat.measure(host);
        self.combine(l, v)
    }

    /// Takes one passive measurement while zero or more passive sources
    /// are dropped by fault injection.
    ///
    /// Returns `None` when both sources are lost — the slot is an
    /// explicit gap. When only the *chosen* method's source is lost, the
    /// surviving sensor's raw value is substituted without bias (the
    /// cross-sensor fallback; the second tuple element is `true`). A
    /// dropped sensor is genuinely not read, so its internal state (the
    /// vmstat differencing interval) spans the outage naturally.
    pub fn measure_degraded(
        &mut self,
        host: &Host,
        drop_load: bool,
        drop_vmstat: bool,
    ) -> Option<(f64, bool)> {
        match (drop_load, drop_vmstat) {
            (true, true) => None,
            (false, false) => Some((self.measure(host), false)),
            (true, false) => {
                let v = self.vmstat.measure(host);
                match self.chosen {
                    Method::Vmstat => Some((self.apply_bias_to(v), false)),
                    Method::LoadAverage => Some((v.clamp(0.0, 1.0), true)),
                }
            }
            (false, true) => {
                let l = self.load.measure(host);
                match self.chosen {
                    Method::LoadAverage => Some((self.apply_bias_to(l), false)),
                    Method::Vmstat => Some((l.clamp(0.0, 1.0), true)),
                }
            }
        }
    }

    /// Runs the probe (advancing the simulation by the probe duration!),
    /// re-selects the best passive method, refreshes the bias, and returns
    /// the resulting measurement.
    pub fn measure_with_probe(&mut self, host: &mut Host) -> f64 {
        // Passive readings immediately before the probe.
        let l = self.load.measure(host);
        let v = self.vmstat.measure(host);
        let probe = host.run_cpu_limited_probe(
            Arc::clone(&self.probe_name),
            self.config.probe_duration,
            self.config.probe_max_wall.max(self.config.probe_duration),
        );
        self.probes_run += 1;
        self.last_probe_value = Some(probe);
        // Adopt whichever method agreed best with the probe.
        let (method, raw) = if (l - probe).abs() <= (v - probe).abs() {
            (Method::LoadAverage, l)
        } else {
            (Method::Vmstat, v)
        };
        // Anchor the bias outright on the first probe or when the method
        // choice flips (the stored EWMA belongs to the other method's
        // skew); otherwise fold the new sample into the EWMA.
        if self.probes_run == 1 || method != self.chosen {
            self.bias = probe - raw;
        } else {
            self.bias += self.config.bias_gain * ((probe - raw) - self.bias);
        }
        self.chosen = method;
        self.combine(l, v)
    }

    /// Runs one probe cycle under fault injection: the first
    /// `failing_attempts` probe attempts fail (each consuming
    /// `probe_duration` of wall-clock, followed by `probe_backoff` before
    /// the retry), bounded by the retry budget and by `deadline`
    /// (absolute simulation time). When the cycle is abandoned — retries
    /// exhausted or no room left before the deadline — the sensor falls
    /// back to its passive measurement.
    ///
    /// With `failing_attempts == 0` this is exactly
    /// [`HybridSensor::measure_with_probe`]: no extra time passes and no
    /// extra state changes.
    pub fn measure_with_probe_retries(
        &mut self,
        host: &mut Host,
        failing_attempts: u32,
        deadline: f64,
    ) -> (f64, ProbeOutcome) {
        let mut failed = 0u32;
        loop {
            if host.now() + self.config.probe_duration > deadline + 1e-9 {
                // No room for another attempt before the slot deadline.
                let value = self.measure(host);
                return (
                    value,
                    ProbeOutcome {
                        failed_attempts: failed,
                        succeeded: false,
                    },
                );
            }
            if failed >= failing_attempts {
                let value = self.measure_with_probe(host);
                return (
                    value,
                    ProbeOutcome {
                        failed_attempts: failed,
                        succeeded: true,
                    },
                );
            }
            // This attempt fails: the probe process hangs/dies for its
            // nominal duration before the failure is detected.
            host.advance(self.config.probe_duration);
            failed += 1;
            if failed > self.config.probe_retries {
                // Retry budget exhausted — abandon the cycle.
                let value = self.measure(host);
                return (
                    value,
                    ProbeOutcome {
                        failed_attempts: failed,
                        succeeded: false,
                    },
                );
            }
            host.advance(self.config.probe_backoff);
        }
    }

    fn apply_bias_to(&self, raw: f64) -> f64 {
        if self.config.apply_bias {
            (raw + self.bias).clamp(0.0, 1.0)
        } else {
            raw.clamp(0.0, 1.0)
        }
    }

    fn combine(&self, load_avail: f64, vmstat_avail: f64) -> f64 {
        let raw = match self.chosen {
            Method::LoadAverage => load_avail,
            Method::Vmstat => vmstat_avail,
        };
        self.apply_bias_to(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_sim::workload::{LongRunningHog, NiceSoaker};
    use nws_sim::Host;

    fn settled_host_with_soaker(seed: u64) -> Host {
        let mut h = Host::new("conundrum-like", seed);
        let rng = h.fork_rng("soaker");
        h.add_workload(Box::new(NiceSoaker::new("bg", 600.0, 0.0, rng)));
        h.advance(900.0);
        h
    }

    #[test]
    fn bias_sees_through_nice_load() {
        // The conundrum scenario: passive methods read ~0.5, probe ~1.0,
        // bias lifts subsequent measurements to ~1.0.
        let mut h = settled_host_with_soaker(1);
        let mut s = HybridSensor::default();
        // Warm the vmstat differencing.
        s.measure(&h);
        h.advance(10.0);
        let passive = s.measure(&h);
        assert!((passive - 0.5).abs() < 0.1, "passive = {passive}");
        let with_probe = s.measure_with_probe(&mut h);
        assert!(with_probe > 0.9, "after probe = {with_probe}");
        assert!(s.bias() > 0.35, "bias = {}", s.bias());
        // Subsequent passive measurements carry the bias.
        h.advance(10.0);
        let next = s.measure(&h);
        assert!(next > 0.9, "biased passive = {next}");
    }

    #[test]
    fn bias_can_be_disabled() {
        let mut h = settled_host_with_soaker(2);
        let mut s = HybridSensor::new(HybridConfig {
            apply_bias: false,
            ..HybridConfig::default()
        });
        s.measure(&h);
        h.advance(10.0);
        let _ = s.measure_with_probe(&mut h);
        h.advance(10.0);
        let next = s.measure(&h);
        // Without bias the hybrid is as blind as the passive methods.
        assert!((next - 0.5).abs() < 0.15, "unbiased = {next}");
    }

    #[test]
    fn probe_fooled_by_long_running_job() {
        // The kongo scenario: probe preempts the decayed resident job and
        // reports ~full availability; the bias then *inflates* readings.
        let mut h = Host::new("kongo-like", 3);
        h.add_workload(Box::new(LongRunningHog::new("res", 0.0, 0.0)));
        h.advance(900.0);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let m = s.measure_with_probe(&mut h);
        assert!(m > 0.8, "hybrid reads {m} — probe should have been fooled");
        // Ground truth for a 10s test process is ~0.5-0.7: the hybrid is
        // far off, exactly the paper's Table 1 kongo row.
        h.advance(30.0);
        let truth = h.run_occupancy_process("test", 10.0);
        assert!(m - truth > 0.2, "m = {m}, truth = {truth}");
    }

    #[test]
    fn method_selection_tracks_probe_agreement() {
        let mut h = Host::new("idle", 4);
        h.advance(300.0);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let _ = s.measure_with_probe(&mut h);
        assert_eq!(s.probes_run(), 1);
        assert!(s.last_probe_value().unwrap() > 0.9);
        // On an idle machine both methods read ~1.0 and agree with the
        // probe; the tie goes to load average.
        assert_eq!(s.chosen_method(), Method::LoadAverage);
        assert!(s.bias().abs() < 0.1);
    }

    #[test]
    fn measurement_is_clamped() {
        let mut h = Host::new("idle", 5);
        h.advance(60.0);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let _ = s.measure_with_probe(&mut h);
        h.advance(10.0);
        let m = s.measure(&h);
        assert!((0.0..=1.0).contains(&m));
    }

    #[test]
    fn method_names() {
        assert_eq!(Method::LoadAverage.name(), "load-average");
        assert_eq!(Method::Vmstat.name(), "vmstat");
        assert_eq!(HybridSensor::default().name(), "nws-hybrid");
    }

    #[test]
    #[should_panic(expected = "probe duration")]
    fn zero_probe_duration_panics() {
        HybridSensor::new(HybridConfig {
            probe_duration: 0.0,
            ..HybridConfig::default()
        });
    }

    #[test]
    fn zero_failing_attempts_is_exactly_measure_with_probe() {
        let make = |seed| {
            let mut h = settled_host_with_soaker(seed);
            let mut s = HybridSensor::default();
            s.measure(&h);
            h.advance(10.0);
            (h, s)
        };
        let (mut h1, mut s1) = make(7);
        let (mut h2, mut s2) = make(7);
        let a = s1.measure_with_probe(&mut h1);
        let deadline = h2.now() + 10.0;
        let (b, outcome) = s2.measure_with_probe_retries(&mut h2, 0, deadline);
        assert_eq!(a, b);
        assert_eq!(h1.now(), h2.now());
        assert_eq!(s1.bias(), s2.bias());
        assert!(outcome.succeeded);
        assert_eq!(outcome.failed_attempts, 0);
    }

    #[test]
    fn failed_attempts_consume_time_then_retry_succeeds() {
        let mut h = settled_host_with_soaker(8);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let t0 = h.now();
        let (_, outcome) = s.measure_with_probe_retries(&mut h, 1, t0 + 30.0);
        assert!(outcome.succeeded);
        assert_eq!(outcome.failed_attempts, 1);
        assert_eq!(s.probes_run(), 1);
        // One failed attempt (1.5 s) + backoff (0.5 s) + the real probe.
        assert!(
            h.now() - t0 >= 1.5 + 0.5 + 1.5 - 1e-9,
            "t = {}",
            h.now() - t0
        );
    }

    #[test]
    fn exhausted_retries_abandon_and_fall_back_to_passive() {
        let mut h = settled_host_with_soaker(9);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let deadline = h.now() + 60.0;
        let (value, outcome) = s.measure_with_probe_retries(&mut h, 10, deadline);
        assert!(!outcome.succeeded);
        // Budget: initial attempt + probe_retries retries, all failed.
        assert_eq!(
            outcome.failed_attempts,
            1 + HybridConfig::default().probe_retries
        );
        assert_eq!(s.probes_run(), 0, "no probe ever ran");
        assert!((0.0..=1.0).contains(&value));
    }

    #[test]
    fn deadline_abandons_before_starting_an_attempt() {
        let mut h = settled_host_with_soaker(10);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let t0 = h.now();
        // Deadline too tight for even one probe attempt.
        let (_, outcome) = s.measure_with_probe_retries(&mut h, 0, t0 + 1.0);
        assert!(!outcome.succeeded);
        assert_eq!(outcome.failed_attempts, 0);
        assert_eq!(h.now(), t0, "abandoning must not advance time");
    }

    #[test]
    fn degraded_measure_gap_and_cross_fallback() {
        let mut h = settled_host_with_soaker(11);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        // Both sources lost: explicit gap.
        assert!(s.measure_degraded(&h, true, true).is_none());
        // Chosen defaults to load-average; losing vmstat keeps the biased
        // chosen-method path.
        let (v, crossed) = s.measure_degraded(&h, false, true).expect("load survives");
        assert!(!crossed);
        assert!((0.0..=1.0).contains(&v));
        // Losing the chosen source crosses to the survivor, biasless.
        h.advance(10.0);
        let (v2, crossed2) = s
            .measure_degraded(&h, true, false)
            .expect("vmstat survives");
        assert!(crossed2);
        assert!((0.0..=1.0).contains(&v2));
        // Nothing dropped behaves exactly like measure().
        let mut s2 = s.clone();
        h.advance(10.0);
        let a = s.measure(&h);
        let b = s2.measure_degraded(&h, false, false).unwrap();
        assert_eq!((a, false), b);
    }

    #[test]
    fn reset_forgets_bias_and_method() {
        let mut h = settled_host_with_soaker(12);
        let mut s = HybridSensor::default();
        s.measure(&h);
        h.advance(10.0);
        let _ = s.measure_with_probe(&mut h);
        assert!(s.bias().abs() > 0.0);
        s.reset();
        assert_eq!(s.bias(), 0.0);
        assert_eq!(s.probes_run(), 0);
        assert_eq!(s.chosen_method(), Method::default());
        assert!(s.last_probe_value().is_none());
        // The next probe re-anchors the bias outright (first-probe rule).
        h.advance(10.0);
        let _ = s.measure_with_probe(&mut h);
        assert_eq!(s.probes_run(), 1);
    }
}
