//! The `vmstat` sensor (the paper's Eq. 2).

use nws_sim::{Accounting, Host};

/// One interval's worth of `vmstat`-style readings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmstatReading {
    /// Fraction of the interval the CPU was idle.
    pub idle: f64,
    /// Fraction spent in user mode.
    pub user: f64,
    /// Fraction spent in system mode.
    pub sys: f64,
    /// Smoothed run-queue length ("a smoothed average of the number of
    /// running processes over the previous set of measurements").
    pub smoothed_rp: f64,
}

/// The paper's Eq. 2: availability from occupancy fractions.
///
/// `avail = idle + user/(rp+1) + w·sys/(rp+1)` with weighting `w = user`.
///
/// A new full-priority process is entitled to all idle time and a fair
/// `1/(rp+1)` share of the user time. System time is only fairly shareable
/// to the extent the machine is doing user work — "in our experience, the
/// percentage of system time that is shared fairly is directly proportional
/// to the percentage of user time, hence the `w` factor" (a gateway host
/// doing pure packet-interrupt work shares none of it).
pub fn availability_from_vmstat(reading: &VmstatReading) -> f64 {
    let rp = reading.smoothed_rp.max(0.0);
    let share = 1.0 / (rp + 1.0);
    let w = reading.user.clamp(0.0, 1.0);
    (reading.idle + reading.user * share + w * reading.sys * share).clamp(0.0, 1.0)
}

/// The `vmstat`-based sensor.
///
/// Stateful: it differences the kernel's cumulative user/sys/idle counters
/// between calls and maintains an exponentially smoothed run-queue length.
#[derive(Debug, Clone)]
pub struct VmstatSensor {
    prev: Option<Accounting>,
    smoothed_rp: f64,
    /// EWMA gain for the run-queue smoothing.
    alpha: f64,
    /// EWMA gain for the occupancy-fraction smoothing. One 10-second
    /// interval of user/sys/idle fractions is far noisier than the
    /// kernel's one-minute load average; the NWS sensor smooths "over the
    /// previous set of measurements" so the two methods see comparable
    /// horizons.
    beta: f64,
    smoothed: Option<VmstatReading>,
    last_reading: Option<VmstatReading>,
}

impl Default for VmstatSensor {
    fn default() -> Self {
        Self::new()
    }
}

impl VmstatSensor {
    /// Creates the sensor with the default smoothing gains.
    pub fn new() -> Self {
        Self::with_gains(0.3, 0.25)
    }

    /// Creates the sensor with an explicit run-queue EWMA gain in `(0, 1]`
    /// (compatibility constructor; occupancy smoothing uses the default).
    pub fn with_alpha(alpha: f64) -> Self {
        Self::with_gains(alpha, 0.25)
    }

    /// Creates the sensor with explicit run-queue (`alpha`) and occupancy
    /// (`beta`) EWMA gains, both in `(0, 1]`.
    pub fn with_gains(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0,1]");
        Self {
            prev: None,
            smoothed_rp: 0.0,
            alpha,
            beta,
            smoothed: None,
            last_reading: None,
        }
    }

    /// The method's display name.
    pub fn name(&self) -> &'static str {
        "vmstat"
    }

    /// Forgets all differencing and smoothing state, as after a host
    /// reboot: the kernel's cumulative counters restarted from zero, so
    /// differencing across the boot would report nonsense (negative
    /// intervals).
    pub fn reset(&mut self) {
        self.prev = None;
        self.smoothed_rp = 0.0;
        self.smoothed = None;
        self.last_reading = None;
    }

    /// The most recent interval reading, if a measurement has been taken.
    pub fn last_reading(&self) -> Option<VmstatReading> {
        self.last_reading
    }

    /// Takes one availability measurement from a simulated host.
    ///
    /// The first call primes the counters and reports availability from the
    /// instantaneous run queue only (there is no interval to difference
    /// yet).
    pub fn measure(&mut self, host: &Host) -> f64 {
        let acct = host.accounting();
        let rp_now = host.runnable_count() as f64;
        self.smoothed_rp = match self.prev {
            None => rp_now,
            Some(_) => self.smoothed_rp + self.alpha * (rp_now - self.smoothed_rp),
        };
        let reading = match self.prev {
            Some(prev) => {
                let d = acct.since(&prev);
                let total = d.total();
                if total <= 0.0 {
                    // Zero-length interval: reuse the last occupancy split.
                    self.last_reading.unwrap_or(VmstatReading {
                        idle: 1.0,
                        user: 0.0,
                        sys: 0.0,
                        smoothed_rp: self.smoothed_rp,
                    })
                } else {
                    VmstatReading {
                        idle: (d.idle / total).clamp(0.0, 1.0),
                        user: (d.user / total).clamp(0.0, 1.0),
                        sys: (d.sys / total).clamp(0.0, 1.0),
                        smoothed_rp: self.smoothed_rp,
                    }
                }
            }
            None => VmstatReading {
                // Prime: assume the split implied by the run queue.
                idle: if rp_now > 0.0 { 0.0 } else { 1.0 },
                user: if rp_now > 0.0 { 1.0 } else { 0.0 },
                sys: 0.0,
                smoothed_rp: self.smoothed_rp,
            },
        };
        self.prev = Some(acct);
        let mut reading = reading;
        reading.smoothed_rp = self.smoothed_rp;
        // Occupancy smoothing across intervals.
        let sm = match self.smoothed {
            None => reading,
            Some(prev_sm) => VmstatReading {
                idle: prev_sm.idle + self.beta * (reading.idle - prev_sm.idle),
                user: prev_sm.user + self.beta * (reading.user - prev_sm.user),
                sys: prev_sm.sys + self.beta * (reading.sys - prev_sm.sys),
                smoothed_rp: self.smoothed_rp,
            },
        };
        self.smoothed = Some(sm);
        self.last_reading = Some(sm);
        availability_from_vmstat(&sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_sim::{Host, ProcessSpec};

    fn reading(idle: f64, user: f64, sys: f64, rp: f64) -> VmstatReading {
        VmstatReading {
            idle,
            user,
            sys,
            smoothed_rp: rp,
        }
    }

    #[test]
    fn idle_machine_is_fully_available() {
        assert_eq!(availability_from_vmstat(&reading(1.0, 0.0, 0.0, 0.0)), 1.0);
    }

    #[test]
    fn one_user_hog_gives_half() {
        let a = availability_from_vmstat(&reading(0.0, 1.0, 0.0, 1.0));
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn system_time_weighted_by_user_fraction() {
        // Pure gateway: all sys, no user → none of the sys time is counted
        // as shareable.
        let a = availability_from_vmstat(&reading(0.0, 0.0, 1.0, 0.0));
        assert_eq!(a, 0.0);
        // Mixed: user work implies syscall time is user-driven and fairly
        // shared.
        let mixed = availability_from_vmstat(&reading(0.0, 0.8, 0.2, 1.0));
        assert!((mixed - (0.8 / 2.0 + 0.8 * 0.2 / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn result_is_clamped() {
        let a = availability_from_vmstat(&reading(0.9, 0.9, 0.9, 0.0));
        assert_eq!(a, 1.0);
        let b = availability_from_vmstat(&reading(-0.5, 0.0, 0.0, 2.0));
        assert_eq!(b, 0.0);
    }

    #[test]
    fn sensor_differences_intervals() {
        let mut host = Host::new("h", 1);
        let mut s = VmstatSensor::new();
        host.advance(60.0);
        let first = s.measure(&host); // priming call, idle machine
        assert!((first - 1.0).abs() < 1e-9);
        // Now saturate with one hog; the smoothed occupancy converges on
        // the all-user split over a few intervals.
        host.kernel_mut().spawn(ProcessSpec::cpu_bound("hog"));
        let mut a = 1.0;
        for _ in 0..20 {
            host.advance(10.0);
            a = s.measure(&host);
        }
        let r = s.last_reading().unwrap();
        assert!(r.idle < 0.05, "idle = {}", r.idle);
        assert!(r.user > 0.9, "user = {}", r.user);
        assert!((r.smoothed_rp - 1.0).abs() < 0.05, "rp = {}", r.smoothed_rp);
        assert!((a - 0.5).abs() < 0.05, "avail = {a}");
    }

    #[test]
    fn rp_smoothing_converges() {
        let mut host = Host::new("h", 1);
        host.kernel_mut().spawn(ProcessSpec::cpu_bound("a"));
        host.kernel_mut().spawn(ProcessSpec::cpu_bound("b"));
        let mut s = VmstatSensor::new();
        for _ in 0..30 {
            host.advance(10.0);
            s.measure(&host);
        }
        let r = s.last_reading().unwrap();
        assert!((r.smoothed_rp - 2.0).abs() < 0.05, "rp = {}", r.smoothed_rp);
        // Two hogs: a new process gets 1/3 of the user time.
        let a = availability_from_vmstat(&r);
        assert!((a - 1.0 / 3.0).abs() < 0.05, "avail = {a}");
    }

    #[test]
    fn both_sensors_converge_after_a_load_step() {
        // The two methods smooth over comparable horizons; after a hog
        // appears, both should settle near the fair-share availability of
        // 0.5 within a few minutes.
        let mut host = Host::new("h", 1);
        let mut vs = VmstatSensor::new();
        let mut ls = crate::loadavg_sensor::LoadAvgSensor::new();
        host.advance(120.0);
        vs.measure(&host);
        host.kernel_mut().spawn(ProcessSpec::cpu_bound("hog"));
        let mut v = 1.0;
        let mut l = 1.0;
        for _ in 0..18 {
            host.advance(10.0);
            v = vs.measure(&host);
            l = ls.measure(&host);
        }
        assert!((v - 0.5).abs() < 0.05, "vmstat settled at {v}");
        assert!((l - 0.5).abs() < 0.05, "loadavg settled at {l}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        VmstatSensor::with_alpha(0.0);
    }
}
