//! Sensors as event-engine [`Source`]s.
//!
//! [`SensorSource`] pairs a simulated host with any passive
//! [`AvailabilitySensor`] and exposes the paper's measurement loop as a
//! per-shard event producer: each engine slot advances the host to the
//! slot's time on the shared [`Cadence`] grid and takes one reading.
//! This is the building block the grid monitor's richer per-host source
//! (three sensors, probes, fault stream) follows; it exists standalone
//! so a single sensor can be driven by the engine directly.

use crate::AvailabilitySensor;
use nws_runtime::{Cadence, Source};
use nws_sim::Host;

/// One host + one passive sensor as an engine shard.
pub struct SensorSource<S: AvailabilitySensor> {
    host: Host,
    sensor: S,
    cadence: Cadence,
}

/// One sensor reading: the measurement time and the availability value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// Host time when the reading was taken.
    pub time: f64,
    /// Availability in `[0, 1]`.
    pub value: f64,
}

impl<S: AvailabilitySensor> SensorSource<S> {
    /// Wraps a host and sensor on the given slot grid.
    pub fn new(host: Host, sensor: S, cadence: Cadence) -> Self {
        Self {
            host,
            sensor,
            cadence,
        }
    }

    /// The monitored host.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The sensor's display name.
    pub fn method_name(&self) -> &'static str {
        self.sensor.method_name()
    }
}

impl<S: AvailabilitySensor + Send> Source for SensorSource<S> {
    type Event = Reading;

    fn produce(&mut self, slot: u64) -> Reading {
        // Slot `s` measures at the *end* of its period — the same grid
        // the grid monitor uses.
        self.host.advance_to(self.cadence.slot_time(slot + 1));
        Reading {
            time: self.host.now(),
            value: self.sensor.measure_availability(&self.host),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoadAvgSensor;
    use nws_runtime::{Engine, EngineConfig, Stage};

    struct Collect(Vec<(usize, Reading)>);

    impl Stage<SensorSource<LoadAvgSensor>> for Collect {
        fn commit(
            &mut self,
            shard: usize,
            _src: &mut SensorSource<LoadAvgSensor>,
            _slot: u64,
            event: &Reading,
        ) {
            self.0.push((shard, *event));
        }
    }

    #[test]
    fn sensors_drive_through_the_engine() {
        let sources: Vec<_> = (0..3)
            .map(|i| {
                SensorSource::new(
                    Host::new(format!("box{i}"), 4),
                    LoadAvgSensor::new(),
                    Cadence::PAPER,
                )
            })
            .collect();
        let mut engine = Engine::new(sources, EngineConfig::default());
        let mut stage = Collect(Vec::new());
        engine.run(12, &mut stage);
        assert_eq!(stage.0.len(), 36);
        // Readings land on the 10 s grid, per shard, values in range.
        for (shard, r) in &stage.0 {
            assert!(*shard < 3);
            assert!((0.0..=1.0).contains(&r.value));
            assert!((r.time / 10.0).fract().abs() < 1e-9);
        }
        assert_eq!(engine.sources()[0].host().now(), 120.0);
        assert_eq!(engine.sources()[0].method_name(), "load-average");
    }
}
