//! Live-host sensing through `/proc` (Linux).
//!
//! The paper's sensors run unprivileged on real Unix systems via `uptime`
//! and `vmstat`; on modern Linux the same quantities come from
//! `/proc/loadavg` and `/proc/stat`. The parsers here are pure functions
//! (testable on any platform); [`ProcLoadAvgSensor`] and
//! [`ProcVmstatSensor`] wire them to the live files so the library can
//! monitor the machine it runs on with the exact Eq. 1 / Eq. 2 formulas
//! used against the simulator.

use crate::loadavg_sensor::availability_from_load;
use crate::vmstat_sensor::{availability_from_vmstat, VmstatReading};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Errors reading or parsing `/proc` files.
#[derive(Debug)]
pub enum ProcError {
    /// Underlying I/O failure (e.g. not on Linux).
    Io(io::Error),
    /// The file contents did not parse.
    Parse(String),
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcError::Io(e) => write!(f, "io error: {e}"),
            ProcError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for ProcError {}

impl From<io::Error> for ProcError {
    fn from(e: io::Error) -> Self {
        ProcError::Io(e)
    }
}

/// Parsed `/proc/loadavg`: the three load averages and the run-queue
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadAvgInfo {
    /// 1-minute load average.
    pub one: f64,
    /// 5-minute load average.
    pub five: f64,
    /// 15-minute load average.
    pub fifteen: f64,
    /// Currently runnable entities (the numerator of the 4th field).
    pub running: u64,
    /// Total scheduling entities (the denominator of the 4th field).
    pub total: u64,
}

/// Parses the contents of `/proc/loadavg`,
/// e.g. `"0.52 0.58 0.59 1/467 12345"`.
pub fn parse_loadavg(text: &str) -> Result<LoadAvgInfo, ProcError> {
    let mut fields = text.split_whitespace();
    let mut next_f64 = |what: &str| -> Result<f64, ProcError> {
        fields
            .next()
            .ok_or_else(|| ProcError::Parse(format!("missing {what}")))?
            .parse::<f64>()
            .map_err(|e| ProcError::Parse(format!("bad {what}: {e}")))
    };
    let one = next_f64("1-min load")?;
    let five = next_f64("5-min load")?;
    let fifteen = next_f64("15-min load")?;
    let ratio = fields
        .next()
        .ok_or_else(|| ProcError::Parse("missing run-queue field".into()))?;
    let (run, tot) = ratio
        .split_once('/')
        .ok_or_else(|| ProcError::Parse(format!("bad run-queue field {ratio:?}")))?;
    let running = run
        .parse::<u64>()
        .map_err(|e| ProcError::Parse(format!("bad running count: {e}")))?;
    let total = tot
        .parse::<u64>()
        .map_err(|e| ProcError::Parse(format!("bad total count: {e}")))?;
    Ok(LoadAvgInfo {
        one,
        five,
        fifteen,
        running,
        total,
    })
}

/// Cumulative jiffy counters from the `cpu` line of `/proc/stat`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpuJiffies {
    /// Normal-priority user time.
    pub user: u64,
    /// Niced user time.
    pub nice: u64,
    /// Kernel time.
    pub system: u64,
    /// Idle time.
    pub idle: u64,
    /// I/O wait (counted as idle for availability purposes).
    pub iowait: u64,
    /// Hardware interrupt time (counted as system).
    pub irq: u64,
    /// Software interrupt time (counted as system).
    pub softirq: u64,
}

impl CpuJiffies {
    /// Total jiffies across all accounted states.
    pub fn total(&self) -> u64 {
        self.user + self.nice + self.system + self.idle + self.iowait + self.irq + self.softirq
    }

    /// Field-wise saturating difference `self − earlier`.
    pub fn since(&self, earlier: &CpuJiffies) -> CpuJiffies {
        CpuJiffies {
            user: self.user.saturating_sub(earlier.user),
            nice: self.nice.saturating_sub(earlier.nice),
            system: self.system.saturating_sub(earlier.system),
            idle: self.idle.saturating_sub(earlier.idle),
            iowait: self.iowait.saturating_sub(earlier.iowait),
            irq: self.irq.saturating_sub(earlier.irq),
            softirq: self.softirq.saturating_sub(earlier.softirq),
        }
    }
}

/// Parses the aggregate `cpu` line out of `/proc/stat` text.
pub fn parse_stat_cpu(text: &str) -> Result<CpuJiffies, ProcError> {
    let line = text
        .lines()
        .find(|l| l.starts_with("cpu ") || *l == "cpu")
        .ok_or_else(|| ProcError::Parse("no aggregate cpu line".into()))?;
    let nums: Vec<u64> = line
        .split_whitespace()
        .skip(1)
        .map(|f| {
            f.parse::<u64>()
                .map_err(|e| ProcError::Parse(format!("bad cpu field {f:?}: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if nums.len() < 4 {
        return Err(ProcError::Parse(format!(
            "cpu line has only {} fields, need >= 4",
            nums.len()
        )));
    }
    let get = |i: usize| nums.get(i).copied().unwrap_or(0);
    Ok(CpuJiffies {
        user: get(0),
        nice: get(1),
        system: get(2),
        idle: get(3),
        iowait: get(4),
        irq: get(5),
        softirq: get(6),
    })
}

/// Eq. 1 applied to a live Linux host via `/proc/loadavg`.
#[derive(Debug, Clone)]
pub struct ProcLoadAvgSensor {
    path: PathBuf,
}

impl Default for ProcLoadAvgSensor {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcLoadAvgSensor {
    /// Creates a sensor reading the standard `/proc/loadavg`.
    pub fn new() -> Self {
        Self {
            path: PathBuf::from("/proc/loadavg"),
        }
    }

    /// Creates a sensor reading a custom path (for tests or containers).
    pub fn with_path(path: impl AsRef<Path>) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// Reads the raw load averages.
    pub fn read(&self) -> Result<LoadAvgInfo, ProcError> {
        parse_loadavg(&fs::read_to_string(&self.path)?)
    }

    /// Takes one Eq. 1 availability measurement.
    pub fn measure(&self) -> Result<f64, ProcError> {
        Ok(availability_from_load(self.read()?.one))
    }
}

/// Eq. 2 applied to a live Linux host via `/proc/stat` + `/proc/loadavg`.
///
/// Niced user time is treated as *available* occupancy (a full-priority
/// process preempts it), which is exactly the correction the paper's hybrid
/// bias performs on the simulator. The run-queue term uses the smoothed
/// count of running entities from `/proc/loadavg` excluding niced load —
/// on a live host we approximate `rp` by the 1-minute load average, the
/// closest unprivileged equivalent.
#[derive(Debug, Clone, Default)]
pub struct ProcVmstatSensor {
    stat_path: Option<PathBuf>,
    loadavg_path: Option<PathBuf>,
    prev: Option<CpuJiffies>,
}

impl ProcVmstatSensor {
    /// Creates a sensor reading the standard `/proc` files.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the file locations (for tests or containers).
    pub fn with_paths(stat: impl AsRef<Path>, loadavg: impl AsRef<Path>) -> Self {
        Self {
            stat_path: Some(stat.as_ref().to_path_buf()),
            loadavg_path: Some(loadavg.as_ref().to_path_buf()),
            prev: None,
        }
    }

    fn stat_path(&self) -> &Path {
        self.stat_path
            .as_deref()
            .unwrap_or_else(|| Path::new("/proc/stat"))
    }

    fn loadavg_path(&self) -> &Path {
        self.loadavg_path
            .as_deref()
            .unwrap_or_else(|| Path::new("/proc/loadavg"))
    }

    /// Takes one Eq. 2 availability measurement. The first call primes the
    /// jiffy counters and measures occupancy since boot.
    pub fn measure(&mut self) -> Result<f64, ProcError> {
        let now = parse_stat_cpu(&fs::read_to_string(self.stat_path())?)?;
        let la = parse_loadavg(&fs::read_to_string(self.loadavg_path())?)?;
        let base = self.prev.unwrap_or_default();
        let d = now.since(&base);
        self.prev = Some(now);
        let total = d.total();
        if total == 0 {
            return Ok(1.0);
        }
        let tf = total as f64;
        let reading = VmstatReading {
            // nice + iowait time is obtainable by a full-priority process.
            idle: (d.idle + d.iowait + d.nice) as f64 / tf,
            user: d.user as f64 / tf,
            sys: (d.system + d.irq + d.softirq) as f64 / tf,
            smoothed_rp: la.one,
        };
        Ok(availability_from_vmstat(&reading))
    }
}

/// Parses the `utime`/`stime` jiffy counters of this process out of
/// `/proc/self/stat` content (fields 14 and 15, counting from 1; the comm
/// field may contain spaces and parentheses, so parsing anchors on the
/// *last* `)`).
pub fn parse_self_stat_cpu_jiffies(text: &str) -> Result<u64, ProcError> {
    let after = text
        .rfind(')')
        .map(|i| &text[i + 1..])
        .ok_or_else(|| ProcError::Parse("no comm field in self stat".into()))?;
    let fields: Vec<&str> = after.split_whitespace().collect();
    // After the comm field, utime is field index 11 and stime 12
    // (state is index 0).
    let utime: u64 = fields
        .get(11)
        .ok_or_else(|| ProcError::Parse("stat too short for utime".into()))?
        .parse()
        .map_err(|e| ProcError::Parse(format!("bad utime: {e}")))?;
    let stime: u64 = fields
        .get(12)
        .ok_or_else(|| ProcError::Parse("stat too short for stime".into()))?
        .parse()
        .map_err(|e| ProcError::Parse(format!("bad stime: {e}")))?;
    Ok(utime + stime)
}

/// Runs a real spinning CPU probe on the live host: busy-loops for
/// `cpu_seconds` of *CPU time* (measured via `/proc/self/stat`) and
/// reports the ratio of CPU time consumed to wall-clock time elapsed —
/// the NWS probe, for real.
///
/// `max_wall` bounds the spin on a saturated machine. Jiffy granularity is
/// typically 10 ms, so probes shorter than ~0.2 s are noisy.
///
/// # Errors
///
/// Fails when `/proc/self/stat` is unreadable (non-Linux platforms).
pub fn spin_probe(cpu_seconds: f64, max_wall: f64) -> Result<f64, ProcError> {
    assert!(
        cpu_seconds > 0.0 && cpu_seconds <= max_wall,
        "bad probe budget"
    );
    let hz = 100.0; // USER_HZ is 100 on every mainstream Linux
    let read_jiffies = || -> Result<u64, ProcError> {
        parse_self_stat_cpu_jiffies(&fs::read_to_string("/proc/self/stat")?)
    };
    let start_jiffies = read_jiffies()?;
    let start = std::time::Instant::now();
    let target = (cpu_seconds * hz).round() as u64;
    let mut spin: f64 = 1.000001;
    loop {
        // A page of arithmetic per poll keeps the syscall rate low.
        for _ in 0..100_000 {
            spin = spin.mul_add(1.000000001, 1e-12);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let used = read_jiffies()? - start_jiffies;
        if used >= target || elapsed >= max_wall {
            std::hint::black_box(spin);
            let cpu = used as f64 / hz;
            return Ok((cpu / elapsed.max(1e-9)).clamp(0.0, 1.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_loadavg_typical_line() {
        let info = parse_loadavg("0.52 0.58 0.59 1/467 12345\n").unwrap();
        assert_eq!(info.one, 0.52);
        assert_eq!(info.five, 0.58);
        assert_eq!(info.fifteen, 0.59);
        assert_eq!(info.running, 1);
        assert_eq!(info.total, 467);
    }

    #[test]
    fn parse_loadavg_rejects_garbage() {
        assert!(parse_loadavg("").is_err());
        assert!(parse_loadavg("a b c 1/2 3").is_err());
        assert!(parse_loadavg("0.1 0.2 0.3 nope 5").is_err());
        assert!(parse_loadavg("0.1 0.2").is_err());
    }

    #[test]
    fn parse_stat_cpu_line() {
        let text = "cpu  100 20 30 800 40 5 6 0 0 0\ncpu0 50 10 15 400 20 2 3 0 0 0\n";
        let j = parse_stat_cpu(text).unwrap();
        assert_eq!(j.user, 100);
        assert_eq!(j.nice, 20);
        assert_eq!(j.system, 30);
        assert_eq!(j.idle, 800);
        assert_eq!(j.iowait, 40);
        assert_eq!(j.irq, 5);
        assert_eq!(j.softirq, 6);
        assert_eq!(j.total(), 1001);
    }

    #[test]
    fn parse_stat_requires_cpu_line() {
        assert!(parse_stat_cpu("intr 1 2 3\n").is_err());
        assert!(parse_stat_cpu("cpu 1 2\n").is_err());
    }

    #[test]
    fn jiffy_differencing() {
        let a = CpuJiffies {
            user: 100,
            idle: 900,
            ..Default::default()
        };
        let b = CpuJiffies {
            user: 150,
            idle: 950,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.user, 50);
        assert_eq!(d.idle, 50);
        // Counter reset (reboot): saturates instead of underflowing.
        let r = a.since(&b);
        assert_eq!(r.user, 0);
    }

    #[test]
    fn sensors_from_fixture_files() {
        let dir = std::env::temp_dir().join("nws-proc-fixture");
        std::fs::create_dir_all(&dir).unwrap();
        let la = dir.join("loadavg");
        let st = dir.join("stat");
        std::fs::write(&la, "1.00 0.80 0.60 2/100 999\n").unwrap();
        std::fs::write(&st, "cpu 500 0 100 400 0 0 0 0 0 0\n").unwrap();

        let load_sensor = ProcLoadAvgSensor::with_path(&la);
        let avail = load_sensor.measure().unwrap();
        assert!((avail - 0.5).abs() < 1e-9);

        let mut vm = ProcVmstatSensor::with_paths(&st, &la);
        // First call measures since boot: user 0.5, sys 0.1, idle 0.4,
        // rp = 1.0 → avail = 0.4 + 0.5/2 + 0.5*0.1/2 = 0.675.
        let v = vm.measure().unwrap();
        assert!((v - 0.675).abs() < 1e-9, "v = {v}");

        // Second interval fully idle.
        std::fs::write(&st, "cpu 500 0 100 1400 0 0 0 0 0 0\n").unwrap();
        let v2 = vm.measure().unwrap();
        assert!(v2 > 0.95, "v2 = {v2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_self_stat_handles_spacey_comm() {
        // comm contains spaces and a parenthesis: parsing must anchor on
        // the LAST ')'.
        let line = "1234 (weird (name) x) S 1 1 1 0 -1 4194560 100 0 0 0                     250 50 0 0 20 0 1 0 12345 1000000 100 18446744073709551615";
        let j = parse_self_stat_cpu_jiffies(line).unwrap();
        assert_eq!(j, 300); // utime 250 + stime 50
    }

    #[test]
    fn parse_self_stat_rejects_garbage() {
        assert!(parse_self_stat_cpu_jiffies("no parens here").is_err());
        assert!(parse_self_stat_cpu_jiffies("1 (x) S 1 2").is_err());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_spin_probe_measures_occupancy() {
        // A short real probe on this machine: occupancy must be a sane
        // fraction (the machine may be busy, so only a loose lower bound).
        let occ = spin_probe(0.2, 3.0).expect("linux /proc available");
        assert!((0.0..=1.0).contains(&occ));
        assert!(occ > 0.02, "probe starved: {occ}");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_proc_files_are_readable() {
        let s = ProcLoadAvgSensor::new();
        let a = s.measure().unwrap();
        assert!((0.0..=1.0).contains(&a));
        let mut vm = ProcVmstatSensor::new();
        let v = vm.measure().unwrap();
        assert!((0.0..=1.0).contains(&v));
    }
}
