//! CPU availability sensors — the measurement half of the paper.
//!
//! Section 2 evaluates three ways of measuring the CPU fraction a newly
//! created, full-priority Unix process could obtain:
//!
//! 1. [`LoadAvgSensor`] (Eq. 1): reads the 1-minute Unix load average and
//!    reports `1 / (load + 1)` — the fair share of a CPU with `load`
//!    runnable competitors.
//! 2. [`VmstatSensor`] (Eq. 2): reads user/sys/idle occupancy and the
//!    run-queue length and reports
//!    `idle + user/(rp+1) + w·sys/(rp+1)` with `w = user`, the rationale
//!    being that a new process is entitled to all idle time, a fair share
//!    of user time, and a share of system time proportional to how much of
//!    the system time is serving user processes (rather than, say, gateway
//!    packet interrupts).
//! 3. [`HybridSensor`]: computes both of the above every 10 s, runs a 1.5 s
//!    full-priority CPU **probe** once a minute, adopts whichever passive
//!    method lands closest to the probe, and carries the probe-minus-method
//!    difference forward as a **bias** — the only way to see through
//!    `nice`-level background load.
//!
//! [`TestProcess`] is the ground-truth oracle: a 10-second (or 5-minute)
//! full-priority CPU-bound process whose `cpu_time / wall_time` ratio
//! defines measurement error (Eq. 3).
//!
//! The [`proc`] module applies the same two passive formulas to a live
//! Linux host via `/proc/loadavg` and `/proc/stat`, so the library is
//! usable as a real monitor, not only against the simulator.

pub mod hybrid;
pub mod loadavg_sensor;
pub mod proc;
pub mod source;
pub mod test_process;
pub mod vmstat_sensor;

/// A passive CPU availability sensor over a simulated host.
///
/// Implemented by the two non-intrusive methods ([`LoadAvgSensor`],
/// [`VmstatSensor`]) and by the hybrid's passive path. The hybrid's probe
/// cycle needs `&mut Host` (it runs a process) and therefore lives outside
/// this trait, on [`HybridSensor::measure_with_probe`].
pub trait AvailabilitySensor {
    /// The method's display name.
    fn method_name(&self) -> &'static str;

    /// Takes one availability measurement in `[0, 1]`.
    fn measure_availability(&mut self, host: &nws_sim::Host) -> f64;
}

impl AvailabilitySensor for LoadAvgSensor {
    fn method_name(&self) -> &'static str {
        self.name()
    }

    fn measure_availability(&mut self, host: &nws_sim::Host) -> f64 {
        self.measure(host)
    }
}

impl AvailabilitySensor for VmstatSensor {
    fn method_name(&self) -> &'static str {
        self.name()
    }

    fn measure_availability(&mut self, host: &nws_sim::Host) -> f64 {
        self.measure(host)
    }
}

impl AvailabilitySensor for HybridSensor {
    fn method_name(&self) -> &'static str {
        self.name()
    }

    fn measure_availability(&mut self, host: &nws_sim::Host) -> f64 {
        self.measure(host)
    }
}

pub use hybrid::{HybridConfig, HybridSensor, Method, ProbeOutcome};
pub use loadavg_sensor::{availability_from_load, LoadAvgSensor};
pub use source::SensorSource;
pub use test_process::TestProcess;
pub use vmstat_sensor::{availability_from_vmstat, VmstatReading, VmstatSensor};

use nws_runtime::Cadence;

/// Sensor cadence used throughout the paper: one measurement every 10 s.
/// Derived from the shared [`Cadence::PAPER`] schedule the event engine
/// runs on — kept as a named constant for call sites that predate it.
pub const MEASUREMENT_PERIOD: f64 = Cadence::PAPER.measurement_period;

/// Hybrid probe cadence: once per minute (from [`Cadence::PAPER`]).
pub const PROBE_PERIOD: f64 = Cadence::PAPER.probe_period;

/// Hybrid probe duration: 1.5 s ("the shortest probe duration that is
/// useful"); overhead `1.5/60 = 2.5 %` (from [`Cadence::PAPER`]).
pub const PROBE_DURATION: f64 = Cadence::PAPER.probe_duration;

/// Duration of the short test process (Tables 1–3).
pub const TEST_DURATION_SHORT: f64 = 10.0;

/// Duration of the medium-term test process (Table 6): 5 minutes.
pub const TEST_DURATION_MEDIUM: f64 = 300.0;

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn sensors_compose_behind_the_trait() {
        let mut host = nws_sim::Host::new("box", 4);
        host.advance(120.0);
        let mut sensors: Vec<Box<dyn AvailabilitySensor>> = vec![
            Box::new(LoadAvgSensor::new()),
            Box::new(VmstatSensor::new()),
            Box::new(HybridSensor::default()),
        ];
        let mut names = Vec::new();
        for s in sensors.iter_mut() {
            let a = s.measure_availability(&host);
            assert!((0.0..=1.0).contains(&a), "{}: {a}", s.method_name());
            names.push(s.method_name());
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 3, "method names must be distinct");
    }
}
