//! Property-based tests for the statistics substrate.

use nws_stats::{
    autocorrelation, autocovariance, autocovariance_fft, autocovariance_naive,
    clamped_autocorrelation, fft_inplace, fgn_autocovariance, ifft_inplace, linear_fit,
    periodogram, Complex, DaviesHarte, Distribution, Exponential, LogNormal, Pareto, Rng, Uniform,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn fft_ifft_roundtrip(seed in any::<u64>(), log_n in 0u32..10) {
        let n = 1usize << log_n;
        let mut rng = Rng::new(seed);
        let original: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let mut data = original.clone();
        fft_inplace(&mut data);
        ifft_inplace(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_is_linear(seed in any::<u64>(), scale in -5.0f64..5.0) {
        let n = 64;
        let mut rng = Rng::new(seed);
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(rng.next_f64(), 0.0)).collect();
        let mut fx = x.clone();
        fft_inplace(&mut fx);
        let mut sx: Vec<Complex> = x.iter().map(|z| z.scale(scale)).collect();
        fft_inplace(&mut sx);
        for (a, b) in sx.iter().zip(&fx) {
            prop_assert!((a.re - scale * b.re).abs() < 1e-7);
            prop_assert!((a.im - scale * b.im).abs() < 1e-7);
        }
    }

    #[test]
    fn periodogram_is_nonnegative(seed in any::<u64>(), n in 2usize..200) {
        let mut rng = Rng::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        for (lambda, power) in periodogram(&x) {
            prop_assert!(power >= 0.0);
            prop_assert!(lambda > 0.0 && lambda <= std::f64::consts::PI + 1e-12);
        }
    }

    #[test]
    fn fgn_autocovariance_is_symmetric_psd_shape(h in 0.05f64..0.95) {
        // gamma(0) = 1 and |gamma(k)| <= 1 for all k.
        prop_assert_eq!(fgn_autocovariance(h, 0), 1.0);
        for k in 1..50 {
            let g = fgn_autocovariance(h, k);
            prop_assert!(g.abs() <= 1.0 + 1e-12, "gamma({k}) = {g}");
        }
        // Monotone decay in magnitude beyond lag 1 for H > 1/2.
        if h > 0.55 {
            let mut prev = fgn_autocovariance(h, 1);
            for k in 2..20 {
                let g = fgn_autocovariance(h, k);
                prop_assert!(g <= prev + 1e-12);
                prev = g;
            }
        }
    }

    #[test]
    fn davies_harte_is_deterministic_and_sane(h in 0.1f64..0.9, seed in any::<u64>()) {
        let gen = DaviesHarte::new(h).expect("valid H");
        let a = gen.sample(256, &mut Rng::new(seed)).expect("sample");
        let b = gen.sample(256, &mut Rng::new(seed)).expect("sample");
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| v.is_finite()));
        // Unit-variance process: sample std within a loose band.
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        let var = a.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / a.len() as f64;
        prop_assert!(var > 0.2 && var < 5.0, "var = {var}");
    }

    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        n in 2usize..50,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = linear_fit(&xs, &ys).expect("non-degenerate");
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    #[test]
    fn distributions_respect_support(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let u = Uniform::new(2.0, 3.0);
        let e = Exponential::new(0.5);
        let p = Pareto::new(1.5, 4.0).with_cap(100.0);
        let l = LogNormal::new(0.0, 1.0);
        for _ in 0..200 {
            let x = u.sample(&mut rng);
            prop_assert!((2.0..3.0).contains(&x));
            prop_assert!(e.sample(&mut rng) > 0.0);
            let y = p.sample(&mut rng);
            prop_assert!((4.0..=100.0).contains(&y));
            prop_assert!(l.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn fft_acf_matches_naive_on_random_series(
        seed in any::<u64>(),
        n in 1usize..600,
        lag_frac in 0.0f64..1.3,
    ) {
        // Both paths must agree on whether the input is answerable at all
        // (max_lag may land on either side of n) and, when it is, on every
        // lag to well under the documented 1e-9 bound.
        let mut rng = Rng::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
        let max_lag = (n as f64 * lag_frac) as usize;
        let naive = autocovariance_naive(&x, max_lag);
        let fft = autocovariance_fft(&x, max_lag);
        match (naive, fft) {
            (None, None) => prop_assert!(max_lag >= n),
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.len(), max_lag + 1);
                prop_assert_eq!(a.len(), b.len());
                for (k, (p, q)) in a.iter().zip(&b).enumerate() {
                    prop_assert!((p - q).abs() < 1e-9, "lag {k}: {p} vs {q}");
                }
            }
            (a, b) => prop_assert!(
                false,
                "paths disagree on answerability: naive={} fft={}",
                a.is_some(),
                b.is_some()
            ),
        }
    }

    #[test]
    fn fft_acf_matches_naive_on_constant_and_spiked_series(
        value in -10.0f64..10.0,
        n in 2usize..300,
        spike in proptest::option::of(0usize..300),
    ) {
        // Constant series (zero variance) and constant-with-one-spike
        // series (near-degenerate) are where cancellation differs most
        // between the direct sum and the FFT round trip.
        let mut x = vec![value; n];
        if let Some(i) = spike {
            x[i % n] += 5.0;
        }
        let max_lag = n - 1;
        let a = autocovariance_naive(&x, max_lag).expect("max_lag < n");
        let b = autocovariance_fft(&x, max_lag).expect("max_lag < n");
        for (k, (p, q)) in a.iter().zip(&b).enumerate() {
            prop_assert!((p - q).abs() < 1e-9, "lag {k}: {p} vs {q}");
        }
    }

    #[test]
    fn dispatching_acf_always_matches_the_naive_reference(
        seed in any::<u64>(),
        n in 1usize..400,
        max_lag in 0usize..400,
    ) {
        // The public entry point may take either path; whichever it takes,
        // the answer must match the reference.
        let mut rng = Rng::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let via_dispatch = autocovariance(&x, max_lag);
        let reference = autocovariance_naive(&x, max_lag);
        match (via_dispatch, reference) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                for (k, (p, q)) in a.iter().zip(&b).enumerate() {
                    prop_assert!((p - q).abs() < 1e-9, "lag {k}: {p} vs {q}");
                }
            }
            _ => prop_assert!(false, "dispatch changed answerability"),
        }
    }

    #[test]
    fn clamped_acf_answers_whenever_the_series_varies(
        seed in any::<u64>(),
        n in 3usize..200,
        max_lag in 0usize..1000,
    ) {
        let mut rng = Rng::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let rho = clamped_autocorrelation(&x, max_lag).expect("random series varies");
        prop_assert_eq!(rho.len(), max_lag.min(n - 2) + 1);
        prop_assert!((rho[0] - 1.0).abs() < 1e-12);
        // And it never answers more lags than the unclamped call would.
        if let Some(full) = autocorrelation(&x, max_lag) {
            prop_assert_eq!(full.len(), rho.len());
        }
    }

    #[test]
    fn acf_of_shuffled_data_loses_structure(seed in any::<u64>()) {
        // A strongly trending series has rho(1) ~ 1; value order matters.
        let n = 400usize;
        let trend: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let rho_trend = autocorrelation(&trend, 1).expect("long enough")[1];
        prop_assert!(rho_trend > 0.95);
        // Pseudo-shuffle by striding with a coprime step.
        let mut rng = Rng::new(seed);
        let step = 2 * (rng.below(100) as usize) + 101; // odd, > n/4
        let shuffled: Vec<f64> = (0..n).map(|i| trend[(i * step) % n]).collect();
        let rho_shuf = autocorrelation(&shuffled, 1).expect("long enough")[1];
        prop_assert!(rho_shuf < rho_trend);
    }
}
