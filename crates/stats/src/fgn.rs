//! Exact fractional Gaussian noise (fGn) generation.
//!
//! fGn is *the* reference self-similar stationary process: a Gaussian series
//! with autocovariance
//!
//! `γ(k) = (σ²/2) (|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H})`,
//!
//! whose partial sums form fractional Brownian motion with Hurst parameter
//! `H`. The paper (and Dinda & O'Halloran, its reference \[10\]) characterizes
//! host load as self-similar with `H ≈ 0.7`; we use fGn for two purposes:
//!
//! 1. **Validation** — the Hurst estimators in [`crate::hurst`] are tested
//!    against fGn with known `H` before being trusted on simulated traces.
//! 2. **Synthetic load** — an alternative (non-mechanistic) load driver for
//!    the simulator, exercising forecasting on textbook long-range-dependent
//!    input.
//!
//! Two generators are provided:
//! - [`Hosking`]: the exact Durbin–Levinson recursion, O(n²) time, O(n)
//!   memory. Reference implementation.
//! - [`DaviesHarte`]: circulant embedding sampled through the FFT,
//!   O(n log n). Identical distribution, asymptotically cheaper; the
//!   workhorse for week-long traces.

use crate::fft::{fft_inplace, next_pow2, Complex};
use crate::rng::Rng;
use std::fmt;

/// Errors raised by fGn generator construction.
#[derive(Debug, Clone, PartialEq)]
pub enum FgnError {
    /// The Hurst parameter must lie strictly inside `(0, 1)`.
    BadHurst(f64),
    /// The requested length was zero.
    EmptyLength,
    /// The circulant embedding produced a (materially) negative eigenvalue.
    ///
    /// For fGn this cannot happen in exact arithmetic; it guards against
    /// floating-point catastrophe for extreme parameters.
    NotEmbeddable {
        /// The offending eigenvalue.
        eigenvalue: f64,
    },
}

impl fmt::Display for FgnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FgnError::BadHurst(h) => write!(f, "Hurst parameter {h} outside (0, 1)"),
            FgnError::EmptyLength => write!(f, "requested zero-length fGn sample"),
            FgnError::NotEmbeddable { eigenvalue } => {
                write!(f, "circulant embedding failed: eigenvalue {eigenvalue} < 0")
            }
        }
    }
}

impl std::error::Error for FgnError {}

fn check_hurst(h: f64) -> Result<(), FgnError> {
    if h.is_finite() && h > 0.0 && h < 1.0 {
        Ok(())
    } else {
        Err(FgnError::BadHurst(h))
    }
}

/// Theoretical fGn autocovariance `γ(k)` for unit variance.
///
/// `γ(0) = 1`; for `H > 1/2` the covariances are positive and decay like
/// `k^{2H−2}` (long-range dependence); for `H < 1/2` they are negative
/// beyond lag 0; for `H = 1/2` the process is white noise.
pub fn fgn_autocovariance(h: f64, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let k = k as f64;
    let two_h = 2.0 * h;
    0.5 * ((k + 1.0).powf(two_h) - 2.0 * k.powf(two_h) + (k - 1.0).powf(two_h))
}

/// Exact fGn sampling via the Hosking (Durbin–Levinson) recursion.
///
/// Generates each point conditioned on the full past using the innovations
/// form of the Gaussian process; O(n²) time. Use [`DaviesHarte`] for long
/// series.
#[derive(Debug, Clone)]
pub struct Hosking {
    h: f64,
}

impl Hosking {
    /// Creates a generator for Hurst parameter `h ∈ (0, 1)`.
    pub fn new(h: f64) -> Result<Self, FgnError> {
        check_hurst(h)?;
        Ok(Self { h })
    }

    /// The generator's Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.h
    }

    /// Draws `n` points of unit-variance fGn.
    pub fn sample(&self, n: usize, rng: &mut Rng) -> Result<Vec<f64>, FgnError> {
        if n == 0 {
            return Err(FgnError::EmptyLength);
        }
        let gamma: Vec<f64> = (0..n).map(|k| fgn_autocovariance(self.h, k)).collect();
        let mut x = Vec::with_capacity(n);
        // Durbin–Levinson state: phi holds the AR coefficients of the
        // best linear predictor of x_k from x_{k-1}..x_0; v is the
        // innovation variance.
        let mut phi: Vec<f64> = Vec::with_capacity(n);
        let mut phi_prev: Vec<f64> = Vec::with_capacity(n);
        let mut v = gamma[0];
        x.push(v.sqrt() * rng.next_standard_normal());
        for k in 1..n {
            // Reflection coefficient phi_{k,k}.
            let mut acc = gamma[k];
            for (j, &p) in phi_prev.iter().enumerate() {
                acc -= p * gamma[k - 1 - j];
            }
            let rho = acc / v;
            phi.clear();
            for (j, &p) in phi_prev.iter().enumerate() {
                phi.push(p - rho * phi_prev[k - 2 - j]);
            }
            phi.push(rho);
            v *= 1.0 - rho * rho;
            // v can only lose mass; clamp tiny negatives from rounding.
            if v < 0.0 {
                v = 0.0;
            }
            // Conditional mean of x_k given the past.
            let mu: f64 = phi.iter().enumerate().map(|(j, &p)| p * x[k - 1 - j]).sum();
            x.push(mu + v.sqrt() * rng.next_standard_normal());
            std::mem::swap(&mut phi, &mut phi_prev);
        }
        Ok(x)
    }
}

/// Exact fGn sampling via Davies–Harte circulant embedding.
///
/// Embeds the `n × n` Toeplitz covariance in a `2m × 2m` circulant matrix
/// whose eigenvalues are the FFT of its first row, then synthesizes a
/// Gaussian vector with exactly that covariance using one FFT. O(n log n);
/// the preferred generator for week-long (10⁵-point) traces.
///
/// # Examples
///
/// ```
/// use nws_stats::{DaviesHarte, Rng, hurst_rs};
///
/// let gen = DaviesHarte::new(0.8).unwrap();
/// let x = gen.sample(8192, &mut Rng::new(7)).unwrap();
/// // The R/S estimator recovers the Hurst parameter we asked for.
/// let est = hurst_rs(&x, 10).unwrap();
/// assert!((est.h - 0.8).abs() < 0.1, "H = {}", est.h);
/// ```
#[derive(Debug, Clone)]
pub struct DaviesHarte {
    h: f64,
}

impl DaviesHarte {
    /// Creates a generator for Hurst parameter `h ∈ (0, 1)`.
    pub fn new(h: f64) -> Result<Self, FgnError> {
        check_hurst(h)?;
        Ok(Self { h })
    }

    /// The generator's Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.h
    }

    /// Draws `n` points of unit-variance fGn.
    pub fn sample(&self, n: usize, rng: &mut Rng) -> Result<Vec<f64>, FgnError> {
        if n == 0 {
            return Err(FgnError::EmptyLength);
        }
        if n == 1 {
            return Ok(vec![rng.next_standard_normal()]);
        }
        // Circulant first row: gamma(0..=half), then mirrored tail.
        let half = next_pow2(n); // m/2, so the embedding is m = 2*half long
        let m = 2 * half;
        let mut row: Vec<Complex> = Vec::with_capacity(m);
        for k in 0..=half {
            row.push(Complex::new(fgn_autocovariance(self.h, k), 0.0));
        }
        for k in (1..half).rev() {
            row.push(Complex::new(fgn_autocovariance(self.h, k), 0.0));
        }
        debug_assert_eq!(row.len(), m);
        fft_inplace(&mut row);
        // Eigenvalues of the circulant; exact fGn embeddings are PSD.
        let mut lambda = Vec::with_capacity(m);
        for z in &row {
            let l = z.re;
            if l < -1e-8 {
                return Err(FgnError::NotEmbeddable { eigenvalue: l });
            }
            lambda.push(l.max(0.0));
        }
        // Synthesize the frequency-domain Gaussian vector W with
        // E[|W_k|^2] chosen so that FFT(W) has the embedded covariance.
        let mut w = vec![Complex::ZERO; m];
        let mf = m as f64;
        w[0] = Complex::new((lambda[0] / mf).sqrt() * rng.next_standard_normal(), 0.0);
        w[half] = Complex::new((lambda[half] / mf).sqrt() * rng.next_standard_normal(), 0.0);
        for k in 1..half {
            let scale = (lambda[k] / (2.0 * mf)).sqrt();
            let re = scale * rng.next_standard_normal();
            let im = scale * rng.next_standard_normal();
            w[k] = Complex::new(re, im);
            w[m - k] = Complex::new(re, -im);
        }
        fft_inplace(&mut w);
        Ok(w.into_iter().take(n).map(|z| z.re).collect())
    }
}

/// Integrates fGn into fractional Brownian motion: `B_k = Σ_{i<=k} x_i`.
pub fn fbm_from_fgn(fgn: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    fgn.iter()
        .map(|&x| {
            acc += x;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acf::autocorrelation;
    use crate::descriptive::{mean, population_variance};

    #[test]
    fn autocovariance_special_cases() {
        // H = 1/2 is white noise: gamma(k) = 0 for k > 0.
        for k in 1..10 {
            assert!(fgn_autocovariance(0.5, k).abs() < 1e-12);
        }
        assert_eq!(fgn_autocovariance(0.5, 0), 1.0);
        // H > 1/2: positive correlations.
        assert!(fgn_autocovariance(0.8, 1) > 0.0);
        assert!(fgn_autocovariance(0.8, 10) > 0.0);
        // H < 1/2: negative lag-1 correlation.
        assert!(fgn_autocovariance(0.3, 1) < 0.0);
    }

    #[test]
    fn autocovariance_decays_like_power_law() {
        // gamma(k) ~ H(2H-1) k^{2H-2} for large k.
        let h = 0.75;
        let k: f64 = 1000.0;
        let approx = h * (2.0 * h - 1.0) * k.powf(2.0 * h - 2.0);
        let exact = fgn_autocovariance(h, 1000);
        assert!((approx - exact).abs() / exact < 0.01);
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(Hosking::new(0.0).is_err());
        assert!(Hosking::new(1.0).is_err());
        assert!(Hosking::new(f64::NAN).is_err());
        assert!(DaviesHarte::new(-0.1).is_err());
        assert!(matches!(
            Hosking::new(0.7).unwrap().sample(0, &mut Rng::new(1)),
            Err(FgnError::EmptyLength)
        ));
    }

    #[test]
    fn hosking_white_noise_case() {
        let g = Hosking::new(0.5).unwrap();
        let x = g.sample(5000, &mut Rng::new(41)).unwrap();
        let rho = autocorrelation(&x, 5).unwrap();
        for &r in &rho[1..] {
            assert!(r.abs() < 0.05, "rho = {r}");
        }
        assert!((population_variance(&x).unwrap() - 1.0).abs() < 0.1);
    }

    #[test]
    fn hosking_acf_matches_theory() {
        let h = 0.8;
        let g = Hosking::new(h).unwrap();
        let x = g.sample(8000, &mut Rng::new(43)).unwrap();
        let rho = autocorrelation(&x, 10).unwrap();
        for (k, &sample) in rho.iter().enumerate().skip(1) {
            let theory = fgn_autocovariance(h, k);
            assert!(
                (sample - theory).abs() < 0.08,
                "lag {k}: sample {sample} vs theory {theory}"
            );
        }
    }

    #[test]
    fn davies_harte_acf_matches_theory() {
        let h = 0.75;
        let g = DaviesHarte::new(h).unwrap();
        let x = g.sample(16384, &mut Rng::new(47)).unwrap();
        assert!((mean(&x).unwrap()).abs() < 0.2);
        assert!((population_variance(&x).unwrap() - 1.0).abs() < 0.15);
        let rho = autocorrelation(&x, 10).unwrap();
        for (k, &sample) in rho.iter().enumerate().skip(1) {
            let theory = fgn_autocovariance(h, k);
            assert!(
                (sample - theory).abs() < 0.08,
                "lag {k}: sample {sample} vs theory {theory}"
            );
        }
    }

    #[test]
    fn davies_harte_and_hosking_agree_statistically() {
        // Same H, different algorithms: lag-1 autocorrelations should agree.
        let h = 0.7;
        let n = 8192;
        let xh = Hosking::new(h)
            .unwrap()
            .sample(n, &mut Rng::new(51))
            .unwrap();
        let xd = DaviesHarte::new(h)
            .unwrap()
            .sample(n, &mut Rng::new(52))
            .unwrap();
        let r1h = autocorrelation(&xh, 1).unwrap()[1];
        let r1d = autocorrelation(&xd, 1).unwrap()[1];
        assert!((r1h - r1d).abs() < 0.08, "hosking {r1h} vs dh {r1d}");
    }

    #[test]
    fn generators_are_deterministic() {
        let g = DaviesHarte::new(0.7).unwrap();
        let a = g.sample(256, &mut Rng::new(7)).unwrap();
        let b = g.sample(256, &mut Rng::new(7)).unwrap();
        assert_eq!(a, b);
        let g2 = Hosking::new(0.7).unwrap();
        let c = g2.sample(256, &mut Rng::new(7)).unwrap();
        let d = g2.sample(256, &mut Rng::new(7)).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn single_point_sample() {
        let x = DaviesHarte::new(0.6)
            .unwrap()
            .sample(1, &mut Rng::new(3))
            .unwrap();
        assert_eq!(x.len(), 1);
    }

    #[test]
    fn fbm_is_cumulative_sum() {
        let b = fbm_from_fgn(&[1.0, -0.5, 2.0]);
        assert_eq!(b, vec![1.0, 0.5, 2.5]);
        assert!(fbm_from_fgn(&[]).is_empty());
    }

    #[test]
    fn fbm_selfsimilar_scaling() {
        // Var(B_n) ~ n^{2H}: compare variance growth over dyadic horizons.
        let h = 0.8;
        let n = 16384;
        // Average over several sample paths to tame estimator noise.
        let mut ratio_sum = 0.0;
        let paths = 8;
        for seed in 0..paths {
            let x = DaviesHarte::new(h)
                .unwrap()
                .sample(n, &mut Rng::new(100 + seed))
                .unwrap();
            let b = fbm_from_fgn(&x);
            // E[B_k^2] = k^{2H}; estimate from disjoint increments at two
            // scales: var of increments over span s scales like s^{2H}.
            let var_at = |s: usize| {
                let incs: Vec<f64> = (0..n / s)
                    .map(|i| {
                        let start = if i == 0 { 0.0 } else { b[i * s - 1] };
                        b[(i + 1) * s - 1] - start
                    })
                    .collect();
                population_variance(&incs).unwrap()
            };
            ratio_sum += (var_at(64) / var_at(8)).log2() / 3.0; // log ratio / log(8)
        }
        let est_2h = ratio_sum / paths as f64;
        assert!(
            (est_2h - 2.0 * h).abs() < 0.2,
            "estimated 2H = {est_2h}, expected {}",
            2.0 * h
        );
    }
}
