//! Deterministic pseudo-random number generation.
//!
//! The workspace deliberately implements its own generator instead of
//! depending on an external crate: every experiment in the paper
//! reproduction is seeded, and the tables must regenerate bit-identically
//! across runs and platforms. The generator is **xoshiro256++** (Blackman &
//! Vigna), seeded through **SplitMix64** so that small, human-chosen seeds
//! (0, 1, 2, …) still produce well-mixed initial states.

/// xoshiro256++ pseudo-random number generator.
///
/// Period `2^256 − 1`, 4×64-bit state, passes BigCrush. Not
/// cryptographically secure — it drives workload simulation only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed is acceptable, including 0: the state is expanded through
    /// SplitMix64, which never yields the all-zero xoshiro state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Used to give each simulated host / workload source its own stream so
    /// that adding a source to one host does not perturb another.
    pub fn fork(&mut self, label: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Rng::new(h ^ self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)` — safe for `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal variate via the Marsaglia polar method.
    pub fn next_standard_normal(&mut self) -> f64 {
        // The polar method produces pairs; we keep one per call and cache
        // nothing to keep the generator state a pure function of draws.
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = Rng::new(9);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng::new(123);
        let mut parent2 = Rng::new(123);
        let mut a1 = parent1.fork("host-a");
        let mut a2 = parent2.fork("host-a");
        // Same lineage → same stream.
        for _ in 0..16 {
            assert_eq!(a1.next_u64(), a2.next_u64());
        }
        // Different label → different stream.
        let mut parent3 = Rng::new(123);
        let mut b = parent3.fork("host-b");
        let mut a3 = Rng::new(123).fork("host-a");
        let same = (0..64).filter(|_| b.next_u64() == a3.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(13);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
