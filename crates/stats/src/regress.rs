//! Ordinary least squares line fitting.
//!
//! Figure 3's Hurst estimate is "a least-squares regression line for the
//! average log10(R(d)/S(d)) value for each value of log10(d)"; the slope of
//! that line is the Hurst parameter. This module provides the fit.

/// Result of fitting `y ≈ slope·x + intercept` by least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 when `y` is constant).
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a least-squares line through paired points.
///
/// Returns `None` when fewer than two points are supplied or all `x` values
/// coincide (the slope is undefined).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "linear_fit needs equal-length slices");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // y is constant: the flat line fits exactly.
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

/// Result of fitting `y ≈ b0 + b1·x1 + b2·x2` by least squares.
///
/// The two-predictor fit behind the transfer-time scenario (Vazhkudai &
/// Schopf regress transfer times on network load *and* endpoint
/// conditions rather than bandwidth alone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit2 {
    /// Fitted intercept `b0`.
    pub intercept: f64,
    /// Coefficient on the first predictor.
    pub b1: f64,
    /// Coefficient on the second predictor.
    pub b2: f64,
    /// Coefficient of determination in `[0, 1]` (1 when `y` is constant).
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit2 {
    /// Evaluates the fitted plane at `(x1, x2)`.
    pub fn predict(&self, x1: f64, x2: f64) -> f64 {
        self.intercept + self.b1 * x1 + self.b2 * x2
    }
}

/// Fits `y ≈ b0 + b1·x1 + b2·x2` by ordinary least squares, solving the
/// centered 2×2 normal equations directly.
///
/// Returns `None` when fewer than three points are supplied or the
/// predictors are (numerically) collinear — a constant predictor, or one
/// a linear function of the other — where the plane is undefined.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn linear_fit2(x1s: &[f64], x2s: &[f64], ys: &[f64]) -> Option<LinearFit2> {
    assert_eq!(x1s.len(), ys.len(), "linear_fit2 needs equal-length slices");
    assert_eq!(x2s.len(), ys.len(), "linear_fit2 needs equal-length slices");
    let n = ys.len();
    if n < 3 {
        return None;
    }
    let nf = n as f64;
    let m1 = x1s.iter().sum::<f64>() / nf;
    let m2 = x2s.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let (mut s11, mut s22, mut s12, mut s1y, mut s2y, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    for i in 0..n {
        let d1 = x1s[i] - m1;
        let d2 = x2s[i] - m2;
        let dy = ys[i] - my;
        s11 += d1 * d1;
        s22 += d2 * d2;
        s12 += d1 * d2;
        s1y += d1 * dy;
        s2y += d2 * dy;
        syy += dy * dy;
    }
    let det = s11 * s22 - s12 * s12;
    // Collinearity guard: the determinant of the centered Gram matrix is
    // at most s11·s22; reject fits where it has lost essentially all of
    // that scale to cancellation.
    if det.abs() <= 1e-12 * s11.max(1e-300) * s22.max(1e-300) || det == 0.0 {
        return None;
    }
    let b1 = (s22 * s1y - s12 * s2y) / det;
    let b2 = (s11 * s2y - s12 * s1y) / det;
    let intercept = my - b1 * m1 - b2 * m2;
    let r_squared = if syy == 0.0 {
        1.0 // y is constant: the flat plane fits exactly.
    } else {
        ((b1 * s1y + b2 * s2y) / syy).clamp(0.0, 1.0)
    };
    Some(LinearFit2 {
        intercept,
        b1,
        b2,
        r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 1.0).abs() < 0.1);
        assert!(fit.r_squared > 0.97 && fit.r_squared < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[], &[]).is_none());
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        // All x equal: vertical line, undefined slope.
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn constant_y_is_flat_fit() {
        let fit = linear_fit(&[0.0, 1.0, 2.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        linear_fit(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn exact_plane_recovered() {
        let x1 = [0.0, 1.0, 2.0, 3.0, 0.5, 2.5];
        let x2 = [1.0, 0.0, 2.0, 1.0, 2.0, 0.5];
        let ys: Vec<f64> = x1
            .iter()
            .zip(&x2)
            .map(|(&a, &b)| 1.5 + 2.0 * a - 3.0 * b)
            .collect();
        let fit = linear_fit2(&x1, &x2, &ys).unwrap();
        assert!((fit.intercept - 1.5).abs() < 1e-10);
        assert!((fit.b1 - 2.0).abs() < 1e-10);
        assert!((fit.b2 + 3.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
        assert!((fit.predict(4.0, 1.0) - 6.5).abs() < 1e-9);
    }

    #[test]
    fn second_predictor_improves_partial_fit() {
        // y depends on both predictors; the univariate fit on x1 alone
        // must explain less variance than the bivariate fit.
        let x1: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let x2: Vec<f64> = (0..40).map(|i| ((i * 3) % 11) as f64).collect();
        let ys: Vec<f64> = x1
            .iter()
            .zip(&x2)
            .map(|(&a, &b)| 0.5 + a - 0.8 * b)
            .collect();
        let uni = linear_fit(&x1, &ys).unwrap();
        let bi = linear_fit2(&x1, &x2, &ys).unwrap();
        assert!(bi.r_squared > 0.999);
        assert!(uni.r_squared < 0.9, "x1 alone should not explain y");
    }

    #[test]
    fn collinear_predictors_rejected() {
        let x1 = [1.0, 2.0, 3.0, 4.0];
        let x2: Vec<f64> = x1.iter().map(|&v| 2.0 * v + 1.0).collect();
        let ys = [0.5, 0.7, 0.2, 0.9];
        assert!(linear_fit2(&x1, &x2, &ys).is_none());
        // A constant predictor is degenerate too.
        assert!(linear_fit2(&x1, &[3.0; 4], &ys).is_none());
        // Too few points.
        assert!(linear_fit2(&[1.0, 2.0], &[0.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn constant_y_plane_is_flat() {
        let x1 = [0.0, 1.0, 2.0, 3.0];
        let x2 = [1.0, 0.0, 3.0, 2.0];
        let fit = linear_fit2(&x1, &x2, &[5.0; 4]).unwrap();
        assert!(fit.b1.abs() < 1e-12);
        assert!(fit.b2.abs() < 1e-12);
        assert!((fit.intercept - 5.0).abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }
}
