//! Ordinary least squares line fitting.
//!
//! Figure 3's Hurst estimate is "a least-squares regression line for the
//! average log10(R(d)/S(d)) value for each value of log10(d)"; the slope of
//! that line is the Hurst parameter. This module provides the fit.

/// Result of fitting `y ≈ slope·x + intercept` by least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 when `y` is constant).
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a least-squares line through paired points.
///
/// Returns `None` when fewer than two points are supplied or all `x` values
/// coincide (the slope is undefined).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "linear_fit needs equal-length slices");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // y is constant: the flat line fits exactly.
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 1.0).abs() < 0.1);
        assert!(fit.r_squared > 0.97 && fit.r_squared < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[], &[]).is_none());
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        // All x equal: vertical line, undefined slope.
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn constant_y_is_flat_fit() {
        let fit = linear_fit(&[0.0, 1.0, 2.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        linear_fit(&[1.0], &[1.0, 2.0]);
    }
}
