//! Sample autocorrelation and autocovariance.
//!
//! Figure 2 of the paper plots the first 360 autocorrelations of the CPU
//! availability series; the slow decay of that function is the paper's
//! first evidence of long-range dependence. We use the standard biased
//! estimator (normalizing by `n` rather than `n − lag`), which is the
//! conventional choice for ACF plots because it guarantees a positive
//! semi-definite autocovariance sequence.

/// Sample autocovariance at lags `0..=max_lag` (biased estimator).
///
/// `gamma(k) = (1/n) Σ_{t=1}^{n-k} (x_t − mean)(x_{t+k} − mean)`.
///
/// Returns `None` if the series is empty or `max_lag >= n`.
pub fn autocovariance(values: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    let n = values.len();
    if n == 0 || max_lag >= n {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = values.iter().map(|&v| v - mean).collect();
    let mut gamma = Vec::with_capacity(max_lag + 1);
    for k in 0..=max_lag {
        let mut acc = 0.0;
        for t in 0..n - k {
            acc += centered[t] * centered[t + k];
        }
        gamma.push(acc / n as f64);
    }
    Some(gamma)
}

/// Sample autocorrelation at lags `0..=max_lag`.
///
/// `rho(k) = gamma(k) / gamma(0)`, so `rho(0) == 1`. A constant series has
/// zero variance and no defined autocorrelation; returns `None` in that
/// case (and for the same degenerate inputs as [`autocovariance`]).
pub fn autocorrelation(values: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    let gamma = autocovariance(values, max_lag)?;
    let g0 = gamma[0];
    if g0 <= 0.0 {
        return None;
    }
    Some(gamma.iter().map(|&g| g / g0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn lag_zero_is_one() {
        let v = [1.0, 3.0, 2.0, 5.0, 4.0];
        let rho = autocorrelation(&v, 2).unwrap();
        assert!((rho[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocovariance_lag0_is_variance() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let gamma = autocovariance(&v, 0).unwrap();
        assert!((gamma[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let v: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rho = autocorrelation(&v, 3).unwrap();
        assert!(rho[1] < -0.9, "rho1 = {}", rho[1]);
        assert!(rho[2] > 0.9, "rho2 = {}", rho[2]);
    }

    #[test]
    fn white_noise_acf_near_zero() {
        let mut rng = Rng::new(21);
        let v: Vec<f64> = (0..20_000).map(|_| rng.next_f64()).collect();
        let rho = autocorrelation(&v, 20).unwrap();
        for (k, &r) in rho.iter().enumerate().skip(1) {
            // 95% band for white noise is ~1.96/sqrt(n) ≈ 0.014.
            assert!(r.abs() < 0.05, "rho[{k}] = {r}");
        }
    }

    #[test]
    fn smooth_series_acf_decays_slowly() {
        // A slowly varying series should stay highly correlated at small lags.
        let v: Vec<f64> = (0..2000).map(|i| (i as f64 / 300.0).sin()).collect();
        let rho = autocorrelation(&v, 10).unwrap();
        assert!(rho[1] > 0.99);
        assert!(rho[10] > 0.95);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(autocorrelation(&[], 0).is_none());
        assert!(autocorrelation(&[1.0, 2.0], 2).is_none()); // lag >= n
        assert!(autocorrelation(&[3.0, 3.0, 3.0], 1).is_none()); // constant
        assert!(autocovariance(&[3.0, 3.0], 1).is_some()); // covariance fine
    }

    #[test]
    fn biased_estimator_is_psd_at_lag_n_minus_1() {
        // With the biased estimator |rho(k)| <= 1 always holds.
        let v = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        let rho = autocorrelation(&v, 5).unwrap();
        for &r in &rho {
            assert!(r.abs() <= 1.0 + 1e-12);
        }
    }
}
