//! Sample autocorrelation and autocovariance.
//!
//! Figure 2 of the paper plots the first 360 autocorrelations of the CPU
//! availability series; the slow decay of that function is the paper's
//! first evidence of long-range dependence. We use the standard biased
//! estimator (normalizing by `n` rather than `n − lag`), which is the
//! conventional choice for ACF plots because it guarantees a positive
//! semi-definite autocovariance sequence.
//!
//! Two evaluation paths compute the same estimator:
//!
//! - [`autocovariance_naive`] — the direct O(n·max_lag) sum, kept as the
//!   reference implementation;
//! - [`autocovariance_fft`] — the Wiener–Khinchin route (FFT → power
//!   spectrum → inverse FFT), O(n log n) regardless of the lag count.
//!
//! [`autocovariance`] dispatches between them on problem size alone, so a
//! given input always takes the same path no matter the thread count.

use crate::fft::{fft_real, next_pow2};

/// Below this many lag-sum terms (`n · (max_lag + 1)`) the direct sum wins;
/// above it the FFT path does. Size-based only, so results never depend on
/// runtime configuration.
const FFT_DISPATCH_TERMS: usize = 1 << 17;

/// Sample autocovariance at lags `0..=max_lag` (biased estimator).
///
/// `gamma(k) = (1/n) Σ_{t=1}^{n-k} (x_t − mean)(x_{t+k} − mean)`.
///
/// Dispatches to the direct sum for small problems and the
/// Wiener–Khinchin FFT path for large ones; the two agree to ~1e-12
/// (pinned by proptest equivalence suites at 1e-9).
///
/// Returns `None` if the series is empty or `max_lag >= n`.
pub fn autocovariance(values: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    let n = values.len();
    if n == 0 || max_lag >= n {
        return None;
    }
    if n.saturating_mul(max_lag + 1) < FFT_DISPATCH_TERMS {
        autocovariance_naive(values, max_lag)
    } else {
        autocovariance_fft(values, max_lag)
    }
}

/// Direct-sum autocovariance: the O(n·max_lag) reference implementation
/// [`autocovariance`] is verified against.
pub fn autocovariance_naive(values: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    let n = values.len();
    if n == 0 || max_lag >= n {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = values.iter().map(|&v| v - mean).collect();
    let mut gamma = Vec::with_capacity(max_lag + 1);
    for k in 0..=max_lag {
        let mut acc = 0.0;
        for t in 0..n - k {
            acc += centered[t] * centered[t + k];
        }
        gamma.push(acc / n as f64);
    }
    Some(gamma)
}

/// Wiener–Khinchin autocovariance: zero-pad the centered series to a
/// power of two at least `n + max_lag` (so circular correlation never
/// wraps into the lags we keep), take the power spectrum with a
/// real-input FFT, and transform back.
///
/// The inverse step exploits that the power spectrum is real and even:
/// its inverse DFT equals `Re(FFT(S)) / L`, so both directions run as
/// half-length real transforms. Total work is O(n log n) independent of
/// `max_lag`, versus the direct sum's O(n·max_lag).
pub fn autocovariance_fft(values: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    let n = values.len();
    if n == 0 || max_lag >= n {
        return None;
    }
    let len = next_pow2((n + max_lag).max(2));
    let mean = values.iter().sum::<f64>() / n as f64;
    let mut padded = vec![0.0; len];
    for (slot, &v) in padded.iter_mut().zip(values) {
        *slot = v - mean;
    }
    // Power spectrum S_k = |X_k|² for k = 0..=L/2; S is even, so the
    // half spectrum determines all of it. The centered input buffer is
    // dead once the spectrum exists, so it doubles as the power buffer.
    let spectrum = fft_real(&padded);
    let mut power = padded;
    for (k, z) in spectrum.iter().enumerate() {
        let p = z.norm_sqr();
        power[k] = p;
        if k > 0 && k < len / 2 {
            power[len - k] = p;
        }
    }
    // gamma(k)·n = IDFT(S)[k] = Re(FFT(S))[k] / L — real-even input, so
    // one more real transform finishes the job. max_lag < L/2 always
    // holds here (L >= n + max_lag > 2·max_lag), so the half spectrum
    // covers every lag we need.
    let correlated = fft_real(&power);
    let norm = 1.0 / (len as f64 * n as f64);
    Some(correlated[..=max_lag].iter().map(|z| z.re * norm).collect())
}

/// Sample autocorrelation at lags `0..=max_lag`.
///
/// `rho(k) = gamma(k) / gamma(0)`, so `rho(0) == 1`. A constant series has
/// zero variance and no defined autocorrelation; returns `None` in that
/// case (and for the same degenerate inputs as [`autocovariance`]).
pub fn autocorrelation(values: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    let gamma = autocovariance(values, max_lag)?;
    let g0 = gamma[0];
    if g0 <= 0.0 {
        return None;
    }
    Some(gamma.iter().map(|&g| g / g0).collect())
}

/// Autocorrelation with the lag bound clamped to what the series can
/// support, so short (smoke-tier) series degrade to fewer lags instead of
/// yielding nothing.
///
/// The clamp keeps `max_lag <= n − 2`: the lag-(n−1) estimate rests on a
/// single product and only adds noise. Still returns `None` for empty or
/// constant series, where no autocorrelation is defined at any lag.
pub fn clamped_autocorrelation(values: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    autocorrelation(values, max_lag.min(values.len().saturating_sub(2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn lag_zero_is_one() {
        let v = [1.0, 3.0, 2.0, 5.0, 4.0];
        let rho = autocorrelation(&v, 2).unwrap();
        assert!((rho[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocovariance_lag0_is_variance() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let gamma = autocovariance(&v, 0).unwrap();
        assert!((gamma[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let v: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rho = autocorrelation(&v, 3).unwrap();
        assert!(rho[1] < -0.9, "rho1 = {}", rho[1]);
        assert!(rho[2] > 0.9, "rho2 = {}", rho[2]);
    }

    #[test]
    fn white_noise_acf_near_zero() {
        let mut rng = Rng::new(21);
        let v: Vec<f64> = (0..20_000).map(|_| rng.next_f64()).collect();
        let rho = autocorrelation(&v, 20).unwrap();
        for (k, &r) in rho.iter().enumerate().skip(1) {
            // 95% band for white noise is ~1.96/sqrt(n) ≈ 0.014.
            assert!(r.abs() < 0.05, "rho[{k}] = {r}");
        }
    }

    #[test]
    fn smooth_series_acf_decays_slowly() {
        // A slowly varying series should stay highly correlated at small lags.
        let v: Vec<f64> = (0..2000).map(|i| (i as f64 / 300.0).sin()).collect();
        let rho = autocorrelation(&v, 10).unwrap();
        assert!(rho[1] > 0.99);
        assert!(rho[10] > 0.95);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(autocorrelation(&[], 0).is_none());
        assert!(autocorrelation(&[1.0, 2.0], 2).is_none()); // lag >= n
        assert!(autocorrelation(&[3.0, 3.0, 3.0], 1).is_none()); // constant
        assert!(autocovariance(&[3.0, 3.0], 1).is_some()); // covariance fine
        assert!(autocovariance_fft(&[], 0).is_none());
        assert!(autocovariance_fft(&[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn biased_estimator_is_psd_at_lag_n_minus_1() {
        // With the biased estimator |rho(k)| <= 1 always holds.
        let v = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        let rho = autocorrelation(&v, 5).unwrap();
        for &r in &rho {
            assert!(r.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn fft_path_matches_naive_on_fixed_series() {
        let mut rng = Rng::new(91);
        for (n, max_lag) in [(1usize, 0usize), (2, 1), (5, 3), (64, 63), (500, 360)] {
            let v: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let naive = autocovariance_naive(&v, max_lag).unwrap();
            let fast = autocovariance_fft(&v, max_lag).unwrap();
            assert_eq!(naive.len(), fast.len());
            for (k, (a, b)) in naive.iter().zip(&fast).enumerate() {
                assert!((a - b).abs() < 1e-12, "n={n} lag {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fft_path_handles_constant_series() {
        // Exactly representable mean → centered series is exactly zero on
        // both paths, so both report zero covariance everywhere.
        let v = [3.0; 64];
        let gamma = autocovariance_fft(&v, 10).unwrap();
        assert!(gamma.iter().all(|&g| g.abs() < 1e-12));
        assert!(autocorrelation(&v, 10).is_none());
    }

    #[test]
    fn clamped_autocorrelation_degrades_instead_of_vanishing() {
        let v = [1.0, 3.0, 2.0, 5.0];
        // Plain call refuses the out-of-range lag bound…
        assert!(autocorrelation(&v, 360).is_none());
        // …the clamped call returns what the series supports.
        let rho = clamped_autocorrelation(&v, 360).unwrap();
        assert_eq!(rho.len(), 3); // lags 0..=2
        assert!(clamped_autocorrelation(&[], 360).is_none());
        assert!(clamped_autocorrelation(&[7.0; 5], 360).is_none()); // constant
    }
}
