//! Iterative radix-2 fast Fourier transform.
//!
//! Two consumers in the workspace need an FFT:
//!
//! 1. the Davies–Harte fractional Gaussian noise generator ([`crate::fgn`]),
//!    which embeds the fGn covariance in a circulant matrix and samples via
//!    its spectral decomposition, and
//! 2. the periodogram Hurst estimator ([`crate::hurst::periodogram_hurst`]),
//!    a cross-check on the R/S estimate the paper relies on.
//!
//! The implementation is a textbook iterative Cooley–Tukey transform with
//! bit-reversal permutation. It only accepts power-of-two lengths; callers
//! pad or truncate as appropriate.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// `e^{iθ}` — a unit phasor.
    pub fn from_angle(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// In-place forward FFT: `X_k = Σ_n x_n e^{-2πi kn/N}`.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two (length 1 is allowed).
pub fn fft_inplace(data: &mut [Complex]) {
    transform(data, -1.0);
}

/// In-place inverse FFT, including the `1/N` normalization, so
/// `ifft(fft(x)) == x` up to rounding.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two.
pub fn ifft_inplace(data: &mut [Complex]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(1.0 / n);
    }
}

fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Smallest power of two `>= n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Forward FFT of a real series, returning the half spectrum
/// `X_0 ..= X_{N/2}` (the rest follows from `X_{N-k} = conj(X_k)`).
///
/// Packs the `N` reals into `N/2` complex slots, runs one half-length
/// transform, and unpacks with the standard split-radix identities —
/// about half the work of a full complex transform, which is what makes
/// the Wiener–Khinchin autocovariance path ([`crate::acf::autocovariance_fft`])
/// clearly faster than the direct sum at the paper's scales.
///
/// # Panics
///
/// Panics unless `input.len()` is a power of two and at least 2.
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let n = input.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "real FFT length must be a power of two >= 2, got {n}"
    );
    let m = n / 2;
    // Interleave: z_j = x_{2j} + i·x_{2j+1}.
    let mut z: Vec<Complex> = (0..m)
        .map(|j| Complex::new(input[2 * j], input[2 * j + 1]))
        .collect();
    fft_inplace(&mut z);
    // Unpack: with E_k/O_k the transforms of the even/odd subsequences,
    //   E_k = (Z_k + conj(Z_{M-k})) / 2
    //   O_k = (Z_k − conj(Z_{M-k})) / (2i)
    //   X_k = E_k + e^{-2πik/N} · O_k            for k = 0..=M
    // (indices mod M, so Z_M means Z_0).
    let half_i = Complex::new(0.0, -0.5); // 1/(2i)
    (0..=m)
        .map(|k| {
            let zk = z[k % m];
            let zmk = z[(m - k) % m].conj();
            let even = (zk + zmk).scale(0.5);
            let odd = (zk - zmk) * half_i;
            let w = Complex::from_angle(-std::f64::consts::PI * k as f64 / m as f64);
            even + w * odd
        })
        .collect()
}

/// Periodogram of a real series at the Fourier frequencies
/// `λ_j = 2πj/n` for `j = 1..=n/2`.
///
/// `I(λ_j) = |Σ_t x_t e^{-i t λ_j}|² / (2π n)`. The series is mean-centered
/// first and zero-padded to a power of two; returned pairs are
/// `(λ_j, I(λ_j))` for the original-length frequencies, which is what the
/// periodogram Hurst estimator regresses on.
pub fn periodogram(values: &[f64]) -> Vec<(f64, f64)> {
    let n = values.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let padded = next_pow2(n);
    let mut buf: Vec<Complex> = values
        .iter()
        .map(|&v| Complex::new(v - mean, 0.0))
        .chain(std::iter::repeat(Complex::ZERO))
        .take(padded)
        .collect();
    fft_inplace(&mut buf);
    let two_pi = 2.0 * std::f64::consts::PI;
    // Frequencies j/padded map onto the padded grid; take those at or below
    // the Nyquist frequency of the padded transform.
    (1..=padded / 2)
        .map(|j| {
            let lambda = two_pi * j as f64 / padded as f64;
            let power = buf[j].norm_sqr() / (two_pi * n as f64);
            (lambda, power)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!(
            (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol,
            "{a:?} != {b:?}"
        );
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut data);
        for z in data {
            assert_close(z, Complex::new(1.0, 0.0), 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::new(2.0, 0.0); 8];
        fft_inplace(&mut data);
        assert_close(data[0], Complex::new(16.0, 0.0), 1e-12);
        for z in &data[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_fft_ifft() {
        let mut rng = crate::rng::Rng::new(31);
        let original: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let mut data = original.clone();
        fft_inplace(&mut data);
        ifft_inplace(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let mut rng = crate::rng::Rng::new(33);
        let x: Vec<Complex> = (0..16)
            .map(|_| Complex::new(rng.next_f64(), rng.next_f64()))
            .collect();
        let n = x.len();
        let naive: Vec<Complex> = (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    acc = acc + v * Complex::from_angle(ang);
                }
                acc
            })
            .collect();
        let mut fast = x;
        fft_inplace(&mut fast);
        for (a, b) in fast.iter().zip(&naive) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let mut rng = crate::rng::Rng::new(35);
        let x: Vec<Complex> = (0..128)
            .map(|_| Complex::new(rng.next_f64(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = x;
        fft_inplace(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut data = vec![Complex::ZERO; 6];
        fft_inplace(&mut data);
    }

    #[test]
    fn length_one_is_identity() {
        let mut data = vec![Complex::new(3.0, 4.0)];
        fft_inplace(&mut data);
        assert_close(data[0], Complex::new(3.0, 4.0), 1e-15);
    }

    #[test]
    fn real_fft_matches_complex_fft() {
        let mut rng = crate::rng::Rng::new(37);
        for len in [2usize, 4, 8, 64, 256] {
            let x: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
            let mut full: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
            fft_inplace(&mut full);
            let half = fft_real(&x);
            assert_eq!(half.len(), len / 2 + 1);
            for (k, h) in half.iter().enumerate() {
                assert_close(*h, full[k], 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn real_fft_rejects_odd_lengths() {
        fft_real(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn periodogram_peaks_at_sinusoid_frequency() {
        // x_t = sin(2π t 8/64): energy concentrated at j=8 of 64.
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * 8.0 * t as f64 / n as f64).sin())
            .collect();
        let pg = periodogram(&x);
        let (max_idx, _) = pg
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .unwrap();
        // Frequencies start at j=1, so index 7 is λ_8.
        assert_eq!(max_idx, 7);
    }

    #[test]
    fn periodogram_degenerate() {
        assert!(periodogram(&[]).is_empty());
        assert!(periodogram(&[1.0]).is_empty());
        // Constant series: all power ~0 (mean removed).
        let pg = periodogram(&[5.0; 32]);
        assert!(pg.iter().all(|&(_, p)| p < 1e-20));
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
    }
}
