//! Statistics substrate for the NWS CPU availability study.
//!
//! Everything the paper's analysis sections need, implemented from scratch
//! so experiments are deterministic and dependency-free:
//!
//! - [`rng`] — xoshiro256++ pseudo-random generator with SplitMix64 seeding.
//!   All simulations in the workspace are seeded, so every table and figure
//!   regenerates bit-identically.
//! - [`dist`] — the distributions the workload models draw from
//!   (exponential, Pareto, normal, log-normal, uniform). Pareto on/off
//!   sources are what give the simulated hosts their self-similar load
//!   (Willinger et al., cited as \[28\] in the paper).
//! - [`descriptive`] — means, variances, error metrics.
//! - [`regress`] — ordinary least squares line fits (used by the pox-plot
//!   Hurst estimate, Figure 3).
//! - [`acf`] — sample autocorrelation functions (Figure 2).
//! - [`fft`] — an iterative radix-2 FFT plus a periodogram, used by the
//!   Davies–Harte fGn generator and the periodogram Hurst estimator.
//! - [`fgn`] — exact fractional Gaussian noise generators (Hosking and
//!   Davies–Harte), the reference self-similar processes against which the
//!   Hurst estimators are validated.
//! - [`hurst`] — R/S analysis, pox plots, and three Hurst estimators
//!   (rescaled range, aggregated variance, periodogram) reproducing the
//!   paper's Section 3.1 methodology.

pub mod acf;
pub mod descriptive;
pub mod dist;
pub mod fft;
pub mod fgn;
pub mod hurst;
pub mod regress;
pub mod rng;

pub use acf::{
    autocorrelation, autocovariance, autocovariance_fft, autocovariance_naive,
    clamped_autocorrelation,
};
pub use descriptive::{
    mean, mean_absolute_error, mean_absolute_pair_error, population_variance, sample_variance,
};
pub use dist::{Distribution, Exponential, LogNormal, Normal, Pareto, Uniform};
pub use fft::{fft_inplace, fft_real, ifft_inplace, next_pow2, periodogram, Complex};
pub use fgn::{fgn_autocovariance, DaviesHarte, FgnError, Hosking};
pub use hurst::{
    aggregated_variance_hurst, aggregated_variance_hurst_naive, hurst_rs, periodogram_hurst,
    pox_plot, pox_plot_naive, rs_statistic, HurstEstimate, PoxPoint,
};
pub use regress::{linear_fit, linear_fit2, LinearFit, LinearFit2};
pub use rng::Rng;
