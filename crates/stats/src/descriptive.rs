//! Basic descriptive statistics and the error metrics of the paper.
//!
//! The paper's tables all report **mean absolute errors** between pairs of
//! quantities — measurement vs test process (Eq. 3), forecast vs test
//! process (Eq. 4), forecast vs next measurement (Eq. 5). Those pairwise
//! error helpers live here.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance (divides by `n`). Returns `None` for an empty slice.
///
/// Table 4 reports the variance of availability series and their 5-minute
/// aggregates; population variance matches that usage.
pub fn population_variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Sample variance (divides by `n − 1`). Returns `None` with fewer than two
/// values.
pub fn sample_variance(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    Some(values.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64)
}

/// Mean absolute deviation of `values` from the paired `references`.
///
/// This is the error form of the paper's Equations 3–5:
/// `mean(|value_i − reference_i|)`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_absolute_pair_error(values: &[f64], references: &[f64]) -> Option<f64> {
    assert_eq!(
        values.len(),
        references.len(),
        "paired error needs equal-length slices"
    );
    if values.is_empty() {
        return None;
    }
    Some(
        values
            .iter()
            .zip(references)
            .map(|(&v, &r)| (v - r).abs())
            .sum::<f64>()
            / values.len() as f64,
    )
}

/// Mean absolute error of a single residual sequence: `mean(|e_i|)`.
pub fn mean_absolute_error(residuals: &[f64]) -> Option<f64> {
    if residuals.is_empty() {
        None
    } else {
        Some(residuals.iter().map(|e| e.abs()).sum::<f64>() / residuals.len() as f64)
    }
}

/// Root mean squared error of a residual sequence.
pub fn root_mean_squared_error(residuals: &[f64]) -> Option<f64> {
    if residuals.is_empty() {
        None
    } else {
        Some((residuals.iter().map(|e| e * e).sum::<f64>() / residuals.len() as f64).sqrt())
    }
}

/// Sample covariance of two paired sequences (divides by `n`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn covariance(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "covariance needs equal-length slices");
    if xs.is_empty() {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    Some(
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| (x - mx) * (y - my))
            .sum::<f64>()
            / xs.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), Some(2.5));
        assert_eq!(population_variance(&v), Some(1.25));
        assert!((sample_variance(&v).unwrap() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empties() {
        assert_eq!(mean(&[]), None);
        assert_eq!(population_variance(&[]), None);
        assert_eq!(sample_variance(&[1.0]), None);
        assert_eq!(mean_absolute_error(&[]), None);
        assert_eq!(root_mean_squared_error(&[]), None);
        assert_eq!(mean_absolute_pair_error(&[], &[]), None);
        assert_eq!(covariance(&[], &[]), None);
    }

    #[test]
    fn pair_error_matches_paper_definition() {
        // Eq. 3: mean |measurement - test observation|.
        let measured = [0.5, 0.8, 0.2];
        let observed = [0.6, 0.7, 0.2];
        let err = mean_absolute_pair_error(&measured, &observed).unwrap();
        assert!((err - (0.1 + 0.1 + 0.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn pair_error_length_mismatch_panics() {
        mean_absolute_pair_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn rmse_vs_mae_ordering() {
        let res = [0.0, 0.0, 3.0];
        let mae = mean_absolute_error(&res).unwrap();
        let rmse = root_mean_squared_error(&res).unwrap();
        assert!(rmse >= mae, "RMSE must dominate MAE");
        assert!((mae - 1.0).abs() < 1e-12);
        assert!((rmse - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn covariance_signs() {
        let x = [1.0, 2.0, 3.0];
        let up = [2.0, 4.0, 6.0];
        let down = [6.0, 4.0, 2.0];
        assert!(covariance(&x, &up).unwrap() > 0.0);
        assert!(covariance(&x, &down).unwrap() < 0.0);
        let flat = [5.0, 5.0, 5.0];
        assert_eq!(covariance(&x, &flat), Some(0.0));
    }
}
