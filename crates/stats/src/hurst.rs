//! R/S analysis, pox plots, and Hurst parameter estimation.
//!
//! Section 3.1 of the paper establishes that CPU availability is long-range
//! dependent by estimating the Hurst parameter `H` with **R/S analysis**
//! (Mandelbrot & Taqqu, ref \[21\]) presented as **pox plots** (Leland et
//! al., ref \[20\]): partition the series into segments of length `d`, compute
//! the rescaled adjusted range `R(d)/S(d)` for each segment, and plot
//! `log10(R/S)` against `log10(d)`. Since `E[R(d)/S(d)] ≈ c·d^H`, the slope
//! of a least-squares line through the per-`d` means estimates `H`. Table 4
//! reports estimates between 0.69 and 0.82; Figure 3 shows the plots with
//! the `H = 0.5` and `H = 1.0` reference slopes.
//!
//! Two further estimators cross-check R/S, as is standard practice:
//! aggregated variance (`Var(X^(m)) ~ m^{2H−2}`) and the low-frequency
//! periodogram (`I(λ) ~ λ^{1−2H}`).
//!
//! The pox-plot and aggregated-variance sweeps share one O(n)
//! prefix-sum/prefix-square-sum pass ([`SeriesPrefix`]): every segment's
//! mean and standard deviation then costs O(1) instead of a fresh O(d)
//! scan per moment, and the ladder lengths fan out over
//! [`nws_runtime::parallel_map`] in input order, so results stay
//! bit-identical at any thread count. [`pox_plot_naive`] keeps the direct
//! per-segment evaluation as the reference the fast path is verified
//! against.

use crate::descriptive::population_variance;
use crate::fft::periodogram;
use crate::regress::{linear_fit, LinearFit};

/// Prefix sums of a series and of its squares: `sum[k]` holds
/// `Σ_{i<k} x_i` and `sq[k]` holds `Σ_{i<k} x_i²`, so any segment's first
/// two moments are two subtractions away.
struct SeriesPrefix {
    sum: Vec<f64>,
    sq: Vec<f64>,
}

impl SeriesPrefix {
    fn new(values: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(values.len() + 1);
        let mut sq = Vec::with_capacity(values.len() + 1);
        let (mut s, mut q) = (0.0, 0.0);
        sum.push(0.0);
        sq.push(0.0);
        for &x in values {
            s += x;
            q += x * x;
            sum.push(s);
            sq.push(q);
        }
        Self { sum, sq }
    }

    /// Prefix sums only — for consumers that never need variances
    /// (the aggregated-variance sweep wants block means alone), saving
    /// the square-sum pass and its buffer.
    fn sums_only(values: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(values.len() + 1);
        let mut s = 0.0;
        sum.push(0.0);
        for &x in values {
            s += x;
            sum.push(s);
        }
        Self {
            sum,
            sq: Vec::new(),
        }
    }

    /// Mean of `values[start..start + d]`.
    fn segment_mean(&self, start: usize, d: usize) -> f64 {
        (self.sum[start + d] - self.sum[start]) / d as f64
    }

    /// Population variance of `values[start..start + d]` via
    /// `E[x²] − mean²`. Cancellation can leave a tiny negative where the
    /// two-pass formula gives a tiny positive; callers treat anything
    /// non-positive as degenerate, which is also what the reference path
    /// does for genuinely constant segments.
    fn segment_var(&self, start: usize, d: usize) -> f64 {
        let mean = self.segment_mean(start, d);
        (self.sq[start + d] - self.sq[start]) / d as f64 - mean * mean
    }

    /// R/S of `values[start..start + d]`: moments in O(1) from the prefix
    /// arrays, then one fused pass over the cumulative deviations
    /// `W_k = (sum[start+k] − sum[start]) − k·mean`.
    fn rs(&self, start: usize, d: usize) -> Option<f64> {
        if d < 2 {
            return None;
        }
        let var = self.segment_var(start, d);
        if var <= 0.0 || var.is_nan() {
            return None;
        }
        let mean = self.segment_mean(start, d);
        let base = self.sum[start];
        let mut max_w: f64 = 0.0; // the paper's definition includes 0 in both extremes
        let mut min_w: f64 = 0.0;
        for k in 1..=d {
            let w = self.sum[start + k] - base - k as f64 * mean;
            max_w = max_w.max(w);
            min_w = min_w.min(w);
        }
        Some((max_w - min_w) / var.sqrt())
    }
}

/// One pox-plot sample: a segment length and the R/S value of one segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoxPoint {
    /// `log10(d)` — the segment length.
    pub log10_d: f64,
    /// `log10(R(d)/S(d))` — the rescaled adjusted range of one segment.
    pub log10_rs: f64,
}

/// A Hurst parameter estimate with its supporting regression.
#[derive(Debug, Clone)]
pub struct HurstEstimate {
    /// The estimated Hurst parameter.
    pub h: f64,
    /// The least-squares fit whose slope produced `h` (in transformed
    /// coordinates — see each estimator for the mapping from slope to `h`).
    pub fit: LinearFit,
    /// The `(x, y)` pairs the regression was fitted to.
    pub points: Vec<(f64, f64)>,
}

/// Rescaled adjusted range statistic `R(n)/S(n)` of one segment.
///
/// With sample mean `M`, `W_k = Σ_{i≤k} X_i − k·M`, the adjusted range is
/// `R = max(0, W_1..W_n) − min(0, W_1..W_n)` and `S` is the population
/// standard deviation. Returns `None` for segments shorter than 2 points or
/// with zero variance.
pub fn rs_statistic(segment: &[f64]) -> Option<f64> {
    let n = segment.len();
    if n < 2 {
        return None;
    }
    let mean = segment.iter().sum::<f64>() / n as f64;
    let mut w = 0.0;
    let mut max_w: f64 = 0.0; // the paper's definition includes 0 in both extremes
    let mut min_w: f64 = 0.0;
    for &x in segment {
        w += x - mean;
        max_w = max_w.max(w);
        min_w = min_w.min(w);
    }
    let s = population_variance(segment)?.sqrt();
    if s <= 0.0 {
        return None;
    }
    Some((max_w - min_w) / s)
}

/// Logarithmically spaced segment lengths for a series of length `n`.
///
/// Roughly four lengths per decade from `min_d` up to `n / 2`, mirroring the
/// pox-plot construction in the paper's references.
fn segment_ladder(n: usize, min_d: usize) -> Vec<usize> {
    let mut ds = Vec::new();
    if n < 2 * min_d {
        return ds;
    }
    let max_d = n / 2;
    let mut d = min_d as f64;
    let step = 10f64.powf(0.25);
    while (d as usize) <= max_d {
        let di = d.round() as usize;
        if ds.last() != Some(&di) {
            ds.push(di);
        }
        d *= step;
    }
    ds
}

/// All pox-plot points for a series: every non-overlapping segment of every
/// ladder length contributes one `(log10 d, log10 R/S)` sample.
///
/// `min_d` is the smallest segment length considered (the classical advice
/// is ≥ 8–10; shorter segments bias R/S upward).
pub fn pox_plot(values: &[f64], min_d: usize) -> Vec<PoxPoint> {
    let ladder = segment_ladder(values.len(), min_d.max(2));
    if ladder.is_empty() {
        return Vec::new();
    }
    let prefix = SeriesPrefix::new(values);
    let n = values.len();
    // Each ladder length is an independent sweep over the shared prefix
    // arrays; parallel_map returns them in ladder order, preserving the
    // d-major point order of the sequential construction.
    let per_d = nws_runtime::parallel_map(ladder, |d| {
        let log10_d = (d as f64).log10();
        let mut pts = Vec::with_capacity(n / d);
        for i in 0..n / d {
            if let Some(rs) = prefix.rs(i * d, d) {
                if rs > 0.0 {
                    pts.push(PoxPoint {
                        log10_d,
                        log10_rs: rs.log10(),
                    });
                }
            }
        }
        pts
    });
    per_d.into_iter().flatten().collect()
}

/// The reference pox-plot construction: every segment re-derives its mean
/// and deviation with [`rs_statistic`]'s two-pass scans. Kept for the
/// naive-vs-fast equivalence suites and the tracked benchmark; use
/// [`pox_plot`] everywhere else.
pub fn pox_plot_naive(values: &[f64], min_d: usize) -> Vec<PoxPoint> {
    let mut points = Vec::new();
    for d in segment_ladder(values.len(), min_d.max(2)) {
        for segment in values.chunks_exact(d) {
            if let Some(rs) = rs_statistic(segment) {
                if rs > 0.0 {
                    points.push(PoxPoint {
                        log10_d: (d as f64).log10(),
                        log10_rs: rs.log10(),
                    });
                }
            }
        }
    }
    points
}

/// R/S (pox plot) Hurst estimate: the slope of the least-squares line
/// through the *mean* `log10(R/S)` at each `log10(d)`, as in Figure 3.
///
/// Returns `None` when the series is too short to produce at least two
/// distinct segment lengths.
///
/// # Examples
///
/// ```
/// use nws_stats::{hurst_rs, Rng};
///
/// // White noise has H = 1/2 (allowing the estimator's small-sample bias).
/// let mut rng = Rng::new(1);
/// let noise: Vec<f64> = (0..4096).map(|_| rng.next_f64()).collect();
/// let est = hurst_rs(&noise, 10).unwrap();
/// assert!(est.h < 0.68, "H = {}", est.h);
/// ```
pub fn hurst_rs(values: &[f64], min_d: usize) -> Option<HurstEstimate> {
    let pox = pox_plot(values, min_d);
    if pox.is_empty() {
        return None;
    }
    // Group by log10_d and average log10_rs within each group. The ladder
    // emits points in increasing-d order, so a linear sweep suffices.
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut current_x = f64::NAN;
    let mut acc = 0.0;
    let mut count = 0usize;
    for p in &pox {
        if p.log10_d != current_x {
            if count > 0 {
                xs.push(current_x);
                ys.push(acc / count as f64);
            }
            current_x = p.log10_d;
            acc = 0.0;
            count = 0;
        }
        acc += p.log10_rs;
        count += 1;
    }
    if count > 0 {
        xs.push(current_x);
        ys.push(acc / count as f64);
    }
    let fit = linear_fit(&xs, &ys)?;
    Some(HurstEstimate {
        h: fit.slope,
        fit,
        points: xs.into_iter().zip(ys).collect(),
    })
}

/// Aggregated-variance Hurst estimate.
///
/// For a self-similar series, `Var(X^(m)) ≈ σ² m^{2H−2}` (Section 3.2 of
/// the paper), so the slope β of `log10 Var(X^(m))` vs `log10 m` gives
/// `H = 1 + β/2`. Aggregation levels run a log ladder from 2 up to `n/8`
/// (each level must retain enough blocks for a stable variance).
pub fn aggregated_variance_hurst(values: &[f64]) -> Option<HurstEstimate> {
    let n = values.len();
    if n < 32 {
        return None;
    }
    let prefix = SeriesPrefix::sums_only(values);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for m in segment_ladder(n, 2) {
        if n / m < 8 {
            break; // too few blocks for a meaningful variance
        }
        // Block means in O(1) each from the shared prefix sums.
        let means: Vec<f64> = (0..n / m).map(|i| prefix.segment_mean(i * m, m)).collect();
        if let Some(var) = population_variance(&means) {
            if var > 0.0 {
                xs.push((m as f64).log10());
                ys.push(var.log10());
            }
        }
    }
    let fit = linear_fit(&xs, &ys)?;
    Some(HurstEstimate {
        h: 1.0 + fit.slope / 2.0,
        fit,
        points: xs.into_iter().zip(ys).collect(),
    })
}

/// The reference aggregated-variance estimator: every block mean is a
/// fresh O(m) scan. Kept for the naive-vs-fast equivalence suites and the
/// tracked benchmark; use [`aggregated_variance_hurst`] everywhere else.
pub fn aggregated_variance_hurst_naive(values: &[f64]) -> Option<HurstEstimate> {
    let n = values.len();
    if n < 32 {
        return None;
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for m in segment_ladder(n, 2) {
        if n / m < 8 {
            break; // too few blocks for a meaningful variance
        }
        let means: Vec<f64> = values
            .chunks_exact(m)
            .map(|b| b.iter().sum::<f64>() / m as f64)
            .collect();
        if let Some(var) = population_variance(&means) {
            if var > 0.0 {
                xs.push((m as f64).log10());
                ys.push(var.log10());
            }
        }
    }
    let fit = linear_fit(&xs, &ys)?;
    Some(HurstEstimate {
        h: 1.0 + fit.slope / 2.0,
        fit,
        points: xs.into_iter().zip(ys).collect(),
    })
}

/// Periodogram Hurst estimate.
///
/// Long-range dependence shows up as a power-law blowup of the spectral
/// density at the origin: `I(λ) ~ λ^{1−2H}` as `λ → 0`. Regressing
/// `log10 I(λ)` on `log10 λ` over the lowest 10 % of Fourier frequencies
/// gives slope `β = 1 − 2H`, i.e. `H = (1 − β)/2`.
pub fn periodogram_hurst(values: &[f64]) -> Option<HurstEstimate> {
    let pg = periodogram(values);
    if pg.len() < 20 {
        return None;
    }
    let keep = (pg.len() / 10).max(10);
    let mut xs = Vec::with_capacity(keep);
    let mut ys = Vec::with_capacity(keep);
    for &(lambda, power) in pg.iter().take(keep) {
        if power > 0.0 {
            xs.push(lambda.log10());
            ys.push(power.log10());
        }
    }
    let fit = linear_fit(&xs, &ys)?;
    Some(HurstEstimate {
        h: (1.0 - fit.slope) / 2.0,
        fit,
        points: xs.into_iter().zip(ys).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::DaviesHarte;
    use crate::rng::Rng;

    fn fgn(h: f64, n: usize, seed: u64) -> Vec<f64> {
        DaviesHarte::new(h)
            .unwrap()
            .sample(n, &mut Rng::new(seed))
            .unwrap()
    }

    #[test]
    fn rs_statistic_basic_properties() {
        // R/S is positive and scale/shift invariant.
        let seg = [1.0, 2.0, 0.5, 3.0, 1.5, 2.5, 0.8, 1.9];
        let rs = rs_statistic(&seg).unwrap();
        assert!(rs > 0.0);
        let shifted: Vec<f64> = seg.iter().map(|x| x + 100.0).collect();
        assert!((rs_statistic(&shifted).unwrap() - rs).abs() < 1e-9);
        let scaled: Vec<f64> = seg.iter().map(|x| x * 7.0).collect();
        assert!((rs_statistic(&scaled).unwrap() - rs).abs() < 1e-9);
    }

    #[test]
    fn rs_statistic_degenerate() {
        assert_eq!(rs_statistic(&[]), None);
        assert_eq!(rs_statistic(&[1.0]), None);
        assert_eq!(rs_statistic(&[2.0, 2.0, 2.0]), None);
    }

    #[test]
    fn ladder_is_increasing_and_bounded() {
        let ds = segment_ladder(10_000, 10);
        assert!(ds.windows(2).all(|w| w[0] < w[1]));
        assert!(*ds.first().unwrap() == 10);
        assert!(*ds.last().unwrap() <= 5_000);
        assert!(ds.len() >= 8);
        assert!(segment_ladder(10, 10).is_empty());
    }

    #[test]
    fn white_noise_hurst_near_half() {
        let x = fgn(0.5, 16384, 61);
        let est = hurst_rs(&x, 10).unwrap();
        // R/S has a well-known small-sample positive bias for H=0.5.
        assert!((est.h - 0.55).abs() < 0.08, "H = {}", est.h);
        let av = aggregated_variance_hurst(&x).unwrap();
        assert!((av.h - 0.5).abs() < 0.08, "H_av = {}", av.h);
        let pgm = periodogram_hurst(&x).unwrap();
        assert!((pgm.h - 0.5).abs() < 0.12, "H_pg = {}", pgm.h);
    }

    #[test]
    fn recovers_high_hurst_from_fgn() {
        let h = 0.8;
        let x = fgn(h, 16384, 63);
        let est = hurst_rs(&x, 10).unwrap();
        assert!((est.h - h).abs() < 0.1, "H_rs = {}", est.h);
        let av = aggregated_variance_hurst(&x).unwrap();
        assert!((av.h - h).abs() < 0.1, "H_av = {}", av.h);
        let pgm = periodogram_hurst(&x).unwrap();
        assert!((pgm.h - h).abs() < 0.12, "H_pg = {}", pgm.h);
    }

    #[test]
    fn hurst_estimates_are_ordered_by_true_h() {
        // Monotonicity: higher true H must give a higher estimate.
        let lo = hurst_rs(&fgn(0.55, 8192, 65), 10).unwrap().h;
        let hi = hurst_rs(&fgn(0.9, 8192, 65), 10).unwrap().h;
        assert!(hi > lo + 0.15, "lo={lo}, hi={hi}");
    }

    #[test]
    fn pox_plot_points_cover_ladder() {
        let x = fgn(0.7, 4096, 67);
        let pox = pox_plot(&x, 10);
        // Small d contributes many points; large d few.
        let min_x = pox.iter().map(|p| p.log10_d).fold(f64::INFINITY, f64::min);
        let max_x = pox
            .iter()
            .map(|p| p.log10_d)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((min_x - 1.0).abs() < 1e-9); // log10(10)
        assert!(max_x >= 3.0); // up to d = 2048
        assert!(pox.len() > 100);
    }

    #[test]
    fn fast_pox_plot_matches_naive() {
        let x = fgn(0.7, 4096, 71);
        let fast = pox_plot(&x, 10);
        let naive = pox_plot_naive(&x, 10);
        assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(&naive) {
            assert_eq!(a.log10_d, b.log10_d);
            assert!(
                (a.log10_rs - b.log10_rs).abs() < 1e-9,
                "{} vs {}",
                a.log10_rs,
                b.log10_rs
            );
        }
    }

    #[test]
    fn fast_aggregated_variance_matches_naive() {
        let x = fgn(0.75, 4096, 73);
        let fast = aggregated_variance_hurst(&x).unwrap();
        let naive = aggregated_variance_hurst_naive(&x).unwrap();
        assert!((fast.h - naive.h).abs() < 1e-9, "{} vs {}", fast.h, naive.h);
        assert_eq!(fast.points.len(), naive.points.len());
    }

    #[test]
    fn pox_plot_thread_count_does_not_change_points() {
        let x = fgn(0.8, 2048, 75);
        nws_runtime::set_threads(Some(1));
        let seq = pox_plot(&x, 10);
        nws_runtime::set_threads(Some(4));
        let par = pox_plot(&x, 10);
        nws_runtime::set_threads(None);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            // Bit-identical, not merely close: same path, same order.
            assert_eq!(a.log10_d.to_bits(), b.log10_d.to_bits());
            assert_eq!(a.log10_rs.to_bits(), b.log10_rs.to_bits());
        }
    }

    #[test]
    fn fit_quality_reported() {
        let x = fgn(0.7, 8192, 69);
        let est = hurst_rs(&x, 10).unwrap();
        assert!(est.fit.r_squared > 0.95, "r² = {}", est.fit.r_squared);
        assert!(est.points.len() >= 8);
    }

    #[test]
    fn too_short_series_return_none() {
        assert!(hurst_rs(&[1.0, 2.0, 3.0], 10).is_none());
        assert!(aggregated_variance_hurst(&[1.0; 8]).is_none());
        assert!(periodogram_hurst(&[1.0, 2.0]).is_none());
    }
}
