//! Sampling distributions for the workload models.
//!
//! The interactive-session workloads that drive the simulated UCSD hosts are
//! built from **Pareto** on/off sources: superposing many heavy-tailed
//! on/off processes yields aggregate load whose Hurst parameter is
//! `H = (3 − α) / 2` (Willinger et al., the paper's reference \[28\]). That is
//! exactly the mechanism by which the reproduction obtains the H ≈ 0.7
//! self-similar availability traces of Section 3.1 without scripting them.

use crate::rng::Rng;

/// A sampleable distribution over `f64`.
pub trait Distribution {
    /// Draws one variate using `rng`.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// The distribution mean, if finite.
    fn mean(&self) -> Option<f64>;
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad bounds");
        Self { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn mean(&self) -> Option<f64> {
        Some((self.lo + self.hi) / 2.0)
    }
}

/// Exponential distribution with the given rate `λ` (mean `1/λ`).
///
/// Used for session inter-arrival times (Poisson arrivals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `λ > 0`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self { rate }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Self::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }
}

/// Pareto (type I) distribution: `P(X > x) = (x_m / x)^α` for `x ≥ x_m`.
///
/// With shape `1 < α < 2` the distribution has finite mean but infinite
/// variance — the heavy-tail regime that produces long-range-dependent
/// aggregate load. An optional `cap` truncates samples (real CPU bursts do
/// not last for weeks; truncation keeps simulations finite while preserving
/// the heavy tail over the horizon of interest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    shape: f64,
    scale: f64,
    cap: Option<f64>,
}

impl Pareto {
    /// Creates a Pareto distribution with shape `α` and scale `x_m`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Self {
            shape,
            scale,
            cap: None,
        }
    }

    /// Truncates samples at `cap` (resampling is not used; values are
    /// clamped, which preserves determinism and the tail shape below the
    /// cap).
    ///
    /// # Panics
    ///
    /// Panics unless `cap > scale`.
    pub fn with_cap(mut self, cap: f64) -> Self {
        assert!(cap > self.scale, "cap must exceed the scale");
        self.cap = Some(cap);
        self
    }

    /// The shape parameter `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The Hurst parameter `H = (3 − α) / 2` that an aggregate of on/off
    /// sources with this tail index exhibits (valid for `1 < α < 2`).
    pub fn implied_hurst(&self) -> f64 {
        (3.0 - self.shape) / 2.0
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let u = rng.next_f64_open();
        let x = self.scale / u.powf(1.0 / self.shape);
        match self.cap {
            Some(c) => x.min(c),
            None => x,
        }
    }

    fn mean(&self) -> Option<f64> {
        if self.shape > 1.0 && self.cap.is_none() {
            Some(self.shape * self.scale / (self.shape - 1.0))
        } else if let Some(c) = self.cap {
            // Mean of the clamped variable: E[min(X, c)].
            let a = self.shape;
            let m = self.scale;
            if (a - 1.0).abs() < 1e-12 {
                Some(m * (1.0 + (c / m).ln()))
            } else {
                Some(m * a / (a - 1.0) - (m / c).powf(a) * c / (a - 1.0))
            }
        } else {
            None
        }
    }
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `std_dev` is finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(std_dev.is_finite() && std_dev >= 0.0, "bad std_dev");
        Self { mean, std_dev }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.std_dev * rng.next_standard_normal()
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
///
/// Used for interactive think times, which are right-skewed but not
/// heavy-tailed enough to warrant Pareto.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal's
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma` is finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "mu must be finite");
        assert!(sigma.is_finite() && sigma >= 0.0, "bad sigma");
        Self { mu, sigma }
    }

    /// Creates a log-normal with a given *distribution* mean and the given
    /// sigma of the underlying normal.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Self::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.next_standard_normal()).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &impl Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 4.0);
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((sample_mean(&d, 2, 50_000) - 3.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(5.0);
        assert_eq!(d.mean(), Some(5.0));
        assert!((sample_mean(&d, 3, 100_000) - 5.0).abs() < 0.1);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(0.1);
        let mut rng = Rng::new(4);
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let d = Pareto::new(1.5, 2.0).with_cap(100.0);
        let mut rng = Rng::new(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=100.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn pareto_tail_index_empirical() {
        // P(X > x) = (xm/x)^a: check the survival at x = 2*xm is ~2^-a.
        let a = 1.4;
        let d = Pareto::new(a, 1.0);
        let mut rng = Rng::new(6);
        let n = 200_000;
        let above = (0..n).filter(|_| d.sample(&mut rng) > 2.0).count();
        let frac = above as f64 / n as f64;
        let expect = 2f64.powf(-a);
        assert!((frac - expect).abs() < 0.01, "frac={frac}, expect={expect}");
    }

    #[test]
    fn pareto_mean_formulas() {
        let d = Pareto::new(2.0, 3.0);
        assert_eq!(d.mean(), Some(6.0));
        // With an enormous cap the clamped mean approaches the unclamped one.
        let capped = Pareto::new(2.0, 3.0).with_cap(1e9);
        assert!((capped.mean().unwrap() - 6.0).abs() < 1e-6);
        // Heavy-tail alpha <= 1 has no mean uncapped…
        assert_eq!(Pareto::new(0.9, 1.0).mean(), None);
        // …but a finite mean when capped.
        assert!(Pareto::new(0.9, 1.0).with_cap(100.0).mean().is_some());
    }

    #[test]
    fn pareto_capped_mean_matches_empirical() {
        let d = Pareto::new(1.2, 1.0).with_cap(50.0);
        let analytic = d.mean().unwrap();
        let empirical = sample_mean(&d, 7, 400_000);
        assert!(
            (analytic - empirical).abs() / analytic < 0.02,
            "analytic={analytic}, empirical={empirical}"
        );
    }

    #[test]
    fn implied_hurst() {
        assert!((Pareto::new(1.6, 1.0).implied_hurst() - 0.7).abs() < 1e-12);
        assert!((Pareto::new(1.4, 1.0).implied_hurst() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0);
        let mut rng = Rng::new(8);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.03);
        assert!((var - 4.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_with_mean_hits_target() {
        let d = LogNormal::with_mean(30.0, 1.0);
        assert!((d.mean().unwrap() - 30.0).abs() < 1e-9);
        let emp = sample_mean(&d, 9, 400_000);
        assert!((emp - 30.0).abs() / 30.0 < 0.05, "emp = {emp}");
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::new(0.0, 2.0);
        let mut rng = Rng::new(10);
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_bad_rate() {
        Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "cap must exceed the scale")]
    fn pareto_rejects_cap_below_scale() {
        Pareto::new(1.5, 10.0).with_cap(5.0);
    }
}
