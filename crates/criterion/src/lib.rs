//! A dependency-free, offline drop-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The build environment has no access to crates.io, so the real
//! `criterion` cannot be vendored. This shim keeps `cargo bench` working
//! and useful: every benchmark is warmed up and then timed over a bounded
//! number of samples, and the mean/min per-iteration wall time is printed
//! in criterion-like `time: [..]` lines. Statistical analysis, HTML
//! reports, and baseline comparison are deliberately out of scope.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the shim
/// times one batch element per sample either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier with a parameter, e.g. `hosking/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{param}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measure_budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.measure_budget, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_one(
            &full,
            self.effective_samples(),
            self.criterion.measure_budget,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        let samples = self.effective_samples();
        let budget = self.criterion.measure_budget;
        run_one(&full, samples, budget, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; routines register through `iter*`.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Mean and minimum per-iteration time of the run, once measured.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up (also primes caches and lazy statics).
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut n = 0usize;
        while n < self.samples && total < self.budget {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            n += 1;
        }
        self.result = Some((total / n.max(1) as u32, min));
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut n = 0usize;
        while n < self.samples && total < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            n += 1;
        }
        self.result = Some((total / n.max(1) as u32, min));
    }
}

fn run_one<F>(id: &str, samples: usize, budget: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples,
        budget,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min)) => println!(
            "{id:<40} time: [mean {} min {}]",
            format_duration(mean),
            format_duration(min)
        ),
        None => println!("{id:<40} time: [no measurement taken]"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Groups benchmark functions under one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_example
    }

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }

    #[test]
    fn batched_measures_routine_only() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1.0f64; 16],
                |v| v.iter().sum::<f64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("hosking", 1024).to_string(),
            "hosking/1024"
        );
    }
}
