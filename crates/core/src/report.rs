//! Text and CSV rendering of experiment results.

use crate::experiments::tables::{MethodTable, Table4Row};
use crate::paper;
use std::fmt::Write as _;

/// Formats a fraction as a percentage with one decimal, e.g. `12.3%`.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Renders a host × method table as aligned text. When `paper_ref` is
/// supplied, each cell shows `measured (paper)`.
pub fn render_method_table(table: &MethodTable, paper_ref: Option<&[[f64; 3]; 6]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", table.title);
    let header = ["Host", "Load Average", "vmstat", "NWS Hybrid"];
    let mut rows: Vec<[String; 4]> = vec![header.map(|s| s.to_string())];
    for r in &table.rows {
        let cells = r.values();
        let mut row = [r.host.clone(), String::new(), String::new(), String::new()];
        for (i, v) in cells.iter().enumerate() {
            let formatted =
                match paper_ref.and_then(|p| paper::host_index(&r.host).map(|hi| p[hi][i])) {
                    Some(reference) => format!("{} ({})", pct(*v), pct(reference)),
                    None => pct(*v),
                };
            row[i + 1] = formatted;
        }
        rows.push(row);
    }
    out.push_str(&render_aligned(&rows));
    out
}

/// Renders Table 4 (Hurst + variances) as aligned text with the paper's
/// values in parentheses.
pub fn render_table4(rows: &[Table4Row], with_paper: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4: Variance of Original Series and 5 Minute Averages"
    );
    let header = [
        "Host",
        "Est. H",
        "load orig",
        "load 300s",
        "vmstat orig",
        "vmstat 300s",
        "hybrid orig",
        "hybrid 300s",
    ];
    let mut grid: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
    for r in rows {
        let hi = paper::host_index(&r.host);
        let mut row = vec![r.host.clone()];
        row.push(match (with_paper, hi) {
            (true, Some(i)) => format!("{:.2} ({:.2})", r.hurst, paper::TABLE4_HURST[i]),
            _ => format!("{:.2}", r.hurst),
        });
        for (mi, &(orig, agg)) in r.variances.iter().enumerate() {
            let (p_orig, p_agg) = match (with_paper, hi) {
                (true, Some(i)) => {
                    let (po, pa) = paper::TABLE4_VARIANCES[i][mi];
                    (Some(po), Some(pa))
                }
                _ => (None, None),
            };
            row.push(match p_orig {
                Some(p) => format!("{orig:.4} ({p:.4})"),
                None => format!("{orig:.4}"),
            });
            row.push(match p_agg {
                Some(p) => format!("{agg:.4} ({p:.4})"),
                None => format!("{agg:.4}"),
            });
        }
        grid.push(row);
    }
    let rows_arr: Vec<Vec<String>> = grid;
    out.push_str(&render_aligned_vec(&rows_arr));
    out
}

/// Renders a method table as CSV (fractions, not percentages).
pub fn method_table_to_csv(table: &MethodTable) -> String {
    let mut out = String::from("host,load_average,vmstat,nws_hybrid\n");
    for r in &table.rows {
        let _ = writeln!(out, "{},{},{},{}", r.host, r.load, r.vmstat, r.hybrid);
    }
    out
}

/// Renders Table 4 as CSV.
pub fn table4_to_csv(rows: &[Table4Row]) -> String {
    let mut out = String::from(
        "host,hurst,load_var,load_var_300s,vmstat_var,vmstat_var_300s,hybrid_var,hybrid_var_300s\n",
    );
    for r in rows {
        let v = r.variances;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            r.host, r.hurst, v[0].0, v[0].1, v[1].0, v[1].1, v[2].0, v[2].1
        );
    }
    out
}

fn render_aligned(rows: &[[String; 4]]) -> String {
    let as_vecs: Vec<Vec<String>> = rows.iter().map(|r| r.to_vec()).collect();
    render_aligned_vec(&as_vecs)
}

fn render_aligned_vec(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i];
            if i == 0 {
                let _ = write!(out, "{cell:<pad$}");
            } else {
                let _ = write!(out, "  {cell:>pad$}");
            }
        }
        let _ = writeln!(out);
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::{MethodRow, MethodTable};

    fn sample_table() -> MethodTable {
        MethodTable {
            title: "Sample".into(),
            rows: vec![
                MethodRow {
                    host: "thing2".into(),
                    load: 0.09,
                    vmstat: 0.112,
                    hybrid: 0.111,
                },
                MethodRow {
                    host: "kongo".into(),
                    load: 0.128,
                    vmstat: 0.129,
                    hybrid: 0.413,
                },
            ],
        }
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn text_table_contains_all_cells() {
        let text = render_method_table(&sample_table(), None);
        assert!(text.contains("Sample"));
        assert!(text.contains("thing2"));
        assert!(text.contains("41.3%"));
        assert!(text.contains("Load Average"));
    }

    #[test]
    fn paper_reference_appears_in_parentheses() {
        let text = render_method_table(&sample_table(), Some(&paper::TABLE1));
        // Measured 9.0% with the paper's 9.0% alongside for thing2/load.
        assert!(text.contains("9.0% (9.0%)"), "{text}");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = method_table_to_csv(&sample_table());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("host,load_average,vmstat,nws_hybrid"));
        assert_eq!(lines.clone().count(), 2);
        assert!(lines.next().unwrap().starts_with("thing2,0.09,"));
    }

    #[test]
    fn table4_renders() {
        let rows = vec![crate::experiments::tables::Table4Row {
            host: "thing1".into(),
            hurst: 0.71,
            variances: [(0.01, 0.005), (0.02, 0.006), (0.03, 0.007)],
        }];
        let text = render_table4(&rows, true);
        assert!(text.contains("0.71 (0.70)"), "{text}");
        assert!(text.contains("0.0100 (0.0081)"));
        let csv = table4_to_csv(&rows);
        assert!(csv.contains("thing1,0.71,0.01,0.005,0.02,0.006,0.03,0.007"));
    }
}
