//! The paper's published numbers, for paper-vs-measured reports.
//!
//! All values are **fractions** (the paper prints percentages). Host order
//! is the paper's row order: thing2, thing1, conundrum, beowulf, gremlin,
//! kongo; method order is load average, vmstat, NWS hybrid.

/// Host names in the paper's row order.
pub const HOSTS: [&str; 6] = [
    "thing2",
    "thing1",
    "conundrum",
    "beowulf",
    "gremlin",
    "kongo",
];

/// Table 1: mean absolute measurement errors.
pub const TABLE1: [[f64; 3]; 6] = [
    [0.090, 0.112, 0.111],
    [0.064, 0.075, 0.061],
    [0.341, 0.327, 0.044],
    [0.063, 0.065, 0.075],
    [0.040, 0.032, 0.041],
    [0.128, 0.129, 0.413],
];

/// Table 2: mean true forecasting errors.
pub const TABLE2: [[f64; 3]; 6] = [
    [0.089, 0.086, 0.100],
    [0.064, 0.070, 0.053],
    [0.340, 0.320, 0.043],
    [0.062, 0.068, 0.069],
    [0.040, 0.026, 0.030],
    [0.120, 0.120, 0.410],
];

/// Table 3: mean absolute one-step-ahead prediction errors.
pub const TABLE3: [[f64; 3]; 6] = [
    [0.012, 0.049, 0.018],
    [0.017, 0.031, 0.028],
    [0.004, 0.002, 0.002],
    [0.018, 0.031, 0.035],
    [0.010, 0.021, 0.020],
    [0.001, 0.001, 0.001],
];

/// Table 4, column 2: R/S Hurst parameter estimates.
pub const TABLE4_HURST: [f64; 6] = [0.70, 0.70, 0.79, 0.82, 0.71, 0.69];

/// Table 4 variances: per host, per method, `(original, 300 s aggregated)`.
pub const TABLE4_VARIANCES: [[(f64, f64); 3]; 6] = [
    [(0.0348, 0.0338), (0.0431, 0.0351), (0.0321, 0.0315)],
    [(0.0081, 0.0062), (0.0103, 0.0048), (0.0147, 0.0090)],
    [(0.0002, 0.0001), (0.0003, 0.0000), (0.0006, 0.0009)],
    [(0.0058, 0.0039), (0.0063, 0.0019), (0.0151, 0.0057)],
    [(0.0038, 0.0023), (0.0034, 0.0011), (0.0032, 0.0001)],
    [(0.0001, 0.0001), (0.0001, 0.0001), (0.0004, 0.0008)],
];

/// Table 5: one-step prediction errors on 5-minute aggregated series.
pub const TABLE5: [[f64; 3]; 6] = [
    [0.024, 0.017, 0.013],
    [0.049, 0.035, 0.039],
    [0.007, 0.002, 0.003],
    [0.034, 0.023, 0.045],
    [0.026, 0.012, 0.013],
    [0.002, 0.001, 0.002],
];

/// Table 6: mean true forecasting errors for 5-minute averages.
pub const TABLE6: [[f64; 3]; 6] = [
    [0.066, 0.053, 0.065],
    [0.056, 0.052, 0.067],
    [0.030, 0.074, 0.101],
    [0.060, 0.114, 0.111],
    [0.043, 0.029, 0.083],
    [0.021, 0.019, 0.285],
];

/// Row index of a host in the paper's order.
pub fn host_index(host: &str) -> Option<usize> {
    HOSTS.iter().position(|&h| h == host)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_index_round_trips() {
        for (i, h) in HOSTS.iter().enumerate() {
            assert_eq!(host_index(h), Some(i));
        }
        assert_eq!(host_index("nope"), None);
    }

    #[test]
    fn headline_claims_hold_in_reference_data() {
        // One-step prediction error < 5% on every host/method (Table 3).
        for row in TABLE3 {
            for v in row {
                assert!(v < 0.05);
            }
        }
        // Conundrum: passive methods err hugely, hybrid small (Table 1).
        let con = TABLE1[2];
        assert!(con[0] > 0.3 && con[1] > 0.3 && con[2] < 0.05);
        // Kongo: hybrid errs hugely, passive moderate (Table 1).
        let kongo = TABLE1[5];
        assert!(kongo[2] > 0.4 && kongo[0] < 0.15);
        // Hurst estimates all in (0.5, 1).
        for h in TABLE4_HURST {
            assert!(h > 0.5 && h < 1.0);
        }
    }

    #[test]
    fn aggregation_reduces_variance_except_known_cells() {
        let mut rises = Vec::new();
        for (hi, host) in TABLE4_VARIANCES.iter().enumerate() {
            for (mi, &(orig, agg)) in host.iter().enumerate() {
                if agg > orig {
                    rises.push((HOSTS[hi], mi));
                }
            }
        }
        // The paper: only conundrum/hybrid and kongo/hybrid rise.
        assert_eq!(rises, vec![("conundrum", 2), ("kongo", 2)]);
    }
}
