//! The NWS CPU monitor loop.
//!
//! Reproduces the measurement protocol of Section 2:
//!
//! - every 10 s, each of the three methods (load average, vmstat, hybrid)
//!   produces one availability measurement;
//! - once a minute the hybrid runs its 1.5 s probe, re-selects its passive
//!   method, and refreshes its bias;
//! - on a configurable schedule, a full-priority CPU-bound **test process**
//!   runs for 10 s (Tables 1–3) or 5 min (Table 6) and records the
//!   availability it actually obtained, paired with "the measurement taken
//!   most immediately before the test process executes";
//! - sensing continues *during* test-process execution — the paper's
//!   Figure 4 explicitly shows the periodic signature of the 5-minute test
//!   process in the measurement series.

use nws_sensors::{
    HybridConfig, HybridSensor, LoadAvgSensor, VmstatSensor, MEASUREMENT_PERIOD, PROBE_PERIOD,
};
use nws_sim::{Host, ProcessSpec, Seconds};
use nws_timeseries::Series;

/// Sensor readings taken immediately before a test-process run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorReadings {
    /// Last Eq. 1 (load average) measurement before the test.
    pub load: f64,
    /// Last Eq. 2 (vmstat) measurement before the test.
    pub vmstat: f64,
    /// Last hybrid measurement before the test.
    pub hybrid: f64,
}

/// One ground-truth observation from the test process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestObservation {
    /// Simulation time at which the test process started.
    pub start: Seconds,
    /// Wall-clock duration of the run.
    pub duration: Seconds,
    /// Availability the test process observed (CPU time / wall time).
    pub value: f64,
    /// The sensor readings taken most immediately before the run.
    pub prior: PriorReadings,
}

/// The three measurement series a monitored host produces.
#[derive(Debug, Clone)]
pub struct MethodSeries {
    /// Eq. 1 (load average) availability series.
    pub load: Series,
    /// Eq. 2 (vmstat) availability series.
    pub vmstat: Series,
    /// NWS hybrid availability series.
    pub hybrid: Series,
}

impl MethodSeries {
    /// The series in paper column order, with display names.
    pub fn columns(&self) -> [(&'static str, &Series); 3] {
        [
            ("load-average", &self.load),
            ("vmstat", &self.vmstat),
            ("nws-hybrid", &self.hybrid),
        ]
    }
}

/// Everything one monitoring run produces.
#[derive(Debug, Clone)]
pub struct MonitorOutput {
    /// Host display name.
    pub host: String,
    /// The three measurement series.
    pub series: MethodSeries,
    /// Ground-truth test-process observations.
    pub tests: Vec<TestObservation>,
    /// `(time, occupancy)` for every hybrid probe run.
    pub probes: Vec<(Seconds, f64)>,
}

/// Monitor schedule and sensor configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Total monitored span (seconds of simulation after warm-up).
    pub duration: Seconds,
    /// Warm-up before recording starts (lets load averages and workloads
    /// reach steady state).
    pub warmup: Seconds,
    /// Measurement cadence (paper: 10 s).
    pub measurement_period: Seconds,
    /// Hybrid probe cadence (paper: 60 s).
    pub probe_period: Seconds,
    /// Test-process cadence; `None` disables ground-truth runs.
    pub test_period: Option<Seconds>,
    /// Test-process duration (paper: 10 s short, 300 s medium).
    pub test_duration: Seconds,
    /// Hybrid sensor configuration.
    pub hybrid: HybridConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            duration: 24.0 * 3600.0,
            warmup: 1800.0,
            measurement_period: MEASUREMENT_PERIOD,
            probe_period: PROBE_PERIOD,
            test_period: Some(600.0),
            test_duration: nws_sensors::TEST_DURATION_SHORT,
            hybrid: HybridConfig::default(),
        }
    }
}

impl MonitorConfig {
    /// A short configuration for unit/integration tests (minutes, not
    /// hours).
    pub fn test_scale() -> Self {
        Self {
            duration: 1800.0,
            warmup: 300.0,
            test_period: Some(300.0),
            ..Self::default()
        }
    }

    /// The medium-term (Table 6 / Figure 4) schedule: a 5-minute test
    /// process once an hour.
    pub fn medium_term() -> Self {
        Self {
            test_period: Some(3600.0),
            test_duration: nws_sensors::TEST_DURATION_MEDIUM,
            ..Self::default()
        }
    }

    fn validate(&self) {
        assert!(self.duration > 0.0, "duration must be positive");
        assert!(self.warmup >= 0.0, "warmup must be non-negative");
        assert!(
            self.measurement_period > 0.0,
            "measurement period must be positive"
        );
        assert!(
            self.probe_period >= self.measurement_period,
            "probe period must be at least the measurement period"
        );
        if let Some(tp) = self.test_period {
            assert!(
                tp >= self.test_duration,
                "test period must cover the test duration"
            );
        }
        assert!(self.test_duration > 0.0);
    }
}

/// The NWS CPU monitor: drives a host and collects series + ground truth.
#[derive(Debug)]
pub struct Monitor {
    config: MonitorConfig,
}

impl Monitor {
    /// Creates a monitor with the given schedule.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration (see [`MonitorConfig`]).
    pub fn new(config: MonitorConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Runs the monitor against `host`, consuming
    /// `warmup + duration` seconds of simulation time.
    pub fn run(&self, host: &mut Host) -> MonitorOutput {
        let cfg = &self.config;
        let mut load_sensor = LoadAvgSensor::new();
        let mut vmstat_sensor = VmstatSensor::new();
        let mut hybrid_sensor = HybridSensor::new(cfg.hybrid);

        host.advance_to(cfg.warmup);
        let t0 = host.now();
        let slots = (cfg.duration / cfg.measurement_period).floor() as u64;
        let probe_every = (cfg.probe_period / cfg.measurement_period).round().max(1.0) as u64;
        let test_every = cfg
            .test_period
            .map(|tp| (tp / cfg.measurement_period).round().max(1.0) as u64);

        let mut out = MonitorOutput {
            host: host.name().to_string(),
            series: MethodSeries {
                load: Series::with_capacity(format!("{}/load", host.name()), slots as usize),
                vmstat: Series::with_capacity(format!("{}/vmstat", host.name()), slots as usize),
                hybrid: Series::with_capacity(format!("{}/hybrid", host.name()), slots as usize),
            },
            tests: Vec::new(),
            probes: Vec::new(),
        };

        // State of an in-flight test process.
        struct RunningTest {
            pid: nws_sim::Pid,
            start: Seconds,
            deadline: Seconds,
            /// Sensor readings taken immediately before the launch.
            prior: PriorReadings,
        }
        let mut running_test: Option<RunningTest> = None;
        // Updated every slot; read when a test process launches. The
        // initializer is dead in practice (a measurement always precedes
        // the first test) but keeps the flow simple.
        #[allow(unused_assignments)]
        let mut last = PriorReadings {
            load: 1.0,
            vmstat: 1.0,
            hybrid: 1.0,
        };

        for k in 0..slots {
            let slot_time = t0 + k as f64 * cfg.measurement_period;
            // Finish a test whose deadline falls at or before this slot:
            // advance to exactly the deadline so the observed wall time is
            // exactly the test duration.
            if let Some(rt) = &running_test {
                if rt.deadline <= slot_time + 1e-9 {
                    host.advance_to(rt.deadline);
                    let stats = host
                        .kill(rt.pid)
                        .expect("test process alive until deadline");
                    out.tests.push(TestObservation {
                        start: rt.start,
                        duration: cfg.test_duration,
                        value: stats.occupancy(),
                        prior: rt.prior,
                    });
                    running_test = None;
                }
            }
            host.advance_to(slot_time);

            // The three measurements for this slot.
            let load_val = load_sensor.measure(host);
            let vmstat_val = vmstat_sensor.measure(host);
            let hybrid_val = if k % probe_every == 0 {
                let v = hybrid_sensor.measure_with_probe(host);
                let probe = hybrid_sensor.last_probe_value().expect("probe just ran");
                out.probes.push((slot_time, probe));
                v
            } else {
                hybrid_sensor.measure(host)
            };
            out.series
                .load
                .push(slot_time, load_val)
                .expect("slot times increase");
            out.series
                .vmstat
                .push(slot_time, vmstat_val)
                .expect("slot times increase");
            out.series
                .hybrid
                .push(slot_time, hybrid_val)
                .expect("slot times increase");
            last = PriorReadings {
                load: load_val,
                vmstat: vmstat_val,
                hybrid: hybrid_val,
            };

            // Launch a test process right after the slot's measurements —
            // "we use the measurement taken most immediately before the
            // test process executes".
            if let Some(every) = test_every {
                let is_test_slot = k % every == every / 2; // offset into the period
                if is_test_slot && running_test.is_none() {
                    let start = host.now();
                    let pid = host.spawn(ProcessSpec::cpu_bound("test-process"));
                    running_test = Some(RunningTest {
                        pid,
                        start,
                        deadline: start + cfg.test_duration,
                        prior: last,
                    });
                }
            }
        }
        // Close out a test that is still in flight at the end of the run.
        if let Some(rt) = running_test {
            host.advance_to(rt.deadline);
            if let Some(stats) = host.kill(rt.pid) {
                out.tests.push(TestObservation {
                    start: rt.start,
                    duration: cfg.test_duration,
                    value: stats.occupancy(),
                    prior: rt.prior,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_sim::HostProfile;

    #[test]
    fn produces_aligned_series_and_tests() {
        let mut host = HostProfile::Thing1.build(5);
        let monitor = Monitor::new(MonitorConfig::test_scale());
        let out = monitor.run(&mut host);
        let n = out.series.load.len();
        assert_eq!(out.series.vmstat.len(), n);
        assert_eq!(out.series.hybrid.len(), n);
        assert_eq!(n, 180); // 1800 s / 10 s
        assert!(!out.tests.is_empty());
        assert!(!out.probes.is_empty());
        // Probes once a minute.
        assert_eq!(out.probes.len(), 30);
        for &p in out
            .series
            .load
            .values()
            .iter()
            .chain(out.series.hybrid.values())
        {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn test_observations_carry_prior_readings() {
        let mut host = HostProfile::Gremlin.build(9);
        let monitor = Monitor::new(MonitorConfig::test_scale());
        let out = monitor.run(&mut host);
        for t in &out.tests {
            assert!((0.0..=1.0).contains(&t.value));
            assert!((0.0..=1.0).contains(&t.prior.load));
            assert!((0.0..=1.0).contains(&t.prior.vmstat));
            assert!((0.0..=1.0).contains(&t.prior.hybrid));
            assert_eq!(t.duration, 10.0);
            // The prior reading was taken at or before the test start.
            let idx = out.series.load.index_at_or_before(t.start).unwrap();
            let reading = out.series.load.get(idx).unwrap();
            assert!((reading.value - t.prior.load).abs() < 1e-12);
        }
    }

    #[test]
    fn disabled_tests_yield_no_observations() {
        let mut host = HostProfile::Thing1.build(5);
        let cfg = MonitorConfig {
            test_period: None,
            ..MonitorConfig::test_scale()
        };
        let out = Monitor::new(cfg).run(&mut host);
        assert!(out.tests.is_empty());
        assert_eq!(out.series.load.len(), 180);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut host = HostProfile::Thing2.build(123);
            Monitor::new(MonitorConfig::test_scale()).run(&mut host)
        };
        let a = run();
        let b = run();
        assert_eq!(a.series.load.values(), b.series.load.values());
        assert_eq!(a.series.hybrid.values(), b.series.hybrid.values());
        assert_eq!(a.tests.len(), b.tests.len());
        for (x, y) in a.tests.iter().zip(&b.tests) {
            assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn medium_term_schedule_runs_five_minute_tests() {
        let mut host = HostProfile::Thing1.build(5);
        let cfg = MonitorConfig {
            duration: 2.0 * 3600.0,
            warmup: 300.0,
            ..MonitorConfig::medium_term()
        };
        let out = Monitor::new(cfg).run(&mut host);
        assert_eq!(out.tests.len(), 2); // one per hour
        for t in &out.tests {
            assert_eq!(t.duration, 300.0);
        }
        // Sensing continued during the 5-minute tests: full series length.
        assert_eq!(out.series.load.len(), 720);
    }

    #[test]
    #[should_panic(expected = "test period must cover")]
    fn invalid_schedule_panics() {
        Monitor::new(MonitorConfig {
            test_period: Some(5.0),
            test_duration: 10.0,
            ..MonitorConfig::default()
        });
    }
}
