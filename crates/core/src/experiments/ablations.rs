//! Ablations of the design choices `DESIGN.md` calls out.

use crate::experiments::dataset::ExperimentConfig;
use crate::monitor::{Monitor, MonitorConfig};
use nws_forecast::{evaluate_one_step, NwsForecaster};
use nws_runtime::parallel_map;
use nws_sensors::HybridConfig;
use nws_sim::HostProfile;
use nws_stats::mean_absolute_pair_error;

/// Result of scoring one forecasting method alone against the dynamic
/// selection.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecasterAblation {
    /// Host whose load-average series was replayed.
    pub host: String,
    /// `(method name, cumulative MAE)` for every fixed panel member.
    pub fixed: Vec<(String, f64)>,
    /// MAE of the dynamic selection over the same series.
    pub dynamic: f64,
}

/// Replays one host's load-average series through the panel and reports
/// each fixed member's cumulative MAE next to the dynamic selection's —
/// the NWS claim is that dynamic selection is "equivalent to, or slightly
/// better than, the best forecaster in the set".
pub fn forecaster_ablation(cfg: &ExperimentConfig, host: HostProfile) -> ForecasterAblation {
    let monitor = Monitor::new(MonitorConfig {
        duration: cfg.duration,
        warmup: cfg.warmup,
        test_period: None,
        ..MonitorConfig::default()
    });
    let mut h = host.build(cfg.seed ^ 0xAB1A);
    let out = monitor.run(&mut h);
    let values = out.series.load.values();
    let mut nws = NwsForecaster::nws_default();
    let report = evaluate_one_step(&mut nws, values).expect("series long enough");
    ForecasterAblation {
        host: out.host,
        fixed: nws.error_summary(),
        dynamic: report.mae,
    }
}

/// Hybrid-sensor measurement error on one host with the probe bias either
/// applied (the paper's design) or disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasAblation {
    /// Host name.
    pub host: String,
    /// Mean absolute measurement error with the bias applied.
    pub with_bias: f64,
    /// Mean absolute measurement error with the bias disabled.
    pub without_bias: f64,
}

fn hybrid_measurement_error(
    cfg: &ExperimentConfig,
    host: HostProfile,
    hybrid: HybridConfig,
) -> f64 {
    let monitor = Monitor::new(MonitorConfig {
        duration: cfg.duration,
        warmup: cfg.warmup,
        test_period: Some(cfg.short_test_period),
        hybrid,
        ..MonitorConfig::default()
    });
    let mut h = host.build(cfg.seed ^ 0xB1A5);
    let out = monitor.run(&mut h);
    let obs: Vec<f64> = out.tests.iter().map(|t| t.value).collect();
    let hyb: Vec<f64> = out.tests.iter().map(|t| t.prior.hybrid).collect();
    mean_absolute_pair_error(&hyb, &obs).unwrap_or(0.0)
}

/// The probe-bias ablation: bias rescues conundrum (nice load) and sinks
/// kongo (long-running full-priority load).
pub fn bias_ablation(cfg: &ExperimentConfig, host: HostProfile) -> BiasAblation {
    let with_bias = hybrid_measurement_error(
        cfg,
        host,
        HybridConfig {
            apply_bias: true,
            ..HybridConfig::default()
        },
    );
    let without_bias = hybrid_measurement_error(
        cfg,
        host,
        HybridConfig {
            apply_bias: false,
            ..HybridConfig::default()
        },
    );
    BiasAblation {
        host: host.name().to_string(),
        with_bias,
        without_bias,
    }
}

/// One point of the probe-duration sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSweepPoint {
    /// Probe duration in seconds.
    pub probe_duration: f64,
    /// Hybrid mean absolute measurement error at this duration.
    pub hybrid_error: f64,
    /// Fractional CPU overhead of probing (`duration / probe period`).
    pub overhead: f64,
}

/// Sweeps the hybrid probe duration on a host.
///
/// The paper: 1.5 s is "the shortest probe duration that is useful", with
/// 2.5 % overhead; on kongo a longer probe would contend with the resident
/// job long enough to sense it, trading error for intrusiveness.
pub fn probe_duration_sweep(
    cfg: &ExperimentConfig,
    host: HostProfile,
    durations: &[f64],
) -> Vec<ProbeSweepPoint> {
    // Every duration replays a full monitoring day on its own host copy;
    // the runs are seed-isolated, so they fan out across worker threads.
    parallel_map(durations.to_vec(), |d| {
        let err = hybrid_measurement_error(
            cfg,
            host,
            HybridConfig {
                probe_duration: d,
                ..HybridConfig::default()
            },
        );
        ProbeSweepPoint {
            probe_duration: d,
            hybrid_error: err,
            overhead: d / nws_sensors::PROBE_PERIOD,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_selection_is_competitive() {
        let cfg = ExperimentConfig::quick();
        let ab = forecaster_ablation(&cfg, HostProfile::Thing1);
        assert!(!ab.fixed.is_empty());
        let best = ab
            .fixed
            .iter()
            .map(|(_, m)| *m)
            .fold(f64::INFINITY, f64::min);
        let worst = ab.fixed.iter().map(|(_, m)| *m).fold(0.0, f64::max);
        assert!(
            ab.dynamic <= best * 1.3 + 1e-9,
            "dynamic {} vs best fixed {best}",
            ab.dynamic
        );
        assert!(ab.dynamic < worst, "dynamic should beat the worst member");
    }

    #[test]
    fn bias_rescues_conundrum() {
        let cfg = ExperimentConfig::quick();
        let ab = bias_ablation(&cfg, HostProfile::Conundrum);
        assert!(
            ab.with_bias < ab.without_bias - 0.05,
            "bias should help on conundrum: with {} vs without {}",
            ab.with_bias,
            ab.without_bias
        );
    }

    #[test]
    fn bias_sinks_kongo() {
        let cfg = ExperimentConfig::quick();
        let ab = bias_ablation(&cfg, HostProfile::Kongo);
        assert!(
            ab.with_bias > ab.without_bias + 0.05,
            "bias should hurt on kongo: with {} vs without {}",
            ab.with_bias,
            ab.without_bias
        );
    }

    #[test]
    fn longer_probes_reduce_kongo_error() {
        let cfg = ExperimentConfig::quick();
        let sweep = probe_duration_sweep(&cfg, HostProfile::Kongo, &[1.5, 10.0]);
        assert_eq!(sweep.len(), 2);
        assert!(
            sweep[1].hybrid_error < sweep[0].hybrid_error - 0.03,
            "10s probe {} should beat 1.5s probe {}",
            sweep[1].hybrid_error,
            sweep[0].hybrid_error
        );
        assert!(sweep[1].overhead > sweep[0].overhead);
    }
}
